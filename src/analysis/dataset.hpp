// Capture dataset: the common substrate of all analyses.
//
// Decodes every frame, tracks TCP flows, and extracts the IEC 104 APDU
// stream per directed connection. Two parse modes are supported:
//   - kPerPacket: each TCP payload is parsed independently, the way the
//     paper's SCAPY pipeline worked. TCP retransmissions then surface as
//     duplicated APDUs — the effect the paper traced in §6.3.1.
//   - kReassembled: payloads are first run through TCP reassembly, so
//     retransmissions are deduplicated (the ablation).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <optional>

#include "analysis/resource.hpp"
#include "util/arena.hpp"
#include "iec104/conformance.hpp"
#include "iec104/parser.hpp"
#include "net/flow.hpp"
#include "net/pcap.hpp"
#include "net/reassembly.hpp"
#include "util/ptrcache.hpp"

namespace uncharted::analysis {

enum class ParseMode { kPerPacket, kReassembled };

/// One parsed APDU with its position in the capture.
struct ApduRecord {
  Timestamp ts = 0;
  net::FlowKey flow;  ///< directed 4-tuple it travelled on
  /// Arrival index within this directed flow (0-based). Part of the
  /// canonical record order (ts, flow, seq): timestamps tie across flows
  /// whenever a burst shares a capture tick, and the merge of per-shard
  /// record lanes must not depend on which shard finished first. Within a
  /// flow the sequence is the parse order, which every execution —
  /// sequential, sharded, or restored from a checkpoint — reproduces.
  std::uint64_t seq = 0;
  iec104::ParsedApdu apdu;
};

/// Typed error counters for degraded-mode ingestion: everything the
/// pipeline dropped, skipped or quarantined instead of crashing on. All
/// monotone during a build; `any()` is false for a clean capture (benign
/// TCP retransmissions and orderly RSTs are accounted elsewhere).
struct DegradationCounters {
  std::uint64_t undecodable_frames = 0;   ///< frames that failed L2-L4 decode
  std::uint64_t parser_resyncs = 0;       ///< 0x68 hunts after lost framing
  std::uint64_t garbage_bytes = 0;        ///< bytes skipped while resyncing
  std::uint64_t undecodable_apdus = 0;    ///< framed APDUs no profile explains
  std::uint64_t truncated_tail_bytes = 0; ///< partial APDUs at stream end
  std::uint64_t reassembly_gaps = 0;      ///< sequence holes abandoned
  std::uint64_t reassembly_lost_bytes = 0;///< width of those holes
  std::uint64_t overlapping_segments = 0; ///< partially re-sent segments
  std::uint64_t aborted_streams = 0;      ///< RST with data still buffered
  std::uint64_t wild_segments = 0;        ///< discarded out-of-window segments
  std::uint64_t quarantined_connections = 0;  ///< poisoned streams excluded
  std::uint64_t quarantined_apdus = 0;        ///< their APDUs, not reported

  /// True iff the capture showed any damage at all.
  bool any() const { return total() != 0; }
  std::uint64_t total() const {
    return undecodable_frames + parser_resyncs + garbage_bytes +
           undecodable_apdus + truncated_tail_bytes + reassembly_gaps +
           reassembly_lost_bytes + overlapping_segments + aborted_streams +
           wild_segments + quarantined_connections + quarantined_apdus;
  }
};

/// Totals for the capture.
struct DatasetStats {
  std::uint64_t packets = 0;
  std::uint64_t tcp_packets = 0;
  std::uint64_t undecodable_frames = 0;  ///< non-IPv4/TCP or truncated
  std::uint64_t iec104_payload_packets = 0;
  std::uint64_t apdus = 0;
  std::uint64_t apdu_failures = 0;
  /// Fig 5: the tap also carries synchrophasor and inter-control-center
  /// traffic; classified by well-known port.
  std::uint64_t c37118_packets = 0;   ///< port 4712
  std::uint64_t iccp_packets = 0;     ///< port 102
  std::uint64_t other_tcp_packets = 0;
  std::uint64_t non_compliant_apdus = 0;
  std::uint64_t tcp_retransmissions = 0;  ///< reassembled mode only
  DegradationCounters degradation;
};

/// Per-directed-flow parse damage: how many APDUs parsed cleanly and what
/// each failure was. This is both the quarantine evidence (scored by
/// iec104::QuarantinePolicy) and the parse-level input to the conformance
/// audit, which needs the failure *kinds* — a garbage flood reads very
/// differently from a dribble of truncated tails.
struct FlowDamage {
  std::uint64_t apdus = 0;
  std::uint64_t garbage = 0;        ///< resync events
  std::uint64_t garbage_bytes = 0;  ///< bytes skipped across them
  std::uint64_t undecodable = 0;    ///< framed APDUs no profile explains
  std::uint64_t truncated = 0;      ///< partial frames abandoned
  std::uint64_t oversized = 0;      ///< frames whose length octet exceeds 253
  Timestamp last_failure_ts = 0;

  std::uint64_t failures() const { return garbage + undecodable + truncated; }
};

/// An undirected endpoint pair (a "connection" in the paper's sense:
/// C1-O7, C2-O30, ...). Ports are ignored so reconnections merge.
struct EndpointPair {
  net::Ipv4Addr a;  ///< lower address
  net::Ipv4Addr b;

  static EndpointPair of(net::Ipv4Addr x, net::Ipv4Addr y);
  auto operator<=>(const EndpointPair&) const = default;
  std::string str() const { return a.str() + " <-> " + b.str(); }
};

struct ShardPartial;

class CaptureDataset {
 public:
  struct Options {
    ParseMode mode = ParseMode::kPerPacket;
    iec104::ApduStreamParser::Mode parser_mode =
        iec104::ApduStreamParser::Mode::kTolerant;
    /// Only payloads to/from this TCP port are treated as IEC 104.
    std::uint16_t iec104_port = 2404;
    /// Bounds on per-direction out-of-order buffering (reassembled mode).
    net::ReassemblyLimits reassembly_limits;
    /// Severity-weighted quarantine: a directed stream whose damage score
    /// crosses the policy threshold (and whose failures outnumber its
    /// successful APDUs, under the default policy) is quarantined — its
    /// (likely mis-decoded) APDUs are dropped from the dataset so one
    /// poisoned stream cannot skew compliance, clustering or type
    /// statistics. The defaults reproduce the former flat ">= 8 failures"
    /// rule; score_threshold = 0 disables quarantine.
    iec104::QuarantinePolicy quarantine;
  };

  /// Builds the dataset from captured packets.
  static CaptureDataset build(const std::vector<net::CapturedPacket>& packets,
                              const Options& options);
  static CaptureDataset build(const std::vector<net::CapturedPacket>& packets) {
    return build(packets, Options{});
  }
  /// Zero-copy build over frame views (spans into an mmap'd capture or
  /// owning packets; the backing bytes must outlive the call).
  static CaptureDataset build(std::span<const net::FrameView> frames,
                              const Options& options);

  const DatasetStats& stats() const { return stats_; }
  const net::FlowTable& flow_table() const { return flows_; }
  /// All APDUs in capture order.
  const std::vector<ApduRecord>& records() const { return records_; }

  /// APDU indices per directed (src_ip -> dst_ip) session, capture order.
  const std::map<std::pair<net::Ipv4Addr, net::Ipv4Addr>, std::vector<std::size_t>>&
  sessions() const {
    return sessions_;
  }

  /// APDU indices per undirected endpoint pair, capture order.
  const std::map<EndpointPair, std::vector<std::size_t>>& connections() const {
    return connections_;
  }

  /// Per-outstation count of I-format APDUs that required a legacy profile,
  /// and total I-format APDUs on its connections — the §6.1 compliance
  /// report (commands the server mirrors in the RTU's dialect count toward
  /// the RTU).
  struct ComplianceEntry {
    std::uint64_t i_apdus = 0;
    std::uint64_t non_compliant = 0;
    iec104::CodecProfile profile;  ///< profile that explained the traffic
  };
  const std::map<net::Ipv4Addr, ComplianceEntry>& compliance() const {
    return compliance_;
  }

  /// Structure-of-arrays projection of records(): the columns the counting
  /// analyses (type distributions, rate stats) actually touch, laid out
  /// contiguously so a pass over a million records walks flat arrays
  /// instead of striding through fat ApduRecords. Row i describes
  /// records()[i]; built once after the canonical sort.
  struct HotColumns {
    std::vector<Timestamp> ts;
    /// Index into flow_keys() — per-record flow identity as a small int.
    std::vector<std::uint32_t> flow_index;
    std::vector<std::uint64_t> seq;
    /// ASDU type identification, or kNoTypeId for S/U frames (no ASDU).
    std::vector<std::uint16_t> type_id;
    std::vector<std::uint32_t> wire_size;
  };
  /// type_id column sentinel: the record carries no ASDU. Real typeIDs are
  /// 8-bit, so the sentinel can never collide.
  static constexpr std::uint16_t kNoTypeId = 0xffff;

  const HotColumns& columns() const { return columns_; }
  /// Directed flow keys in order of first appearance in records();
  /// flow_index values index into this.
  const std::vector<net::FlowKey>& flow_keys() const { return flow_keys_; }

  /// Directed flows excluded from the dataset by the quarantine rule.
  const std::vector<net::FlowKey>& quarantined_flows() const { return quarantined_; }

  /// Per-directed-flow parse damage (including quarantined flows), so the
  /// conformance audit can attribute parse-level hostility to peers.
  const std::map<net::FlowKey, FlowDamage>& damage() const { return damage_; }

 private:
  friend class DatasetBuilder;
  friend CaptureDataset merge_partials(std::vector<ShardPartial> partials,
                                       const Options& options);

  /// Lane arenas backing the records' parsed-ASDU object storage. Declared
  /// first so they are destroyed last — records_ must release its pmr
  /// vectors while their resource is still alive.
  std::vector<std::shared_ptr<util::RecordArena>> arenas_;
  DatasetStats stats_;
  net::FlowTable flows_;
  std::vector<ApduRecord> records_;
  std::map<std::pair<net::Ipv4Addr, net::Ipv4Addr>, std::vector<std::size_t>> sessions_;
  std::map<EndpointPair, std::vector<std::size_t>> connections_;
  std::map<net::Ipv4Addr, ComplianceEntry> compliance_;
  std::vector<net::FlowKey> quarantined_;
  std::map<net::FlowKey, FlowDamage> damage_;
  HotColumns columns_;
  std::vector<net::FlowKey> flow_keys_;
};

/// One shard's contribution to a dataset: everything a DatasetBuilder
/// accumulated, flushed and quarantined, but not yet sorted or indexed.
/// Partials from flow-disjoint shards merge into the same CaptureDataset a
/// single sequential builder would have produced (see merge_partials).
struct ShardPartial {
  /// The lane's record arena (declared first: destroyed after records).
  /// Travels with the records whose ASDU objects it backs.
  std::shared_ptr<util::RecordArena> arena;
  DatasetStats stats;
  net::FlowTable flows;
  std::vector<ApduRecord> records;
  std::vector<net::FlowKey> quarantined;
  std::map<net::FlowKey, FlowDamage> damage;
};

/// Deterministic order-independent reducer: folds shard partials into one
/// CaptureDataset. Integer stats are summed, flow tables merged (disjoint
/// across shards by construction), records concatenated and re-sorted into
/// the canonical (ts, flow, seq) order, then sessions / connections /
/// compliance are indexed exactly as a sequential finish() would. The
/// result is invariant under any permutation of `partials`.
CaptureDataset merge_partials(std::vector<ShardPartial> partials,
                              const CaptureDataset::Options& options);

/// Incremental dataset construction: packets go in one at a time (or in
/// bounded batches), budgets are enforced as state grows, and the whole
/// builder can be checkpointed mid-capture and restored after a crash.
/// `CaptureDataset::build` is now a thin wrapper over one of these; the
/// streaming analyzer drives it directly.
class DatasetBuilder {
 public:
  explicit DatasetBuilder(CaptureDataset::Options options = {},
                          ResourceBudgets budgets = {});

  DatasetBuilder(const DatasetBuilder&) = delete;
  DatasetBuilder& operator=(const DatasetBuilder&) = delete;

  /// Ingests one captured packet. Budgets are enforced after each call.
  void add_packet(const net::CapturedPacket& pkt) { add_packet(pkt.ts, pkt.data); }

  /// Zero-copy variant: `data` is only read during the call (the mmap'd
  /// frame-view ingest path). Payload bytes are copied only where they must
  /// outlive the call — out-of-order reassembly segments, partial APDU
  /// tails, and failure evidence.
  void add_packet(Timestamp ts, std::span<const std::uint8_t> data);

  /// Batched ingest over frame views: the whole batch is decoded
  /// back-to-back and — when no budget is set, so enforcement cannot fire —
  /// the budget/peak bookkeeping runs once per batch instead of once per
  /// packet. With budgets set, enforcement stays per-packet: governance
  /// timing is observable (eviction order, pressure counters) and must not
  /// depend on how the driver batched the input.
  void add_packets(std::span<const net::FrameView> frames);

  /// Packets ingested so far — the resume cursor a checkpoint stores.
  std::uint64_t packets_consumed() const { return packets_consumed_; }

  /// Enforcement actions and high-water marks so far.
  const ResourcePressure& pressure() const { return pressure_; }

  /// Finalizes: flushes reassembly, applies quarantine, sorts and indexes.
  /// The builder is spent afterwards; ingest into a fresh one.
  CaptureDataset finish();

  /// Shard-lane variant of finish(): flushes and quarantines but leaves
  /// sorting and indexing to merge_partials(). `flush_ts` must be the
  /// GLOBAL last dispatched timestamp, not this shard's — truncated-tail
  /// failures are stamped with it and feed the conformance audit, so a
  /// shard that went quiet early must still flush at the capture's end.
  /// finish() is exactly merge_partials({finish_partial(last_ts())}).
  ShardPartial finish_partial(Timestamp flush_ts);

  /// Timestamp of the most recently ingested packet.
  Timestamp last_ts() const { return last_ts_; }

  /// Heap bytes held by this lane's record arena (parsed-ASDU object
  /// storage). Monotone until the lane dies — record eviction trims the
  /// record count but arena blocks are only reclaimed wholesale, which is
  /// why governance and the allocation-budget tests watch this number.
  std::size_t record_arena_bytes() const { return record_arena_->heap_bytes(); }

  /// Checkpoint serialization. Options and budgets are configuration and
  /// are NOT saved — construct the restoring builder with the same ones
  /// (a mismatch is a caller bug, like mismatched ReassemblyLimits).
  /// APDU records are stored re-encoded in their own codec profile; save
  /// fails only if a record cannot be re-encoded (cannot happen for
  /// parser-produced records, which round-trip by construction).
  Status save(ByteWriter& w) const;
  Status load(ByteReader& r);

 private:
  /// add_packet without the budget epilogue — the shared decode body.
  void add_packet_impl(Timestamp ts, std::span<const std::uint8_t> data);
  iec104::ApduStreamParser& parser_for(const net::FlowKey& key);
  /// Accounts freshly drained parse results for one directed flow.
  void collect(const net::FlowKey& key, std::vector<iec104::ParsedApdu>& apdus,
               std::vector<iec104::ParseFailure>& failures);
  void ingest(const net::FlowKey& key, Timestamp ts,
              std::span<const std::uint8_t> payload);
  void enforce_budgets();

  CaptureDataset::Options options_;
  ResourceBudgets budgets_;

  /// Backs the parsed-ASDU object storage of everything this lane parses.
  /// Declared before records_/parsers_/scratch (destroyed after them) and
  /// shared into the ShardPartial so the dataset keeps it alive.
  std::shared_ptr<util::RecordArena> record_arena_;

  DatasetStats stats_;
  net::FlowTable flows_;
  std::vector<ApduRecord> records_;
  std::map<net::FlowKey, iec104::ApduStreamParser> parsers_;
  std::map<net::FlowKey, FlowDamage> damage_;
  /// Short-circuit for the per-packet damage_ lookup in collect(). Any
  /// path that moves or clears damage_ must invalidate it.
  DirectMappedCache<net::FlowKey, FlowDamage, 1024> damage_cache_;
  std::optional<net::TcpReassembler> reassembler_;
  Timestamp last_ts_ = 0;
  std::uint64_t packets_consumed_ = 0;
  ResourcePressure pressure_;
  /// Scratch for drain(); members so buffers are reused across packets.
  std::vector<iec104::ParsedApdu> drained_apdus_;
  std::vector<iec104::ParseFailure> drained_failures_;
  /// Per-packet-mode scratch parser, reset_stream()ed per payload so its
  /// buffers keep their capacity instead of reallocating every packet.
  iec104::ApduStreamParser packet_parser_;
};

}  // namespace uncharted::analysis
