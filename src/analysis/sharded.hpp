// Flow-sharded parallel dataset construction.
//
// The hot path — decode, flow tracking, TCP reassembly, APDU parsing — is
// embarrassingly parallel per connection but stateful within one: the
// reassembler, stream parser and flow record for a connection must see its
// packets in order. So packets are partitioned by *endpoint pair*: every
// packet between two IP addresses (both directions, all port pairs) lands
// in the same shard, each shard owns a full DatasetBuilder, and shard
// results fold into one CaptureDataset through merge_partials(), whose
// output is invariant under shard count, thread count and completion
// order. A shard therefore sees exactly the subsequence of the capture a
// sequential builder restricted to its connections would have seen, and
// the merged dataset is byte-identical to the sequential one (whenever
// resource budgets never bind — bounded state is divided per shard, so an
// *enforced* budget evicts on different packet boundaries).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "analysis/dataset.hpp"
#include "analysis/resource.hpp"

namespace uncharted::exec {
class Pool;
class TaskGroup;
}  // namespace uncharted::exec

namespace uncharted::analysis {

/// Default shard count. Fixed — deliberately NOT derived from the worker
/// count — so the shard a connection maps to, the per-shard budget slices
/// and the checkpoint layout are identical at every --threads value.
inline constexpr std::size_t kDefaultShardCount = 16;

/// Shard index for a raw frame: SplitMix64 hash of the undirected IPv4
/// endpoint pair (via net::peek_ipv4_pair — no checksum work, no TCP
/// decode). Frames too mangled to even read addresses from go to shard 0,
/// where the full decode fails and is counted exactly as sequentially.
std::size_t shard_of(std::span<const std::uint8_t> frame, std::size_t shard_count);

/// Splits global budgets into a per-shard slice: every bounded resource
/// gets ceil(budget / shards); 0 (unlimited) stays 0.
ResourceBudgets divide_budgets(const ResourceBudgets& budgets, std::size_t shards);

/// Wall-clock hook for the profiler layer: called with a stage label and
/// elapsed milliseconds. Keeps analysis free of a core/profiler dependency.
using StageHook = std::function<void(const char* stage, double wall_ms)>;

/// Batch entry point: partitions `packets` by shard (index lists — no
/// packet copies), runs one DatasetBuilder per non-empty shard on the
/// pool, and merges. With a null pool the shards run inline, in order —
/// same code path, same result. `pressure_out`, when given, receives the
/// sum of per-shard enforcement counters and the max of per-shard peaks;
/// `on_stage` receives fan-out and merge wall times.
CaptureDataset build_dataset_sharded(const std::vector<net::CapturedPacket>& packets,
                                     const CaptureDataset::Options& options,
                                     exec::Pool* pool,
                                     std::size_t shard_count = kDefaultShardCount,
                                     const ResourceBudgets& budgets = {},
                                     ResourcePressure* pressure_out = nullptr,
                                     const StageHook& on_stage = {});

/// Zero-copy batch entry: same partition/merge machinery over frame views
/// (spans into an mmap'd capture or owning packets, which must outlive the
/// call). Produces byte-identical datasets to the owning overload.
CaptureDataset build_dataset_sharded(std::span<const net::FrameView> frames,
                                     const CaptureDataset::Options& options,
                                     exec::Pool* pool,
                                     std::size_t shard_count = kDefaultShardCount,
                                     const ResourceBudgets& budgets = {},
                                     ResourcePressure* pressure_out = nullptr,
                                     const StageHook& on_stage = {});

/// Streaming counterpart: packets arrive one at a time on the driver
/// thread and are routed to per-shard lanes. Each lane is a strand — a
/// FIFO of packet batches plus an "a drain task is scheduled" flag — so a
/// lane's builder only ever runs on one thread at a time while different
/// lanes run concurrently. The driver buffers a small staging batch per
/// lane to amortize locking.
///
/// drain() is the quiescence barrier: after it returns no lane task is
/// running and every dispatched packet has been ingested. save()/load()/
/// pressure()/finish() require it (they take it themselves).
class ShardedDatasetBuilder {
 public:
  ShardedDatasetBuilder(CaptureDataset::Options options, ResourceBudgets budgets,
                        exec::Pool* pool,
                        std::size_t shard_count = kDefaultShardCount);
  ~ShardedDatasetBuilder();

  ShardedDatasetBuilder(const ShardedDatasetBuilder&) = delete;
  ShardedDatasetBuilder& operator=(const ShardedDatasetBuilder&) = delete;

  /// Routes one packet to its lane (copies it into the staging batch).
  void add_packet(const net::CapturedPacket& pkt);

  /// Packets dispatched so far — the resume cursor, mirroring
  /// DatasetBuilder::packets_consumed().
  std::uint64_t packets_consumed() const { return dispatched_; }

  /// Per-lane progress snapshot for the health watchdogs: how many packets
  /// a lane's builder has ingested and how many sit queued behind it
  /// (pending batches, not the driver's staging buffer). Lock-free reads
  /// of per-lane atomics — safe to call from the driver thread while lane
  /// tasks run; values from different lanes are not a consistent cut.
  struct LaneStat {
    std::uint64_t ingested = 0;
    std::size_t queued_packets = 0;
  };
  std::vector<LaneStat> lane_stats() const;

  /// Barrier: flushes staging, waits for every lane to go idle, rethrows
  /// the first exception any lane task raised.
  void drain();

  /// Sum of per-shard enforcement actions, max of per-shard peaks.
  /// Drains first.
  ResourcePressure pressure();

  /// Flushes every lane at the global cursor timestamp and merges. The
  /// builder is spent afterwards.
  CaptureDataset finish();

  /// Checkpoint serialization: shard count, cursor, global last timestamp,
  /// then each lane's DatasetBuilder state. load() refuses a checkpoint
  /// whose shard count differs from this builder's (the caller starts
  /// fresh — re-ingesting is always correct).
  Status save(ByteWriter& w);
  Status load(ByteReader& r);

 private:
  struct Lane;

  void push_batch(Lane& lane, std::vector<net::CapturedPacket>&& batch);
  void drain_lane(Lane& lane);

  CaptureDataset::Options options_;
  exec::Pool* pool_;
  std::unique_ptr<exec::TaskGroup> group_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::vector<net::CapturedPacket>> staging_;  ///< driver-only
  std::size_t staging_batch_ = 256;
  std::uint64_t dispatched_ = 0;
  Timestamp last_ts_ = 0;  ///< ts of the last dispatched packet
};

}  // namespace uncharted::analysis
