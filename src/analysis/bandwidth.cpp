#include "analysis/bandwidth.hpp"

#include <algorithm>
#include <optional>

#include "net/frame.hpp"

namespace uncharted::analysis {

namespace {
TapProtocol classify(const net::DecodedFrame& frame) {
  auto on = [&](std::uint16_t port) {
    return frame.tcp.src_port == port || frame.tcp.dst_port == port;
  };
  if (on(2404)) return TapProtocol::kIec104;
  if (on(4712)) return TapProtocol::kC37118;
  if (on(102)) return TapProtocol::kIccp;
  return TapProtocol::kOther;
}
}  // namespace

std::string tap_protocol_name(TapProtocol p) {
  switch (p) {
    case TapProtocol::kIec104: return "IEC 104";
    case TapProtocol::kC37118: return "C37.118";
    case TapProtocol::kIccp: return "ICCP";
    case TapProtocol::kOther: return "other";
  }
  return "?";
}

double BandwidthReport::duration_seconds() const {
  double max_t = 0.0;
  for (const auto& [proto, buckets] : series) {
    if (!buckets.empty()) {
      max_t = std::max(max_t, buckets.back().t_seconds + bucket_seconds);
    }
  }
  return max_t;
}

double BandwidthReport::mean_rate_bps(TapProtocol p) const {
  double dur = duration_seconds();
  if (dur <= 0.0) return 0.0;
  auto it = total_bytes.find(p);
  return it == total_bytes.end() ? 0.0 : static_cast<double>(it->second) / dur;
}

BandwidthReport analyze_bandwidth(const std::vector<net::CapturedPacket>& packets,
                                  double bucket_seconds) {
  BandwidthReport out;
  out.bucket_seconds = bucket_seconds;
  if (packets.empty()) return out;
  out.start_ts = packets.front().ts;

  std::map<net::FlowKey, std::uint64_t> connection_bytes;
  std::optional<Timestamp> prev_iec104;

  for (const auto& pkt : packets) {
    auto frame = net::decode_frame(pkt.data);
    if (!frame) continue;
    TapProtocol proto = classify(frame.value());
    double rel = to_seconds(static_cast<DurationUs>(pkt.ts - out.start_ts));
    auto bucket_index = static_cast<std::size_t>(rel / bucket_seconds);

    auto& buckets = out.series[proto];
    while (buckets.size() <= bucket_index) {
      buckets.push_back(RateBucket{static_cast<double>(buckets.size()) * bucket_seconds,
                                   0, 0});
    }
    buckets[bucket_index].bytes += pkt.data.size();
    ++buckets[bucket_index].packets;
    out.total_bytes[proto] += pkt.data.size();
    ++out.total_packets[proto];

    connection_bytes[net::FlowKey{frame->ip.src, frame->tcp.src_port, frame->ip.dst,
                                  frame->tcp.dst_port}
                         .canonical()] += frame->payload.size();

    if (proto == TapProtocol::kIec104) {
      if (prev_iec104) {
        out.iec104_interarrival_s.add(
            to_seconds(static_cast<DurationUs>(pkt.ts - *prev_iec104)));
      }
      prev_iec104 = pkt.ts;
    }
  }

  out.top_connections.assign(connection_bytes.begin(), connection_bytes.end());
  std::sort(out.top_connections.begin(), out.top_connections.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (out.top_connections.size() > 20) out.top_connections.resize(20);
  return out;
}

}  // namespace uncharted::analysis
