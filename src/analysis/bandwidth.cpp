#include "analysis/bandwidth.hpp"

#include <algorithm>
#include <optional>

#include "net/frame.hpp"

namespace uncharted::analysis {

namespace {
TapProtocol classify(const net::DecodedFrame& frame) {
  auto on = [&](std::uint16_t port) {
    return frame.tcp.src_port == port || frame.tcp.dst_port == port;
  };
  if (on(2404)) return TapProtocol::kIec104;
  if (on(4712)) return TapProtocol::kC37118;
  if (on(102)) return TapProtocol::kIccp;
  return TapProtocol::kOther;
}

/// Longest silence (in buckets) densely zero-filled in a rate series. At
/// the default 10 s bucket that is ~28 hours; a larger jump is recorded as
/// a discontinuity instead of materializing the gap, so one absurd
/// timestamp cannot balloon the series to gigabytes.
constexpr std::size_t kMaxGapFill = 10'000;
}  // namespace

std::string tap_protocol_name(TapProtocol p) {
  switch (p) {
    case TapProtocol::kIec104: return "IEC 104";
    case TapProtocol::kC37118: return "C37.118";
    case TapProtocol::kIccp: return "ICCP";
    case TapProtocol::kOther: return "other";
  }
  return "?";
}

double BandwidthReport::duration_seconds() const {
  double max_t = 0.0;
  for (const auto& [proto, buckets] : series) {
    if (!buckets.empty()) {
      max_t = std::max(max_t, buckets.back().t_seconds + bucket_seconds);
    }
  }
  return max_t;
}

double BandwidthReport::mean_rate_bps(TapProtocol p) const {
  double dur = duration_seconds();
  if (dur <= 0.0) return 0.0;
  auto it = total_bytes.find(p);
  return it == total_bytes.end() ? 0.0 : static_cast<double>(it->second) / dur;
}

BandwidthReport analyze_bandwidth(const std::vector<net::CapturedPacket>& packets,
                                  double bucket_seconds) {
  BandwidthAccumulator acc(bucket_seconds);
  for (const auto& pkt : packets) acc.add_packet(pkt);
  return acc.finish();
}

BandwidthReport analyze_bandwidth(std::span<const net::FrameView> frames,
                                  double bucket_seconds) {
  BandwidthAccumulator acc(bucket_seconds);
  for (const auto& frame : frames) acc.add_packet(frame.ts, frame.data);
  return acc.finish();
}

BandwidthAccumulator::BandwidthAccumulator(double bucket_seconds)
    : bucket_seconds_(bucket_seconds) {}

void BandwidthAccumulator::add_packet(Timestamp ts,
                                      std::span<const std::uint8_t> data) {
  if (!have_start_) {
    start_ts_ = ts;
    have_start_ = true;
  }
  net::DecodedFrame frame;
  if (!net::decode_frame_into(data, frame)) return;
  TapProtocol proto = classify(frame);
  // A packet stamped before the capture start (reordered tap, or a forged
  // timestamp) collapses into bucket 0; unsigned subtraction would
  // otherwise wrap to a ~580,000-year offset.
  std::size_t bucket_index = 0;
  if (ts > start_ts_) {
    double rel = to_seconds(static_cast<DurationUs>(ts - start_ts_));
    bucket_index = static_cast<std::size_t>(rel / bucket_seconds_);
  }
  const double t = static_cast<double>(bucket_index) * bucket_seconds_;

  auto& buckets = series_[proto];
  RateBucket* slot = nullptr;
  if (buckets.empty() || buckets.back().t_seconds < t) {
    // Zero-fill short silences so contiguous traffic plots densely, but a
    // timestamp jump (hostile, corrupt, or a tap left running across an
    // outage) must not allocate one bucket per bucket-width of the gap:
    // past kMaxGapFill the series records a discontinuity — the new bucket
    // carries its own t_seconds and nothing is materialized between.
    const double next_t =
        buckets.empty() ? 0.0 : buckets.back().t_seconds + bucket_seconds_;
    if (t > next_t) {
      auto gap = static_cast<std::size_t>((t - next_t) / bucket_seconds_ + 0.5);
      if (gap <= kMaxGapFill) {
        for (std::size_t i = 0; i < gap; ++i) {
          buckets.push_back(
              RateBucket{next_t + static_cast<double>(i) * bucket_seconds_, 0, 0});
        }
      }
    }
    buckets.push_back(RateBucket{t, 0, 0});
    slot = &buckets.back();
  } else {
    // At or before the tail: the bucket usually exists (dense fill), but a
    // reordered packet can land in an elided gap — insert it in place.
    auto it = std::lower_bound(
        buckets.begin(), buckets.end(), t,
        [](const RateBucket& b, double want) { return b.t_seconds < want; });
    if (it == buckets.end() || it->t_seconds != t) {
      it = buckets.insert(it, RateBucket{t, 0, 0});
    }
    slot = &*it;
  }
  slot->bytes += data.size();
  ++slot->packets;
  total_bytes_[proto] += data.size();
  ++total_packets_[proto];

  connection_bytes_[net::FlowKey{frame.ip.src, frame.tcp.src_port, frame.ip.dst,
                                 frame.tcp.dst_port}
                        .canonical()] += frame.payload.size();

  if (proto == TapProtocol::kIec104) {
    // A reordered packet would wrap the unsigned gap into an astronomical
    // inter-arrival sample; skip it rather than poison the statistics.
    if (prev_iec104_ && ts >= *prev_iec104_) {
      iec104_interarrival_s_.add(
          to_seconds(static_cast<DurationUs>(ts - *prev_iec104_)));
    }
    prev_iec104_ = ts;
  }
}

BandwidthReport BandwidthAccumulator::finish() const {
  BandwidthReport out;
  out.bucket_seconds = bucket_seconds_;
  out.start_ts = start_ts_;
  out.series = series_;
  out.total_bytes = total_bytes_;
  out.total_packets = total_packets_;
  out.iec104_interarrival_s = iec104_interarrival_s_;
  out.top_connections.assign(connection_bytes_.begin(), connection_bytes_.end());
  std::sort(out.top_connections.begin(), out.top_connections.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (out.top_connections.size() > 20) out.top_connections.resize(20);
  return out;
}

void BandwidthAccumulator::save(ByteWriter& w) const {
  w.f64le(bucket_seconds_);
  w.u8(have_start_ ? 1 : 0);
  w.u64le(start_ts_);
  w.u32le(static_cast<std::uint32_t>(series_.size()));
  for (const auto& [proto, buckets] : series_) {
    w.u8(static_cast<std::uint8_t>(proto));
    w.u32le(static_cast<std::uint32_t>(buckets.size()));
    for (const auto& b : buckets) {
      w.f64le(b.t_seconds);
      w.u64le(b.bytes);
      w.u64le(b.packets);
    }
  }
  auto save_totals = [&w](const std::map<TapProtocol, std::uint64_t>& m) {
    w.u32le(static_cast<std::uint32_t>(m.size()));
    for (const auto& [proto, v] : m) {
      w.u8(static_cast<std::uint8_t>(proto));
      w.u64le(v);
    }
  };
  save_totals(total_bytes_);
  save_totals(total_packets_);
  w.u32le(static_cast<std::uint32_t>(connection_bytes_.size()));
  for (const auto& [key, bytes] : connection_bytes_) {
    key.save(w);
    w.u64le(bytes);
  }
  w.u8(prev_iec104_.has_value() ? 1 : 0);
  if (prev_iec104_) w.u64le(*prev_iec104_);
  iec104_interarrival_s_.save(w);
}

Status BandwidthAccumulator::load(ByteReader& r) {
  auto bucket = r.f64le();
  auto have_start = r.u8();
  auto start = r.u64le();
  if (!start) return start.error();
  bucket_seconds_ = bucket.value();
  have_start_ = have_start.value() != 0;
  start_ts_ = start.value();

  auto series_count = r.u32le();
  if (!series_count) return series_count.error();
  series_.clear();
  for (std::uint32_t i = 0; i < series_count.value(); ++i) {
    auto proto = r.u8();
    auto bucket_count = r.u32le();
    if (!bucket_count) return bucket_count.error();
    auto& buckets = series_[static_cast<TapProtocol>(proto.value())];
    buckets.reserve(bucket_count.value());
    for (std::uint32_t j = 0; j < bucket_count.value(); ++j) {
      auto t = r.f64le();
      auto bytes = r.u64le();
      auto packets = r.u64le();
      if (!packets) return packets.error();
      buckets.push_back(RateBucket{t.value(), bytes.value(), packets.value()});
    }
  }

  auto load_totals = [&r](std::map<TapProtocol, std::uint64_t>& m) -> Status {
    auto count = r.u32le();
    if (!count) return count.error();
    m.clear();
    for (std::uint32_t i = 0; i < count.value(); ++i) {
      auto proto = r.u8();
      auto v = r.u64le();
      if (!v) return v.error();
      m[static_cast<TapProtocol>(proto.value())] = v.value();
    }
    return Status::Ok();
  };
  if (auto st = load_totals(total_bytes_); !st) return st;
  if (auto st = load_totals(total_packets_); !st) return st;

  auto conn_count = r.u32le();
  if (!conn_count) return conn_count.error();
  connection_bytes_.clear();
  for (std::uint32_t i = 0; i < conn_count.value(); ++i) {
    auto key = net::FlowKey::load(r);
    if (!key) return key.error();
    auto bytes = r.u64le();
    if (!bytes) return bytes.error();
    connection_bytes_[key.value()] = bytes.value();
  }

  auto has_prev = r.u8();
  if (!has_prev) return has_prev.error();
  prev_iec104_.reset();
  if (has_prev.value()) {
    auto prev = r.u64le();
    if (!prev) return prev.error();
    prev_iec104_ = prev.value();
  }
  auto stats = RunningStats::load(r);
  if (!stats) return stats.error();
  iec104_interarrival_s_ = stats.value();
  return Status::Ok();
}

}  // namespace uncharted::analysis
