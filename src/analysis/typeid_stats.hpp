// ASDU typeID distribution (Table 7) and typeID -> physical measurement
// mapping (Table 8).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/dataset.hpp"

namespace uncharted::analysis {

/// Table 7: per-typeID ASDU counts and shares.
struct TypeIdDistribution {
  std::map<std::uint8_t, std::uint64_t> counts;
  std::uint64_t total = 0;

  double percentage(std::uint8_t type) const {
    auto it = counts.find(type);
    if (it == counts.end() || total == 0) return 0.0;
    return static_cast<double>(it->second) / static_cast<double>(total);
  }
  /// (typeID, count) sorted by count descending.
  std::vector<std::pair<std::uint8_t, std::uint64_t>> sorted() const;
};

TypeIdDistribution typeid_distribution(const CaptureDataset& dataset);

/// Table 8: per-typeID transmitting-station count. A station "transmits" a
/// typeID when an I-format ASDU with it originates from the station's IP
/// (server-originated commands count the *target* station, matching the
/// paper's per-station accounting of AGC-SP and interrogations).
struct TypeIdStations {
  std::map<std::uint8_t, std::set<net::Ipv4Addr>> stations;

  std::size_t station_count(std::uint8_t type) const {
    auto it = stations.find(type);
    return it == stations.end() ? 0 : it->second.size();
  }
};

TypeIdStations typeid_station_counts(const CaptureDataset& dataset);

}  // namespace uncharted::analysis
