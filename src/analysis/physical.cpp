#include "analysis/physical.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace uncharted::analysis {

double TimeSeries::min_value() const {
  double m = points.empty() ? 0.0 : points.front().value;
  for (const auto& p : points) m = std::min(m, p.value);
  return m;
}

double TimeSeries::max_value() const {
  double m = points.empty() ? 0.0 : points.front().value;
  for (const auto& p : points) m = std::max(m, p.value);
  return m;
}

std::map<SeriesKey, TimeSeries> extract_time_series(const CaptureDataset& dataset) {
  std::map<SeriesKey, TimeSeries> out;
  for (const auto& rec : dataset.records()) {
    const auto& apdu = rec.apdu.apdu;
    if (apdu.format != iec104::ApduFormat::kI || !apdu.asdu) continue;
    // Monitor direction only: data flowing from the outstation.
    if (rec.flow.src_port != iec104::kIec104Port) continue;
    auto type = static_cast<std::uint8_t>(apdu.asdu->type);
    if (type >= 45) continue;  // commands / system types carry no telemetry
    for (const auto& obj : apdu.asdu->objects) {
      double value = 0.0;
      if (!iec104::numeric_value(obj.value, value)) continue;
      SeriesKey key{rec.flow.src_ip, obj.ioa};
      auto& series = out[key];
      series.type_id = type;
      Timestamp ts = obj.time ? obj.time->to_timestamp() : rec.ts;
      series.points.push_back(SeriesPoint{ts, value});
    }
  }
  for (auto& [key, series] : out) {
    std::sort(series.points.begin(), series.points.end(),
              [](const SeriesPoint& a, const SeriesPoint& b) { return a.ts < b.ts; });
  }
  return out;
}

std::map<net::Ipv4Addr, TimeSeries> extract_setpoint_series(const CaptureDataset& dataset) {
  std::map<net::Ipv4Addr, TimeSeries> out;
  for (const auto& rec : dataset.records()) {
    const auto& apdu = rec.apdu.apdu;
    if (apdu.format != iec104::ApduFormat::kI || !apdu.asdu) continue;
    if (apdu.asdu->type != iec104::TypeId::C_SE_NC_1) continue;
    if (apdu.asdu->cot.cause != iec104::Cause::kActivation) continue;
    // Control direction: the target outstation owns the IEC 104 port.
    if (rec.flow.dst_port != iec104::kIec104Port) continue;
    for (const auto& obj : apdu.asdu->objects) {
      if (const auto* sp = std::get_if<iec104::SetpointFloat>(&obj.value)) {
        auto& series = out[rec.flow.dst_ip];
        series.type_id = 50;
        series.points.push_back(SeriesPoint{rec.ts, sp->value});
      }
    }
  }
  return out;
}

std::vector<VarianceRank> rank_by_normalized_variance(
    const std::map<SeriesKey, TimeSeries>& series, std::size_t min_samples) {
  std::vector<VarianceRank> out;
  for (const auto& [key, ts] : series) {
    if (ts.points.size() < min_samples) continue;
    std::vector<double> values;
    values.reserve(ts.points.size());
    for (const auto& p : ts.points) values.push_back(p.value);
    out.push_back(VarianceRank{key, ts.type_id, normalized_variance(values),
                               ts.points.size()});
  }
  std::sort(out.begin(), out.end(), [](const VarianceRank& a, const VarianceRank& b) {
    return a.normalized_variance > b.normalized_variance;
  });
  return out;
}

std::string signature_state_name(SignatureState s) {
  switch (s) {
    case SignatureState::kIdle: return "idle";
    case SignatureState::kVoltageRamp: return "voltage-ramp";
    case SignatureState::kSynchronized: return "synchronized";
    case SignatureState::kBreakerClosed: return "breaker-closed";
    case SignatureState::kPowerRamp: return "power-ramp";
  }
  return "?";
}

GeneratorActivation detect_generator_activation(const TimeSeries& voltage,
                                                const TimeSeries& status,
                                                const TimeSeries& power,
                                                double nominal_kv) {
  GeneratorActivation out;
  SignatureState state = SignatureState::kIdle;
  out.trajectory.push_back(state);

  auto status_at = [&](Timestamp ts) {
    double last = 0.0;
    for (const auto& p : status.points) {
      if (p.ts > ts) break;
      last = p.value;
    }
    return last;
  };
  auto power_at = [&](Timestamp ts) {
    double last = 0.0;
    for (const auto& p : power.points) {
      if (p.ts > ts) break;
      last = p.value;
    }
    return last;
  };

  // Drive the machine from the voltage series (the leading indicator),
  // consulting status/power at each step.
  for (const auto& p : voltage.points) {
    double v = p.value;
    double st = status_at(p.ts);
    double pw = power_at(p.ts);

    switch (state) {
      case SignatureState::kIdle:
        if (v > 0.05 * nominal_kv && st < 1.5) {
          state = SignatureState::kVoltageRamp;
          out.voltage_ramp_at = p.ts;
        }
        break;
      case SignatureState::kVoltageRamp:
        if (v >= 0.95 * nominal_kv && st < 1.5 && pw < 0.02 * nominal_kv) {
          state = SignatureState::kSynchronized;
          out.synchronized_at = p.ts;
        }
        break;
      case SignatureState::kSynchronized:
        if (st >= 1.5) {
          state = SignatureState::kBreakerClosed;
          out.breaker_closed_at = p.ts;
        }
        break;
      case SignatureState::kBreakerClosed:
        if (pw > 1.0) {
          state = SignatureState::kPowerRamp;
          out.power_ramp_at = p.ts;
          out.complete = true;
        }
        break;
      case SignatureState::kPowerRamp:
        break;
    }
    if (out.trajectory.back() != state) out.trajectory.push_back(state);
    if (out.complete) break;
  }
  return out;
}

double setpoint_response_correlation(const TimeSeries& setpoints, const TimeSeries& power,
                                     double lag_s) {
  if (setpoints.points.size() < 3 || power.points.empty()) return 0.0;
  std::vector<double> x, y;
  for (const auto& sp : setpoints.points) {
    Timestamp target = sp.ts + from_seconds(lag_s);
    // Power sample closest to (and not before) the lagged time.
    auto it = std::lower_bound(power.points.begin(), power.points.end(), target,
                               [](const SeriesPoint& p, Timestamp t) { return p.ts < t; });
    if (it == power.points.end()) continue;
    x.push_back(sp.value);
    y.push_back(it->value);
  }
  if (x.size() < 3) return 0.0;
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(x.size());
  my /= static_cast<double>(y.size());
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx <= 0 || syy <= 0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::optional<StepEvent> largest_step(const TimeSeries& series) {
  if (series.points.size() < 2) return std::nullopt;
  StepEvent best{0, 0.0};
  for (std::size_t i = 1; i < series.points.size(); ++i) {
    double delta = series.points[i].value - series.points[i - 1].value;
    if (std::fabs(delta) > std::fabs(best.delta)) {
      best.delta = delta;
      best.at = series.points[i].ts;
    }
  }
  return best;
}

}  // namespace uncharted::analysis
