// TCP flow lifetime analysis (§6.2, Table 3, Fig 8, Fig 9).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/flow.hpp"
#include "util/stats.hpp"

namespace uncharted::analysis {

/// The Table 3 rows.
struct FlowSummary {
  std::uint64_t total = 0;
  std::uint64_t short_lived = 0;       ///< SYN and FIN/RST within capture
  std::uint64_t long_lived = 0;
  std::uint64_t short_under_1s = 0;    ///< short-lived lasting < 1 s
  std::uint64_t short_over_1s = 0;

  double short_fraction() const {
    return total ? static_cast<double>(short_lived) / static_cast<double>(total) : 0.0;
  }
  double long_fraction() const {
    return total ? static_cast<double>(long_lived) / static_cast<double>(total) : 0.0;
  }
  double under_1s_fraction_of_short() const {
    return short_lived ? static_cast<double>(short_under_1s) /
                             static_cast<double>(short_lived)
                       : 0.0;
  }
};

/// Fig 9: per responder, how backup connection attempts fail.
struct RejectBehaviour {
  net::Ipv4Addr responder;   ///< the outstation refusing/ignoring
  std::uint64_t rst_refused = 0;   ///< SYN answered by RST
  std::uint64_t syn_ignored = 0;   ///< SYN never answered
  std::uint64_t reset_midway = 0;  ///< established then RST
};

struct FlowAnalysis {
  FlowSummary summary;
  LogHistogram short_lived_durations{-3, 3, 4};  ///< Fig 8 (1 ms .. 1000 s)
  std::vector<RejectBehaviour> reject_behaviours; ///< sorted by total desc
  std::vector<net::FlowRecord> flows;             ///< the raw records
};

/// Runs the full §6.2 analysis over a capture's flow table.
FlowAnalysis analyze_flows(const net::FlowTable& table);

}  // namespace uncharted::analysis
