// K-means++ clustering with the model-selection tooling the paper uses:
// elbow on the sum of squared errors, explained variance, and silhouette
// scores (§6.3).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace uncharted::exec {
class Pool;
}  // namespace uncharted::exec

namespace uncharted::analysis {

/// Row-major data matrix: points[i] is one observation.
using Matrix = std::vector<std::vector<double>>;

struct KMeansResult {
  int k = 0;
  Matrix centroids;
  std::vector<int> assignment;  ///< per point, 0..k-1
  double sse = 0.0;             ///< sum of squared distances to centroids
  int iterations = 0;
};

struct KMeansOptions {
  int max_iterations = 100;
  double tolerance = 1e-9;   ///< centroid movement convergence threshold
  int restarts = 4;          ///< keep the best of this many seedings
  std::uint64_t seed = 7;
  /// Runs restarts and the assignment step on this pool (null = inline).
  /// Each restart draws from its own SplitMix64-derived seed, and ties
  /// between equally good restarts resolve by restart index, so the
  /// result is identical at every thread count including 1.
  exec::Pool* pool = nullptr;
};

/// Runs K-means++ (k-means with D^2 seeding). Requires k >= 1 and
/// points.size() >= k; throws std::invalid_argument otherwise.
KMeansResult kmeans(const Matrix& points, int k, const KMeansOptions& options = {});

/// Mean silhouette coefficient of a clustering in [-1, 1]; 0 when any
/// cluster is empty or k < 2.
double silhouette_score(const Matrix& points, const std::vector<int>& assignment, int k);

/// Fraction of total variance explained by the clustering:
/// 1 - SSE / total sum of squares around the global mean.
double explained_variance(const Matrix& points, const KMeansResult& result);

/// Sweeps k in [k_min, k_max] and returns per-k diagnostics.
struct KSweepEntry {
  int k;
  double sse;
  double explained;
  double silhouette;
};
std::vector<KSweepEntry> sweep_k(const Matrix& points, int k_min, int k_max,
                                 const KMeansOptions& options = {});

/// Elbow heuristic: the k whose SSE curve has the largest distance from the
/// straight line joining the first and last sweep points.
int elbow_k(const std::vector<KSweepEntry>& sweep);

/// Z-score standardization per column (zero variance columns pass through).
Matrix standardize(const Matrix& points);

}  // namespace uncharted::analysis
