// Session feature extraction and clustering (§6.3, Figs 10-11).
//
// A session is all APDU-bearing packets sent in one direction between two
// endpoints. Ten candidate statistical features are computed; per-feature
// silhouette ranking recovers the paper's selection of five (mean
// inter-arrival time, packet count, %I, %S, %U).
#pragma once

#include <string>
#include <vector>

#include "analysis/dataset.hpp"
#include "analysis/kmeans.hpp"
#include "analysis/pca.hpp"

namespace uncharted::analysis {

/// Candidate feature indices into SessionFeatures::values.
enum SessionFeature : std::size_t {
  kFeatDirection = 0,    ///< 1 when sent by the control server side
  kFeatMeanInterArrival, ///< seconds
  kFeatStdInterArrival,
  kFeatTotalBytes,       ///< APDU wire bytes
  kFeatPacketCount,
  kFeatMeanApduSize,
  kFeatPercentI,
  kFeatPercentS,
  kFeatPercentU,
  kFeatDistinctIoas,
  kFeatureCount,
};

std::string feature_name(std::size_t index);

/// One directed session with its feature vector.
struct SessionFeatures {
  net::Ipv4Addr src;
  net::Ipv4Addr dst;
  std::vector<double> values;  ///< kFeatureCount entries
};

/// Extracts all sessions with >= 1 APDU. Sessions are independent, so
/// extraction fans out per session on `pool` (inline when null); the
/// output order is the dataset's session-map order either way.
std::vector<SessionFeatures> extract_session_features(const CaptureDataset& dataset,
                                                      exec::Pool* pool = nullptr);

/// Mean silhouette of clustering on a single feature (k clusters), used to
/// rank candidate features as the paper does.
struct FeatureRank {
  std::size_t feature;
  double silhouette;
};
std::vector<FeatureRank> rank_features_by_silhouette(
    const std::vector<SessionFeatures>& sessions, int k = 5,
    exec::Pool* pool = nullptr);

/// The paper's selected five features.
std::vector<std::size_t> paper_feature_selection();

/// Full clustering result for Figs 10-11.
struct SessionClustering {
  std::vector<SessionFeatures> sessions;
  std::vector<std::size_t> selected_features;
  std::vector<KSweepEntry> k_sweep;      ///< k = 2..8 diagnostics
  int chosen_k = 0;                      ///< elbow choice
  KMeansResult clustering;               ///< on the chosen k
  PcaResult projection;                  ///< 2-D PCA of the selected features

  struct ClusterProfile {
    int cluster = 0;
    std::size_t size = 0;
    double mean_inter_arrival = 0.0;
    double mean_packets = 0.0;
    double pct_i = 0.0, pct_s = 0.0, pct_u = 0.0;
    std::string interpretation;  ///< heuristic label matching Fig 11
  };
  std::vector<ClusterProfile> profiles;

  /// Sessions in the cluster with the largest mean inter-arrival time
  /// (the paper's outlier "cluster 0": C2->O30 and C4<->O22).
  std::vector<const SessionFeatures*> outlier_sessions;
};

/// Runs the paper's session-clustering pipeline. `force_k` pins K (the
/// paper uses 5); 0 lets the elbow choose. `pool` parallelizes feature
/// extraction, the k sweep, the final k-means and the PCA — all with
/// thread-count-invariant results.
SessionClustering cluster_sessions(const CaptureDataset& dataset, int force_k = 5,
                                   exec::Pool* pool = nullptr);

}  // namespace uncharted::analysis
