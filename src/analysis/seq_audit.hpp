// IEC 104 sequence-number audit: per directed connection, verify that
// N(S) increments by one per I-APDU and that N(R) never acknowledges
// beyond what was sent. Gaps indicate capture loss; regressions indicate
// retransmission or endpoint restarts — both useful when judging capture
// quality (the paper's long-lived flows start mid-stream, so the audit
// anchors on the first observed value).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "analysis/dataset.hpp"

namespace uncharted::analysis {

struct SeqAuditEntry {
  net::FlowKey direction;        ///< directed 4-tuple
  std::uint64_t i_apdus = 0;
  std::uint64_t gaps = 0;        ///< forward jumps in N(S) (lost frames)
  std::uint64_t duplicates = 0;  ///< repeated N(S) (retransmissions)
  std::uint64_t resets = 0;      ///< N(S) regressions (endpoint restart)
  std::uint64_t ack_violations = 0;  ///< N(R) beyond peer's N(S)+1 window
};

struct SeqAuditReport {
  std::vector<SeqAuditEntry> entries;  ///< only directions with I traffic
  std::uint64_t total_gaps = 0;
  std::uint64_t total_duplicates = 0;
  std::uint64_t total_ack_violations = 0;
};

/// Audits every connection in the dataset.
SeqAuditReport audit_sequences(const CaptureDataset& dataset);

}  // namespace uncharted::analysis
