#include "analysis/seq_audit.hpp"

#include "iec104/seq15.hpp"

namespace uncharted::analysis {

using iec104::seq15_delta;
using iec104::seq15_next;

namespace {
struct DirState {
  bool seen = false;
  std::uint16_t expected_ns = 0;  ///< next N(S) we expect
  SeqAuditEntry entry;
};
}  // namespace

SeqAuditReport audit_sequences(const CaptureDataset& dataset) {
  std::map<net::FlowKey, DirState> dirs;

  for (const auto& rec : dataset.records()) {
    const auto& apdu = rec.apdu.apdu;
    auto& st = dirs[rec.flow];
    st.entry.direction = rec.flow;

    if (apdu.format == iec104::ApduFormat::kI) {
      ++st.entry.i_apdus;
      if (!st.seen) {
        st.seen = true;  // anchor mid-stream
        st.expected_ns = seq15_next(apdu.send_seq);
      } else {
        int delta = seq15_delta(apdu.send_seq, st.expected_ns);
        if (delta == 0) {
          st.expected_ns = seq15_next(apdu.send_seq);
        } else if (delta > 0) {
          ++st.entry.gaps;
          st.expected_ns = seq15_next(apdu.send_seq);
        } else if (delta == -1) {
          ++st.entry.duplicates;  // same N(S) again: retransmitted APDU
        } else {
          ++st.entry.resets;
          st.expected_ns = seq15_next(apdu.send_seq);
        }
      }
    }

    // Acknowledgement audit: the N(R) in I/S frames must not exceed the
    // peer direction's next N(S).
    if (apdu.format == iec104::ApduFormat::kI || apdu.format == iec104::ApduFormat::kS) {
      auto peer_it = dirs.find(rec.flow.reversed());
      if (peer_it != dirs.end() && peer_it->second.seen) {
        int ahead = seq15_delta(apdu.recv_seq, peer_it->second.expected_ns);
        if (ahead > 0) ++st.entry.ack_violations;
      }
    }
  }

  SeqAuditReport report;
  for (auto& [key, st] : dirs) {
    if (st.entry.i_apdus == 0 && st.entry.ack_violations == 0) continue;
    report.total_gaps += st.entry.gaps;
    report.total_duplicates += st.entry.duplicates;
    report.total_ack_violations += st.entry.ack_violations;
    report.entries.push_back(st.entry);
  }
  return report;
}

}  // namespace uncharted::analysis
