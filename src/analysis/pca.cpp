#include "analysis/pca.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "exec/pool.hpp"

namespace uncharted::analysis {

namespace {

/// Rows per reduction chunk. Fixed — never derived from worker count — so
/// partial sums always cover the same row ranges and combine in the same
/// order: the summation tree is a function of the input alone.
constexpr std::size_t kReduceGrain = 64;

/// Cyclic Jacobi rotation eigen-solver for a symmetric matrix.
/// Returns eigenvalues on the diagonal and accumulates eigenvectors in V
/// (columns).
void jacobi_eigen(Matrix& a, Matrix& v) {
  const std::size_t n = a.size();
  v.assign(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) v[i][i] = 1.0;

  for (int sweep = 0; sweep < 64; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += a[p][q] * a[p][q];
    }
    if (off < 1e-22) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (std::fabs(a[p][q]) < 1e-18) continue;
        double theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
        double t = (theta >= 0 ? 1.0 : -1.0) /
                   (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;

        for (std::size_t i = 0; i < n; ++i) {
          double aip = a[i][p], aiq = a[i][q];
          a[i][p] = c * aip - s * aiq;
          a[i][q] = s * aip + c * aiq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          double api = a[p][i], aqi = a[q][i];
          a[p][i] = c * api - s * aqi;
          a[q][i] = s * api + c * aqi;
        }
        for (std::size_t i = 0; i < n; ++i) {
          double vip = v[i][p], viq = v[i][q];
          v[i][p] = c * vip - s * viq;
          v[i][q] = s * vip + c * viq;
        }
      }
    }
  }
}

}  // namespace

double PcaResult::explained_by(std::size_t n) const {
  double total = std::accumulate(eigenvalues.begin(), eigenvalues.end(), 0.0);
  if (total <= 0.0) return 0.0;
  double top = 0.0;
  for (std::size_t i = 0; i < n && i < eigenvalues.size(); ++i) top += eigenvalues[i];
  return top / total;
}

PcaResult pca(const Matrix& points, std::size_t dims, exec::Pool* pool) {
  if (points.size() < 2) throw std::invalid_argument("pca: need at least 2 rows");
  const std::size_t d = points[0].size();
  const std::size_t n = points.size();
  dims = std::min(dims, d);
  const std::size_t chunks = (n + kReduceGrain - 1) / kReduceGrain;

  // Mean: per-chunk partial sums, combined in chunk order. One chunk (the
  // common small-input case) degenerates to the plain sequential sum.
  PcaResult out;
  std::vector<std::vector<double>> mean_parts(chunks, std::vector<double>(d, 0.0));
  exec::parallel_for(pool, n, kReduceGrain, [&](std::size_t begin, std::size_t end) {
    auto& part = mean_parts[begin / kReduceGrain];
    for (std::size_t r = begin; r < end; ++r) {
      for (std::size_t i = 0; i < d; ++i) part[i] += points[r][i];
    }
  });
  out.mean.assign(d, 0.0);
  for (const auto& part : mean_parts) {
    for (std::size_t i = 0; i < d; ++i) out.mean[i] += part[i];
  }
  for (auto& m : out.mean) m /= static_cast<double>(n);

  // Covariance (upper triangle), same chunked-reduction shape.
  std::vector<Matrix> cov_parts(chunks, Matrix(d, std::vector<double>(d, 0.0)));
  exec::parallel_for(pool, n, kReduceGrain, [&](std::size_t begin, std::size_t end) {
    auto& part = cov_parts[begin / kReduceGrain];
    for (std::size_t r = begin; r < end; ++r) {
      const auto& p = points[r];
      for (std::size_t i = 0; i < d; ++i) {
        double di = p[i] - out.mean[i];
        for (std::size_t j = i; j < d; ++j) {
          part[i][j] += di * (p[j] - out.mean[j]);
        }
      }
    }
  });
  Matrix cov(d, std::vector<double>(d, 0.0));
  for (const auto& part : cov_parts) {
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = i; j < d; ++j) cov[i][j] += part[i][j];
    }
  }
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i; j < d; ++j) {
      cov[i][j] /= static_cast<double>(points.size() - 1);
      cov[j][i] = cov[i][j];
    }
  }

  Matrix vectors;
  jacobi_eigen(cov, vectors);

  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(d);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return cov[a][a] > cov[b][b]; });

  out.eigenvalues.reserve(d);
  out.components.reserve(d);
  for (std::size_t r = 0; r < d; ++r) {
    std::size_t idx = order[r];
    out.eigenvalues.push_back(std::max(0.0, cov[idx][idx]));
    std::vector<double> comp(d);
    for (std::size_t i = 0; i < d; ++i) comp[i] = vectors[i][idx];
    out.components.push_back(std::move(comp));
  }

  // Projection is per-row independent: no reduction, no FP-order hazard.
  out.projected.assign(n, std::vector<double>(dims, 0.0));
  exec::parallel_for(pool, n, kReduceGrain, [&](std::size_t begin, std::size_t end) {
    for (std::size_t r = begin; r < end; ++r) {
      const auto& p = points[r];
      auto& proj = out.projected[r];
      for (std::size_t c = 0; c < dims; ++c) {
        for (std::size_t i = 0; i < d; ++i) {
          proj[c] += (p[i] - out.mean[i]) * out.components[c][i];
        }
      }
    }
  });
  return out;
}

}  // namespace uncharted::analysis
