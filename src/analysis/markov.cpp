#include "analysis/markov.hpp"

#include <cmath>

#include "exec/pool.hpp"

namespace uncharted::analysis {

std::string apdu_token(const iec104::Apdu& apdu) { return apdu.token(); }

MarkovChain MarkovChain::from_tokens(const std::vector<std::string>& tokens) {
  MarkovChain chain;
  for (const auto& t : tokens) chain.counts_.try_emplace(t);
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    ++chain.counts_[tokens[i]][tokens[i + 1]];
    ++chain.outgoing_totals_[tokens[i]];
  }
  return chain;
}

std::size_t MarkovChain::edge_count() const {
  std::size_t edges = 0;
  for (const auto& [node, successors] : counts_) edges += successors.size();
  return edges;
}

double MarkovChain::probability(const std::string& current, const std::string& next) const {
  auto it = counts_.find(current);
  if (it == counts_.end()) return 0.0;
  auto jt = it->second.find(next);
  if (jt == it->second.end()) return 0.0;
  auto tot = outgoing_totals_.find(current);
  if (tot == outgoing_totals_.end() || tot->second == 0) return 0.0;
  return static_cast<double>(jt->second) / static_cast<double>(tot->second);
}

bool MarkovChain::has_self_loop(const std::string& token) const {
  auto it = counts_.find(token);
  return it != counts_.end() && it->second.count(token) > 0;
}

std::string MarkovChain::str() const {
  std::string out;
  for (const auto& [node, successors] : counts_) {
    for (const auto& [next, count] : successors) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3f", probability(node, next));
      out += node + " -> " + next + " : " + buf + "\n";
    }
  }
  return out;
}

void BigramModel::add_sequence(const std::vector<std::string>& tokens) {
  if (tokens.empty()) return;
  ++counts_[kStart][tokens.front()];
  ++totals_[kStart];
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    ++counts_[tokens[i]][tokens[i + 1]];
    ++totals_[tokens[i]];
  }
  ++counts_[tokens.back()][kEnd];
  ++totals_[tokens.back()];
}

double BigramModel::probability(const std::string& current, const std::string& next) const {
  auto it = counts_.find(current);
  if (it == counts_.end()) return 0.0;
  auto jt = it->second.find(next);
  if (jt == it->second.end()) return 0.0;
  return static_cast<double>(jt->second) / static_cast<double>(totals_.at(current));
}

double BigramModel::log2_score(const std::vector<std::string>& tokens,
                               double floor_log2) const {
  if (tokens.empty()) return 0.0;
  double total = 0.0;
  std::size_t transitions = 0;
  auto add = [&](const std::string& a, const std::string& b) {
    double p = probability(a, b);
    total += p > 0.0 ? std::log2(p) : floor_log2;
    ++transitions;
  };
  add(kStart, tokens.front());
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) add(tokens[i], tokens[i + 1]);
  add(tokens.back(), kEnd);
  return total / static_cast<double>(transitions);
}

bool BigramModel::contains_unseen_transition(const std::vector<std::string>& tokens) const {
  if (tokens.empty()) return false;
  if (probability(kStart, tokens.front()) == 0.0) return true;
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (probability(tokens[i], tokens[i + 1]) == 0.0) return true;
  }
  return probability(tokens.back(), kEnd) == 0.0;
}

std::string chain_cluster_name(ChainCluster c) {
  switch (c) {
    case ChainCluster::kPoint11: return "point(1,1)";
    case ChainCluster::kSquare: return "square";
    case ChainCluster::kEllipse: return "ellipse";
  }
  return "?";
}

std::vector<ConnectionChain> build_connection_chains(const CaptureDataset& dataset,
                                                     exec::Pool* pool) {
  const auto& records = dataset.records();

  // Flatten the connection map so each chain builds into its own slot;
  // the output keeps the map's key order at any thread count.
  struct Item {
    const EndpointPair* pair;
    const std::vector<std::size_t>* indices;
  };
  std::vector<Item> items;
  items.reserve(dataset.connections().size());
  for (const auto& [pair, indices] : dataset.connections()) {
    items.push_back(Item{&pair, &indices});
  }

  std::vector<ConnectionChain> out(items.size());
  exec::parallel_for(pool, items.size(), 4, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      ConnectionChain cc;
      cc.pair = *items[i].pair;
      const auto& indices = *items[i].indices;
      cc.tokens.reserve(indices.size());
      for (std::size_t idx : indices) {
        cc.tokens.push_back(apdu_token(records[idx].apdu.apdu));
        if (records[idx].apdu.apdu.asdu &&
            records[idx].apdu.apdu.asdu->type == iec104::TypeId::C_IC_NA_1) {
          cc.has_i100 = true;
        }
      }
      cc.chain = MarkovChain::from_tokens(cc.tokens);
      cc.nodes = cc.chain.node_count();
      cc.edges = cc.chain.edge_count();
      if (cc.nodes == 1 && cc.edges == 1) {
        cc.cluster = ChainCluster::kPoint11;
      } else if (cc.has_i100) {
        cc.cluster = ChainCluster::kEllipse;
      } else {
        cc.cluster = ChainCluster::kSquare;
      }
      out[i] = std::move(cc);
    }
  });
  return out;
}

}  // namespace uncharted::analysis
