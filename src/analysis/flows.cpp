#include "analysis/flows.hpp"

#include <algorithm>
#include <map>

namespace uncharted::analysis {

FlowAnalysis analyze_flows(const net::FlowTable& table) {
  FlowAnalysis out;
  out.flows = table.flows();

  std::map<net::Ipv4Addr, RejectBehaviour> rejects;

  for (const auto& flow : out.flows) {
    ++out.summary.total;
    if (flow.lifetime() == net::FlowLifetime::kShortLived) {
      ++out.summary.short_lived;
      double duration = flow.duration_seconds();
      out.short_lived_durations.add(duration);
      if (duration < 1.0) {
        ++out.summary.short_under_1s;
      } else {
        ++out.summary.short_over_1s;
      }
    } else {
      ++out.summary.long_lived;
    }

    // Reject behaviours: the responder is the destination of the flow's
    // initial SYN.
    if (flow.saw_syn) {
      net::Ipv4Addr responder = flow.key.dst_ip;
      if (flow.syn_rejected_with_rst) {
        auto& r = rejects[responder];
        r.responder = responder;
        ++r.rst_refused;
      } else if (!flow.saw_synack && !flow.saw_fin && !flow.saw_rst &&
                 flow.packets_rev == 0) {
        auto& r = rejects[responder];
        r.responder = responder;
        ++r.syn_ignored;
      } else if (flow.saw_synack && flow.saw_rst && !flow.saw_fin) {
        auto& r = rejects[responder];
        r.responder = responder;
        ++r.reset_midway;
      }
    }
  }

  for (auto& [ip, r] : rejects) {
    if (r.rst_refused + r.syn_ignored + r.reset_midway == 0) continue;
    out.reject_behaviours.push_back(r);
  }
  std::sort(out.reject_behaviours.begin(), out.reject_behaviours.end(),
            [](const RejectBehaviour& a, const RejectBehaviour& b) {
              auto ta = a.rst_refused + a.syn_ignored + a.reset_midway;
              auto tb = b.rst_refused + b.syn_ignored + b.reset_midway;
              return ta > tb;
            });
  return out;
}

}  // namespace uncharted::analysis
