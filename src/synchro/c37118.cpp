#include "synchro/c37118.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace uncharted::synchro {

namespace {

constexpr std::uint8_t kSyncByte = 0xaa;
constexpr std::uint8_t kVersion = 0x01;

void write_sync(ByteWriter& w, FrameType type) {
  w.u8(kSyncByte);
  w.u8(static_cast<std::uint8_t>((static_cast<std::uint8_t>(type) << 4) | kVersion));
}

void write_name16(ByteWriter& w, const std::string& name) {
  for (std::size_t i = 0; i < 16; ++i) {
    w.u8(i < name.size() ? static_cast<std::uint8_t>(name[i]) : ' ');
  }
}

std::string read_name16(ByteReader& r) {
  auto bytes = r.bytes(16);
  if (!bytes) return {};
  std::string s(bytes->begin(), bytes->end());
  while (!s.empty() && s.back() == ' ') s.pop_back();
  return s;
}

/// Finalizes a frame: patches FRAMESIZE and appends the CRC.
std::vector<std::uint8_t> finalize(ByteWriter&& w) {
  auto size = static_cast<std::uint16_t>(w.size() + 2);
  w.patch_u16be(2, size);
  std::uint16_t crc = crc_ccitt(w.view());
  w.u16be(crc);
  return w.take();
}

void write_common(ByteWriter& w, FrameType type, const FrameHeader& h) {
  write_sync(w, type);
  w.u16be(0);  // FRAMESIZE placeholder
  w.u16be(h.idcode);
  w.u32be(h.soc);
  w.u32be(h.fracsec);
}

std::uint16_t format_word(const PmuConfig& pmu) {
  std::uint16_t f = 0;
  if (pmu.phasors_polar) f |= 0x0001;
  if (pmu.phasors_float) f |= 0x0002;
  if (pmu.analogs_float) f |= 0x0004;
  if (pmu.freq_float) f |= 0x0008;
  return f;
}

}  // namespace

std::uint16_t crc_ccitt(std::span<const std::uint8_t> data) {
  std::uint16_t crc = 0xffff;
  for (auto byte : data) {
    crc = static_cast<std::uint16_t>(crc ^ (static_cast<std::uint16_t>(byte) << 8));
    for (int bit = 0; bit < 8; ++bit) {
      if (crc & 0x8000) {
        crc = static_cast<std::uint16_t>((crc << 1) ^ 0x1021);
      } else {
        crc = static_cast<std::uint16_t>(crc << 1);
      }
    }
  }
  return crc;
}

std::vector<std::uint8_t> encode_config(const ConfigFrame& frame) {
  ByteWriter w;
  write_common(w, FrameType::kConfig2, frame.header);
  w.u32be(frame.time_base);
  w.u16be(static_cast<std::uint16_t>(frame.pmus.size()));
  for (const auto& pmu : frame.pmus) {
    write_name16(w, pmu.station_name);
    w.u16be(pmu.idcode);
    w.u16be(format_word(pmu));
    w.u16be(static_cast<std::uint16_t>(pmu.phasor_names.size()));
    w.u16be(static_cast<std::uint16_t>(pmu.analog_names.size()));
    w.u16be(0);  // DGNMR: digital words unsupported in this profile
    for (const auto& name : pmu.phasor_names) write_name16(w, name);
    for (const auto& name : pmu.analog_names) write_name16(w, name);
    for (std::size_t i = 0; i < pmu.phasor_names.size(); ++i) {
      w.u32be(i < pmu.phasor_units.size() ? pmu.phasor_units[i] : 1u);
    }
    for (std::size_t i = 0; i < pmu.analog_names.size(); ++i) {
      w.u32be(i < pmu.analog_units.size() ? pmu.analog_units[i] : 1u);
    }
    w.u16be(pmu.nominal_freq_code);
    w.u16be(pmu.config_count);
  }
  w.u16be(frame.data_rate);
  return finalize(std::move(w));
}

std::vector<std::uint8_t> encode_data(const ConfigFrame& config, const DataFrame& frame) {
  ByteWriter w;
  write_common(w, FrameType::kData, frame.header);
  for (std::size_t p = 0; p < config.pmus.size() && p < frame.pmus.size(); ++p) {
    const auto& cfg = config.pmus[p];
    const auto& data = frame.pmus[p];
    w.u16be(data.stat);
    for (std::size_t i = 0; i < cfg.phasor_names.size(); ++i) {
      std::complex<double> v =
          i < data.phasors.size() ? data.phasors[i] : std::complex<double>{};
      if (cfg.phasors_float) {
        // 32-bit floats; rectangular only in this profile.
        ByteWriter tmp;
        tmp.f32le(static_cast<float>(v.real()));
        // C37.118 floats are big-endian IEEE; reuse bit pattern.
        auto le = tmp.take();
        w.u8(le[3]);
        w.u8(le[2]);
        w.u8(le[1]);
        w.u8(le[0]);
        ByteWriter tmp2;
        tmp2.f32le(static_cast<float>(v.imag()));
        auto le2 = tmp2.take();
        w.u8(le2[3]);
        w.u8(le2[2]);
        w.u8(le2[1]);
        w.u8(le2[0]);
      } else {
        double scale = (i < cfg.phasor_units.size() ? cfg.phasor_units[i] & 0xffffff : 1);
        if (scale <= 0) scale = 1;
        // PHUNIT is in 1e-5 V/A per count.
        auto re = static_cast<std::int16_t>(std::lround(v.real() / (scale * 1e-5)));
        auto im = static_cast<std::int16_t>(std::lround(v.imag() / (scale * 1e-5)));
        w.u16be(static_cast<std::uint16_t>(re));
        w.u16be(static_cast<std::uint16_t>(im));
      }
    }
    if (cfg.freq_float) {
      ByteWriter tmp;
      tmp.f32le(static_cast<float>(data.freq_deviation_mhz / 1000.0));
      auto le = tmp.take();
      w.u8(le[3]);
      w.u8(le[2]);
      w.u8(le[1]);
      w.u8(le[0]);
      ByteWriter tmp2;
      tmp2.f32le(static_cast<float>(data.rocof));
      auto le2 = tmp2.take();
      w.u8(le2[3]);
      w.u8(le2[2]);
      w.u8(le2[1]);
      w.u8(le2[0]);
    } else {
      w.u16be(static_cast<std::uint16_t>(
          static_cast<std::int16_t>(std::lround(data.freq_deviation_mhz))));
      w.u16be(static_cast<std::uint16_t>(
          static_cast<std::int16_t>(std::lround(data.rocof * 100.0))));
    }
    for (std::size_t i = 0; i < cfg.analog_names.size(); ++i) {
      double v = i < data.analogs.size() ? data.analogs[i] : 0.0;
      if (cfg.analogs_float) {
        ByteWriter tmp;
        tmp.f32le(static_cast<float>(v));
        auto le = tmp.take();
        w.u8(le[3]);
        w.u8(le[2]);
        w.u8(le[1]);
        w.u8(le[0]);
      } else {
        w.u16be(static_cast<std::uint16_t>(static_cast<std::int16_t>(std::lround(v))));
      }
    }
  }
  return finalize(std::move(w));
}

std::vector<std::uint8_t> encode_header(const HeaderFrame& frame) {
  ByteWriter w;
  write_common(w, FrameType::kHeader, frame.header);
  for (char c : frame.info) w.u8(static_cast<std::uint8_t>(c));
  return finalize(std::move(w));
}

std::vector<std::uint8_t> encode_command(const CommandFrame& frame) {
  ByteWriter w;
  write_common(w, FrameType::kCommand, frame.header);
  w.u16be(static_cast<std::uint16_t>(frame.command));
  return finalize(std::move(w));
}

Result<FrameHeader> peek_header(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  auto sync = r.u8();
  auto type_ver = r.u8();
  auto size = r.u16be();
  auto idcode = r.u16be();
  auto soc = r.u32be();
  auto fracsec = r.u32be();
  if (!fracsec) return Err("truncated", "c37.118 header");
  if (sync.value() != kSyncByte) return Err("bad-sync", std::to_string(sync.value()));
  std::uint8_t type_bits = (type_ver.value() >> 4) & 0x07;
  if (type_bits > 4) return Err("bad-frame-type", std::to_string(type_bits));
  FrameHeader h;
  h.type = static_cast<FrameType>(type_bits);
  h.frame_size = size.value();
  h.idcode = idcode.value();
  h.soc = soc.value();
  h.fracsec = fracsec.value();
  return h;
}

namespace {

double read_be_float(ByteReader& r) {
  auto bytes = r.bytes(4);
  if (!bytes) return 0.0;
  std::uint32_t raw = (static_cast<std::uint32_t>((*bytes)[0]) << 24) |
                      (static_cast<std::uint32_t>((*bytes)[1]) << 16) |
                      (static_cast<std::uint32_t>((*bytes)[2]) << 8) |
                      static_cast<std::uint32_t>((*bytes)[3]);
  return std::bit_cast<float>(raw);
}

Result<ConfigFrame> decode_config(const FrameHeader& h, ByteReader& r) {
  ConfigFrame out;
  out.header = h;
  auto tb = r.u32be();
  auto num = r.u16be();
  if (!num) return Err("truncated", "config counts");
  out.time_base = tb.value();
  for (std::uint16_t p = 0; p < num.value(); ++p) {
    PmuConfig pmu;
    pmu.station_name = read_name16(r);
    auto id = r.u16be();
    auto fmt = r.u16be();
    auto phnmr = r.u16be();
    auto annmr = r.u16be();
    auto dgnmr = r.u16be();
    if (!dgnmr) return Err("truncated", "pmu config");
    if (dgnmr.value() != 0) return Err("unsupported", "digital words");
    pmu.idcode = id.value();
    pmu.phasors_polar = fmt.value() & 0x0001;
    pmu.phasors_float = fmt.value() & 0x0002;
    pmu.analogs_float = fmt.value() & 0x0004;
    pmu.freq_float = fmt.value() & 0x0008;
    for (std::uint16_t i = 0; i < phnmr.value(); ++i) {
      pmu.phasor_names.push_back(read_name16(r));
    }
    for (std::uint16_t i = 0; i < annmr.value(); ++i) {
      pmu.analog_names.push_back(read_name16(r));
    }
    for (std::uint16_t i = 0; i < phnmr.value(); ++i) {
      auto unit = r.u32be();
      if (!unit) return Err("truncated", "phunit");
      pmu.phasor_units.push_back(unit.value());
    }
    for (std::uint16_t i = 0; i < annmr.value(); ++i) {
      auto unit = r.u32be();
      if (!unit) return Err("truncated", "anunit");
      pmu.analog_units.push_back(unit.value());
    }
    auto fnom = r.u16be();
    auto cfgcnt = r.u16be();
    if (!cfgcnt) return Err("truncated", "fnom/cfgcnt");
    pmu.nominal_freq_code = fnom.value();
    pmu.config_count = cfgcnt.value();
    out.pmus.push_back(std::move(pmu));
  }
  auto rate = r.u16be();
  if (!rate) return Err("truncated", "data rate");
  out.data_rate = rate.value();
  return out;
}

Result<DataFrame> decode_data(const FrameHeader& h, ByteReader& r,
                              const ConfigFrame& config) {
  DataFrame out;
  out.header = h;
  for (const auto& cfg : config.pmus) {
    PmuData data;
    auto stat = r.u16be();
    if (!stat) return Err("truncated", "stat");
    data.stat = stat.value();
    for (std::size_t i = 0; i < cfg.phasor_names.size(); ++i) {
      if (cfg.phasors_float) {
        double re = read_be_float(r);
        double im = read_be_float(r);
        data.phasors.emplace_back(re, im);
      } else {
        auto re = r.u16be();
        auto im = r.u16be();
        if (!im) return Err("truncated", "phasor");
        double scale = (i < cfg.phasor_units.size() ? cfg.phasor_units[i] & 0xffffff : 1);
        if (scale <= 0) scale = 1;
        data.phasors.emplace_back(
            static_cast<std::int16_t>(re.value()) * scale * 1e-5,
            static_cast<std::int16_t>(im.value()) * scale * 1e-5);
      }
    }
    if (cfg.freq_float) {
      data.freq_deviation_mhz = read_be_float(r) * 1000.0;
      data.rocof = read_be_float(r);
    } else {
      auto freq = r.u16be();
      auto rocof = r.u16be();
      if (!rocof) return Err("truncated", "freq");
      data.freq_deviation_mhz = static_cast<std::int16_t>(freq.value());
      data.rocof = static_cast<std::int16_t>(rocof.value()) / 100.0;
    }
    for (std::size_t i = 0; i < cfg.analog_names.size(); ++i) {
      if (cfg.analogs_float) {
        data.analogs.push_back(read_be_float(r));
      } else {
        auto v = r.u16be();
        if (!v) return Err("truncated", "analog");
        data.analogs.push_back(static_cast<std::int16_t>(v.value()));
      }
    }
    out.pmus.push_back(std::move(data));
  }
  return out;
}

}  // namespace

Result<Frame> decode_frame(std::span<const std::uint8_t> bytes,
                           const ConfigFrame* config) {
  auto header = peek_header(bytes);
  if (!header) return header.error();
  if (header->frame_size != bytes.size()) {
    return Err("size-mismatch", std::to_string(header->frame_size) + " vs " +
                                    std::to_string(bytes.size()));
  }
  if (bytes.size() < 16) return Err("truncated", "frame too small");
  std::uint16_t expected = crc_ccitt(bytes.subspan(0, bytes.size() - 2));
  ByteReader crc_tail(bytes.subspan(bytes.size() - 2));
  const auto actual = crc_tail.u16be();
  if (!actual) return Err("truncated", "CRC tail");
  if (expected != actual.value()) return Err("bad-crc");

  ByteReader r(bytes.subspan(14, bytes.size() - 16));
  switch (header->type) {
    case FrameType::kConfig1:
    case FrameType::kConfig2: {
      auto cfg = decode_config(header.value(), r);
      if (!cfg) return cfg.error();
      return Frame{std::move(cfg).take()};
    }
    case FrameType::kData: {
      if (!config) return Err("missing-config", "data frame needs CFG context");
      auto data = decode_data(header.value(), r, *config);
      if (!data) return data.error();
      return Frame{std::move(data).take()};
    }
    case FrameType::kHeader: {
      HeaderFrame hf;
      hf.header = header.value();
      while (!r.empty()) hf.info.push_back(static_cast<char>(r.u8().value()));
      return Frame{std::move(hf)};
    }
    case FrameType::kCommand: {
      auto cmd = r.u16be();
      if (!cmd) return cmd.error();
      CommandFrame cf;
      cf.header = header.value();
      cf.command = static_cast<Command>(cmd.value());
      return Frame{cf};
    }
  }
  return Err("bad-frame-type");
}

StreamSplit split_stream(std::span<const std::uint8_t> stream) {
  StreamSplit out;
  std::size_t pos = 0;
  while (pos + 4 <= stream.size()) {
    auto header = peek_header(stream.subspan(pos));
    if (!header) break;
    if (header->frame_size < 16 || pos + header->frame_size > stream.size()) break;
    auto frame = stream.subspan(pos, header->frame_size);
    out.frames.emplace_back(frame.begin(), frame.end());
    pos += header->frame_size;
  }
  out.consumed = pos;
  return out;
}

}  // namespace uncharted::synchro
