// IEEE C37.118 synchrophasor protocol codec.
//
// The paper's tap (Fig 5) carried C37.118 alongside IEC 104 ("phasor
// measurement units reporting data to the SCADA server") and left it for
// future study. This module implements the 2005 frame formats — data,
// configuration (CFG-2), header and command — with CRC-CCITT integrity, so
// captures can include realistic PMU streams and the analysis layer can
// separate them from the telecontrol traffic.
#pragma once

#include <complex>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "util/bytes.hpp"
#include "util/expected.hpp"
#include "util/timebase.hpp"

namespace uncharted::synchro {

/// Default TCP port for C37.118 streams.
constexpr std::uint16_t kC37118Port = 4712;

/// CRC-CCITT (x^16 + x^12 + x^5 + 1, init 0xFFFF, no reflection) over a
/// byte range — the CHK field of every frame.
std::uint16_t crc_ccitt(std::span<const std::uint8_t> data);

enum class FrameType : std::uint8_t {
  kData = 0,
  kHeader = 1,
  kConfig1 = 2,
  kConfig2 = 3,
  kCommand = 4,
};

/// Common leading fields of every frame.
struct FrameHeader {
  FrameType type = FrameType::kData;
  std::uint16_t frame_size = 0;  ///< bytes incl. SYNC..CHK
  std::uint16_t idcode = 1;      ///< stream source id
  std::uint32_t soc = 0;         ///< UTC seconds
  std::uint32_t fracsec = 0;     ///< fraction-of-second / TIME_BASE + quality
};

/// One PMU's channel layout inside a configuration frame.
struct PmuConfig {
  std::string station_name;      ///< up to 16 chars, space padded on wire
  std::uint16_t idcode = 1;
  bool phasors_polar = false;    ///< FORMAT bit 0
  bool phasors_float = false;    ///< FORMAT bit 1
  bool analogs_float = false;    ///< FORMAT bit 2
  bool freq_float = false;       ///< FORMAT bit 3
  std::vector<std::string> phasor_names;   ///< 16 chars each on wire
  std::vector<std::string> analog_names;
  std::vector<std::uint32_t> phasor_units;  ///< PHUNIT conversion words
  std::vector<std::uint32_t> analog_units;
  std::uint16_t nominal_freq_code = 0;  ///< FNOM: 0 = 60 Hz, 1 = 50 Hz
  std::uint16_t config_count = 1;
};

/// CFG-2 frame.
struct ConfigFrame {
  FrameHeader header;
  std::uint32_t time_base = 1'000'000;
  std::vector<PmuConfig> pmus;
  std::uint16_t data_rate = 30;  ///< frames per second (signed on wire)
};

/// One PMU's measurements in a data frame.
struct PmuData {
  std::uint16_t stat = 0;
  std::vector<std::complex<double>> phasors;  ///< volts/amps, rectangular
  double freq_deviation_mhz = 0.0;            ///< from nominal, in mHz
  double rocof = 0.0;                         ///< Hz/s * 100 on the wire
  std::vector<double> analogs;
};

struct DataFrame {
  FrameHeader header;
  std::vector<PmuData> pmus;  ///< parallel to the config's pmus
};

struct HeaderFrame {
  FrameHeader header;
  std::string info;  ///< human-readable description
};

/// Command frame CMD values.
enum class Command : std::uint16_t {
  kTurnOffTransmission = 1,
  kTurnOnTransmission = 2,
  kSendHeader = 3,
  kSendConfig1 = 4,
  kSendConfig2 = 5,
};

struct CommandFrame {
  FrameHeader header;
  Command command = Command::kTurnOnTransmission;
};

using Frame = std::variant<DataFrame, ConfigFrame, HeaderFrame, CommandFrame>;

/// Encodes a configuration (CFG-2) frame.
std::vector<std::uint8_t> encode_config(const ConfigFrame& frame);

/// Encodes a data frame laid out according to `config` (formats and
/// channel counts are taken from it). Phasor values are scaled by the
/// PHUNIT factors when the integer format is selected.
std::vector<std::uint8_t> encode_data(const ConfigFrame& config, const DataFrame& frame);

std::vector<std::uint8_t> encode_header(const HeaderFrame& frame);
std::vector<std::uint8_t> encode_command(const CommandFrame& frame);

/// Peeks the common header without consuming the frame.
Result<FrameHeader> peek_header(std::span<const std::uint8_t> bytes);

/// Decodes any frame. Data frames need the stream's configuration.
/// Verifies SYNC, size and CRC.
Result<Frame> decode_frame(std::span<const std::uint8_t> bytes,
                           const ConfigFrame* config = nullptr);

/// Splits a reassembled TCP stream into whole frames (by FRAMESIZE);
/// returns the number of bytes consumed.
struct StreamSplit {
  std::vector<std::vector<std::uint8_t>> frames;
  std::size_t consumed = 0;
};
StreamSplit split_stream(std::span<const std::uint8_t> stream);

}  // namespace uncharted::synchro
