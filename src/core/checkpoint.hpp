// Crash-safe checkpoint files.
//
// A long-running streaming analyzer periodically snapshots its state so a
// crash (or kill -9) costs at most one checkpoint interval of work. The
// file format is designed for the failure modes that actually happen to a
// process dying mid-write:
//
//   [magic "UNCK"][version u32][payload_len u64][crc32 u32][payload bytes]
//
// - Writes go to `path.tmp` and are renamed into place, so `path` is always
//   either the previous complete checkpoint or the new complete one.
// - The tmp file is fsync'd BEFORE the rename and the parent directory
//   after it: without the first, a power loss after rename can surface a
//   zero-length or torn file under the durable name (which rotation would
//   then treat as the good copy); without the second, the rename itself
//   may not survive the crash.
// - The previous checkpoint is rotated to `path.1` first, so even a rename
//   caught mid-crash leaves one recoverable generation.
// - Readers validate magic, version, declared length and CRC-32 before
//   trusting a byte; a truncated or corrupted file is a clean error, never
//   a crash, and `read_latest_checkpoint` falls back to the rotation.
// - Every write-path syscall goes through faultinject::SysOps, so the
//   chaos tests can serve this code ENOSPC, EIO, failed fsync and torn
//   rename deterministically. A failed write never leaves a half-visible
//   checkpoint: the durable names keep their last good generation.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "faultinject/sysfault.hpp"
#include "util/expected.hpp"

namespace uncharted::core {

inline constexpr std::uint32_t kCheckpointMagic = 0x554E434B;  // "UNCK"
// Version 2: DatasetBuilder serializes per-flow damage kinds (FlowDamage)
// instead of the former two-counter FlowHealth. Version 3: the
// StreamingAnalyzer payload starts with an engine tag byte (1 = single
// builder, 2 = flow-sharded) and the sharded engine serializes per-lane
// builder state. Older checkpoints are rejected on read and the analyzer
// restarts from the capture — by design, never a crash.
inline constexpr std::uint32_t kCheckpointVersion = 3;

/// Atomically replaces `path` with a checkpoint wrapping `payload`,
/// rotating any existing file to `path + ".1"` first. Durable: the tmp
/// file is fsync'd before the rename, the directory after. `sys` routes
/// the write-path syscalls (nullptr = the real kernel).
Status write_checkpoint_file(const std::string& path,
                             std::span<const std::uint8_t> payload,
                             faultinject::SysOps* sys = nullptr);

/// Reads and validates one checkpoint file; returns its payload.
Result<std::vector<std::uint8_t>> read_checkpoint_file(const std::string& path);

/// Reads `path`, falling back to `path + ".1"` when the primary is
/// missing, truncated or corrupt. Fails only when no generation is valid.
Result<std::vector<std::uint8_t>> read_latest_checkpoint(const std::string& path);

}  // namespace uncharted::core
