#include "core/liveingest.hpp"

#include <algorithm>
#include <cstdio>

#include "core/checkpoint.hpp"
#include "core/export.hpp"
#include "util/strings.hpp"

namespace uncharted::core {

namespace {

/// Composed-checkpoint payload magic: cursors + analyzer state follow.
constexpr std::uint32_t kLiveMagic = 0x554E4C44;  // "UNLD"

std::uint64_t enforcement_total(const analysis::ResourcePressure& p) {
  return p.flow_evictions + p.reassembly_flushes + p.records_evicted +
         p.parsers_evicted;
}

std::string lane_name(std::size_t shard) {
  return "lane/" + std::to_string(shard);
}

std::string fmt_stalled(double s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", s);
  return buf;
}

}  // namespace

LiveIngestDaemon::LiveIngestDaemon(netd::Reactor& reactor, LiveIngestOptions options)
    : reactor_(reactor),
      options_(std::move(options)),
      health_(options_.watchdog.clock) {
  // The daemon owns the checkpoint file; the analyzer must never write its
  // own half alone (the halves would stop being mutually consistent).
  checkpoint_path_ = options_.streaming.checkpoint_path;
  options_.streaming.checkpoint_path.clear();
  options_.streaming.checkpoint_every_packets = 0;
  rebuild_engine();
  register_watchdogs();
}

LiveIngestDaemon::~LiveIngestDaemon() {
  if (checkpoint_timer_armed_) reactor_.cancel_timer(checkpoint_timer_);
  if (pressure_timer_armed_) reactor_.cancel_timer(pressure_timer_);
  if (watchdog_timer_armed_) reactor_.cancel_timer(watchdog_timer_);
}

void LiveIngestDaemon::rebuild_engine() {
  // Order matters: the server's sink captures analyzer_ by reference, so
  // the old server must die before the analyzer it feeds is replaced.
  server_.reset();
  analyzer_ = std::make_unique<StreamingAnalyzer>(options_.streaming);
  server_ = std::make_unique<netd::IngestServer>(
      reactor_, options_.server,
      [this](std::uint64_t, const net::CapturedPacket& pkt) {
        analyzer_->add_packet(pkt);
      });
}

void LiveIngestDaemon::install_handlers() {
  server_->set_query_handler([this] { return report_json(); });
  server_->set_health_handler([this] { return health_json(); });
}

void LiveIngestDaemon::register_watchdogs() {
  const LiveWatchdogOptions& wd = options_.watchdog;
  health_.configure_breaker(wd.breaker);
  health_.add("reactor", {wd.reactor_deadline_s, {health::Action::kObserve}});
  health_.add("merge", {wd.merge_deadline_s, {health::Action::kCondemnStream}});
  const std::size_t shards = analyzer_->lane_stats().size();
  for (std::size_t s = 0; s < shards; ++s) {
    health_.add(lane_name(s),
                {wd.lane_deadline_s,
                 {health::Action::kRestartLane, health::Action::kRestartLane,
                  health::Action::kSelfTerminate}});
  }
  double ckpt_deadline = wd.checkpoint_deadline_s;
  if (ckpt_deadline <= 0.0 && options_.checkpoint_every_s > 0.0) {
    ckpt_deadline = std::max(3.0 * options_.checkpoint_every_s, 30.0);
  }
  health_.add("checkpoint",
              {ckpt_deadline,
               {health::Action::kRestartCheckpoint,
                health::Action::kRestartCheckpoint, health::Action::kSelfTerminate}});
  // Heartbeat only: a quiet query socket is normal, never a stall.
  health_.add("query", {0.0, {}});
}

Status LiveIngestDaemon::try_restore_composed() {
  auto payload = read_latest_checkpoint(checkpoint_path_);
  if (!payload) return payload.error();
  ByteReader r(payload.value());
  auto magic = r.u32le();
  if (!magic || magic.value() != kLiveMagic) {
    return Error{"liveingest-magic", "not a live-ingest checkpoint"};
  }
  if (auto st = server_->load_cursors(r); !st) return st;
  if (auto st = analyzer_->load_state(r); !st) return st;
  return Status::Ok();
}

Status LiveIngestDaemon::start(bool restore) {
  if (restore && !checkpoint_path_.empty()) {
    if (auto st = try_restore_composed(); st) {
      restored_ = true;
    } else {
      // Any invalid/mismatched checkpoint: rebuild both halves fresh so a
      // partial load can never leave them inconsistent.
      rebuild_engine();
    }
  }
  install_handlers();
  if (auto st = server_->start(); !st) return st;
  if (options_.checkpoint_every_s > 0.0 && !checkpoint_path_.empty()) {
    arm_checkpoint_timer();
  }
  if (options_.pressure_poll_s > 0.0) arm_pressure_timer();
  if (options_.watchdog.poll_s > 0.0) arm_watchdog_timer();
  return Status::Ok();
}

void LiveIngestDaemon::arm_checkpoint_timer() {
  checkpoint_timer_ = reactor_.add_timer_after(options_.checkpoint_every_s, [this] {
    checkpoint_timer_armed_ = false;
    if (finalized_) return;
    // A failed periodic write degrades durability, not availability:
    // checkpoint_now() records it and the next interval retries.
    (void)checkpoint_now();
    arm_checkpoint_timer();
  });
  checkpoint_timer_armed_ = true;
}

void LiveIngestDaemon::arm_watchdog_timer() {
  watchdog_timer_ = reactor_.add_timer_after(options_.watchdog.poll_s, [this] {
    watchdog_timer_armed_ = false;
    if (finalized_) return;
    poll_watchdogs();
    if (!terminate_requested_) arm_watchdog_timer();
  });
  watchdog_timer_armed_ = true;
}

void LiveIngestDaemon::arm_pressure_timer() {
  pressure_timer_ = reactor_.add_timer_after(options_.pressure_poll_s, [this] {
    pressure_timer_armed_ = false;
    if (finalized_) return;
    poll_pressure();
    arm_pressure_timer();
  });
  pressure_timer_armed_ = true;
}

void LiveIngestDaemon::poll_pressure() {
  const analysis::ResourcePressure now = analyzer_->pressure();
  const bool enforcing = enforcement_total(now) > enforcement_total(last_pressure_);
  last_pressure_ = now;
  if (enforcing) {
    // The analyzer is actively shedding its own state: shrink the ingest
    // buffer budget so the front door sheds connections first.
    calm_polls_ = 0;
    pressure_level_ = pressure_level_ >= 2 ? 2 : pressure_level_ + 1;
    server_->set_pressure_level(pressure_level_);
  } else if (pressure_level_ > 0 && ++calm_polls_ >= 2) {
    calm_polls_ = 0;
    pressure_level_--;
    server_->set_pressure_level(pressure_level_);
  }
}

void LiveIngestDaemon::poll_watchdogs() {
  // Drain packets whose shard is no longer wedged before measuring lanes,
  // so a cleared stall shows up as progress on this very poll.
  analyzer_->poll_deferred();
  const netd::ServerStats& stats = server_->stats();
  health_.publish("reactor", stats.ticks);
  health_.set_demand("reactor", 1);
  health_.publish("merge", stats.frames_released);
  // Queued bytes behind a closed release gate are peers yet to say hello —
  // expected, not a merge stall.
  health_.set_demand("merge",
                     server_->release_gate_open() ? stats.queued_bytes : 0);
  const auto lanes = analyzer_->lane_stats();
  for (std::size_t s = 0; s < lanes.size(); ++s) {
    health_.publish(lane_name(s), lanes[s].ingested);
    health_.set_demand(lane_name(s), lanes[s].queued_packets);
  }
  health_.publish("checkpoint", checkpoint_successes_);
  // A checkpoint is "due" only while the cadence is on and the analyzer is
  // quiescent; parked packets make the writer *unable*, and the lane
  // watchdog — not this one — owns that stall.
  const bool checkpoint_due =
      options_.checkpoint_every_s > 0.0 && !checkpoint_path_.empty() &&
      analyzer_->quiescent();
  health_.set_demand("checkpoint", checkpoint_due ? 1 : 0);
  health_.publish("query", stats.queries_served);
  for (const auto& ev : health_.evaluate()) {
    execute_recovery(ev);
    if (terminate_requested_) break;
  }
}

void LiveIngestDaemon::execute_recovery(const health::StallEvent& ev) {
  bool ok = false;
  std::string detail;
  switch (ev.action) {
    case health::Action::kObserve:
      ok = true;
      detail = "progress late by " + fmt_stalled(ev.stalled_for_s) +
               "s; observing";
      break;
    case health::Action::kCondemnStream: {
      const std::uint64_t id = server_->condemn_watermark_laggard(
          "health: watermark stalled " + fmt_stalled(ev.stalled_for_s) + "s");
      ok = id != 0;
      detail = ok ? "condemned watermark laggard stream " + std::to_string(id)
                  : "no stream gating the watermark";
      break;
    }
    case health::Action::kRestartLane: {
      auto st = recover_from_checkpoint(ev.subsystem);
      ok = static_cast<bool>(st);
      detail = ok ? (restored_ ? "engine restarted from checkpoint"
                               : "engine restarted fresh (no checkpoint)")
                  : "engine restart failed: " + st.error().str();
      break;
    }
    case health::Action::kRestartCheckpoint: {
      if (checkpoint_timer_armed_) {
        reactor_.cancel_timer(checkpoint_timer_);
        checkpoint_timer_armed_ = false;
      }
      auto st = checkpoint_now();
      ok = static_cast<bool>(st);
      detail = ok ? "checkpoint writer restarted; snapshot written"
                  : "checkpoint retry failed: " + st.error().str();
      if (options_.checkpoint_every_s > 0.0 && !checkpoint_path_.empty()) {
        arm_checkpoint_timer();
      }
      break;
    }
    case health::Action::kSelfTerminate:
      ok = true;
      terminate_requested_ = true;
      terminate_reason_ = ev.subsystem + " stalled " +
                          fmt_stalled(ev.stalled_for_s) +
                          "s; recovery ladder exhausted";
      detail = "self-terminate requested (exit " +
               std::to_string(health::kRecoveryExitCode) + " for supervisor restart)";
      break;
  }
  health_.record_recovery(ev.subsystem, ev.action, ok, detail);
  if (recovery_hook_) recovery_hook_(ev, ok, detail);
}

Status LiveIngestDaemon::recover_from_checkpoint(const std::string& why) {
  (void)why;
  // Keep the bound port across the restart (SO_REUSEADDR covers the
  // rebind); clients notice only a dropped connection and resume from the
  // restored cursors, exactly as after a process kill/restore.
  options_.server.port = server_->port();
  server_->close_all();
  rebuild_engine();
  restored_ = false;
  if (!checkpoint_path_.empty()) {
    if (auto st = try_restore_composed(); st) {
      restored_ = true;
    } else {
      rebuild_engine();
    }
  }
  install_handlers();
  return server_->start();
}

Status LiveIngestDaemon::checkpoint_now() {
  if (checkpoint_path_.empty()) {
    return Error{"checkpoint-unconfigured", "no checkpoint path set"};
  }
  Status st = [&]() -> Status {
    if (options_.stall_checkpoint) {
      return Error{"checkpoint-stalled", "checkpoint writer wedged by test knob"};
    }
    if (!analyzer_->quiescent()) {
      // Cursors count admitted packets; parked ones are absent from the
      // analyzer state. A snapshot now could never restore consistently.
      return Error{"checkpoint-deferred",
                   "packets parked behind a wedged shard"};
    }
    ByteWriter w;
    w.u32le(kLiveMagic);
    server_->save_cursors(w);
    if (auto s = analyzer_->save_state(w); !s) return s;
    return write_checkpoint_file(checkpoint_path_, w.view(), options_.sys);
  }();
  if (st) {
    // The on-disk snapshot is current again: clear the degradation flag.
    checkpoint_error_.clear();
    ++checkpoint_successes_;
  } else {
    ++checkpoint_failures_;
    checkpoint_error_ = st.error().str();
  }
  return st;
}

std::string LiveIngestDaemon::report_json() {
  AnalysisReport report = analyzer_->report_snapshot();
  if (!checkpoint_error_.empty()) {
    report.degradation.warnings.push_back(
        "checkpoint degraded: " + checkpoint_error_ +
        " (last good snapshot retained; retrying next interval)");
  }
  return report_to_json(report);
}

AnalysisReport LiveIngestDaemon::finalize() {
  finalized_ = true;
  if (checkpoint_timer_armed_) {
    reactor_.cancel_timer(checkpoint_timer_);
    checkpoint_timer_armed_ = false;
  }
  if (pressure_timer_armed_) {
    reactor_.cancel_timer(pressure_timer_);
    pressure_timer_armed_ = false;
  }
  if (watchdog_timer_armed_) {
    reactor_.cancel_timer(watchdog_timer_);
    watchdog_timer_armed_ = false;
  }
  server_->close_all();
  // The final write clears checkpoint_error_ on success, so the report
  // carries a warning only when the daemon genuinely ends degraded.
  if (!checkpoint_path_.empty()) (void)checkpoint_now();
  AnalysisReport report = analyzer_->finalize();
  const netd::ServerStats& stats = server_->stats();
  if (stats.forced_releases > 0) {
    report.degradation.warnings.push_back(
        "live ingest degraded to sampling: " +
        format_count(stats.forced_releases) +
        " frames force-released past the deterministic watermark under "
        "memory pressure");
  }
  if (!checkpoint_error_.empty()) {
    report.degradation.warnings.push_back("checkpoint write failed: " +
                                          checkpoint_error_);
  }
  return report;
}

}  // namespace uncharted::core
