#include "core/liveingest.hpp"

#include "core/checkpoint.hpp"
#include "core/export.hpp"
#include "util/strings.hpp"

namespace uncharted::core {

namespace {

/// Composed-checkpoint payload magic: cursors + analyzer state follow.
constexpr std::uint32_t kLiveMagic = 0x554E4C44;  // "UNLD"

std::uint64_t enforcement_total(const analysis::ResourcePressure& p) {
  return p.flow_evictions + p.reassembly_flushes + p.records_evicted +
         p.parsers_evicted;
}

}  // namespace

LiveIngestDaemon::LiveIngestDaemon(netd::Reactor& reactor, LiveIngestOptions options)
    : reactor_(reactor), options_(std::move(options)) {
  // The daemon owns the checkpoint file; the analyzer must never write its
  // own half alone (the halves would stop being mutually consistent).
  checkpoint_path_ = options_.streaming.checkpoint_path;
  options_.streaming.checkpoint_path.clear();
  options_.streaming.checkpoint_every_packets = 0;
  analyzer_ = std::make_unique<StreamingAnalyzer>(options_.streaming);
  server_ = std::make_unique<netd::IngestServer>(
      reactor_, options_.server,
      [this](std::uint64_t, const net::CapturedPacket& pkt) {
        analyzer_->add_packet(pkt);
      });
}

LiveIngestDaemon::~LiveIngestDaemon() {
  if (checkpoint_timer_armed_) reactor_.cancel_timer(checkpoint_timer_);
  if (pressure_timer_armed_) reactor_.cancel_timer(pressure_timer_);
}

Status LiveIngestDaemon::try_restore_composed() {
  auto payload = read_latest_checkpoint(checkpoint_path_);
  if (!payload) return payload.error();
  ByteReader r(payload.value());
  auto magic = r.u32le();
  if (!magic || magic.value() != kLiveMagic) {
    return Error{"liveingest-magic", "not a live-ingest checkpoint"};
  }
  if (auto st = server_->load_cursors(r); !st) return st;
  if (auto st = analyzer_->load_state(r); !st) return st;
  return Status::Ok();
}

Status LiveIngestDaemon::start(bool restore) {
  if (restore && !checkpoint_path_.empty()) {
    if (auto st = try_restore_composed(); st) {
      restored_ = true;
    } else {
      // Any invalid/mismatched checkpoint: rebuild both halves fresh so a
      // partial load can never leave them inconsistent.
      analyzer_ = std::make_unique<StreamingAnalyzer>(options_.streaming);
      server_ = std::make_unique<netd::IngestServer>(
          reactor_, options_.server,
          [this](std::uint64_t, const net::CapturedPacket& pkt) {
            analyzer_->add_packet(pkt);
          });
    }
  }
  server_->set_query_handler([this] { return report_json(); });
  if (auto st = server_->start(); !st) return st;
  if (options_.checkpoint_every_s > 0.0 && !checkpoint_path_.empty()) {
    arm_checkpoint_timer();
  }
  if (options_.pressure_poll_s > 0.0) arm_pressure_timer();
  return Status::Ok();
}

void LiveIngestDaemon::arm_checkpoint_timer() {
  checkpoint_timer_ = reactor_.add_timer_after(options_.checkpoint_every_s, [this] {
    checkpoint_timer_armed_ = false;
    if (finalized_) return;
    // A failed periodic write degrades durability, not availability:
    // checkpoint_now() records it and the next interval retries.
    (void)checkpoint_now();
    arm_checkpoint_timer();
  });
  checkpoint_timer_armed_ = true;
}

void LiveIngestDaemon::arm_pressure_timer() {
  pressure_timer_ = reactor_.add_timer_after(options_.pressure_poll_s, [this] {
    pressure_timer_armed_ = false;
    if (finalized_) return;
    poll_pressure();
    arm_pressure_timer();
  });
  pressure_timer_armed_ = true;
}

void LiveIngestDaemon::poll_pressure() {
  const analysis::ResourcePressure now = analyzer_->pressure();
  const bool enforcing = enforcement_total(now) > enforcement_total(last_pressure_);
  last_pressure_ = now;
  if (enforcing) {
    // The analyzer is actively shedding its own state: shrink the ingest
    // buffer budget so the front door sheds connections first.
    calm_polls_ = 0;
    pressure_level_ = pressure_level_ >= 2 ? 2 : pressure_level_ + 1;
    server_->set_pressure_level(pressure_level_);
  } else if (pressure_level_ > 0 && ++calm_polls_ >= 2) {
    calm_polls_ = 0;
    pressure_level_--;
    server_->set_pressure_level(pressure_level_);
  }
}

Status LiveIngestDaemon::checkpoint_now() {
  if (checkpoint_path_.empty()) {
    return Error{"checkpoint-unconfigured", "no checkpoint path set"};
  }
  Status st = [&] {
    ByteWriter w;
    w.u32le(kLiveMagic);
    server_->save_cursors(w);
    if (auto s = analyzer_->save_state(w); !s) return s;
    return write_checkpoint_file(checkpoint_path_, w.view(), options_.sys);
  }();
  if (st) {
    // The on-disk snapshot is current again: clear the degradation flag.
    checkpoint_error_.clear();
  } else {
    ++checkpoint_failures_;
    checkpoint_error_ = st.error().str();
  }
  return st;
}

std::string LiveIngestDaemon::report_json() {
  AnalysisReport report = analyzer_->report_snapshot();
  if (!checkpoint_error_.empty()) {
    report.degradation.warnings.push_back(
        "checkpoint degraded: " + checkpoint_error_ +
        " (last good snapshot retained; retrying next interval)");
  }
  return report_to_json(report);
}

AnalysisReport LiveIngestDaemon::finalize() {
  finalized_ = true;
  if (checkpoint_timer_armed_) {
    reactor_.cancel_timer(checkpoint_timer_);
    checkpoint_timer_armed_ = false;
  }
  if (pressure_timer_armed_) {
    reactor_.cancel_timer(pressure_timer_);
    pressure_timer_armed_ = false;
  }
  server_->close_all();
  // The final write clears checkpoint_error_ on success, so the report
  // carries a warning only when the daemon genuinely ends degraded.
  if (!checkpoint_path_.empty()) (void)checkpoint_now();
  AnalysisReport report = analyzer_->finalize();
  const netd::ServerStats& stats = server_->stats();
  if (stats.forced_releases > 0) {
    report.degradation.warnings.push_back(
        "live ingest degraded to sampling: " +
        format_count(stats.forced_releases) +
        " frames force-released past the deterministic watermark under "
        "memory pressure");
  }
  if (!checkpoint_error_.empty()) {
    report.degradation.warnings.push_back("checkpoint write failed: " +
                                          checkpoint_error_);
  }
  return report;
}

}  // namespace uncharted::core
