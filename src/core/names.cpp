#include "core/names.hpp"

namespace uncharted::core {

NameMap name_map(const sim::Topology& topology) {
  NameMap names;
  for (const auto& server : topology.servers) names[server.ip] = server.name;
  for (const auto& os : topology.outstations) names[os.ip] = os.name();
  return names;
}

NameMap infer_names(const analysis::CaptureDataset& dataset) {
  NameMap names;
  for (const auto& rec : dataset.records()) {
    if (rec.flow.src_port == iec104::kIec104Port) {
      names.emplace(rec.flow.src_ip, "station-" + rec.flow.src_ip.str());
      names.emplace(rec.flow.dst_ip, "server-" + rec.flow.dst_ip.str());
    } else if (rec.flow.dst_port == iec104::kIec104Port) {
      names.emplace(rec.flow.dst_ip, "station-" + rec.flow.dst_ip.str());
      names.emplace(rec.flow.src_ip, "server-" + rec.flow.src_ip.str());
    }
  }
  return names;
}

std::string name_of(const NameMap& names, net::Ipv4Addr ip) {
  auto it = names.find(ip);
  return it == names.end() ? ip.str() : it->second;
}

}  // namespace uncharted::core
