// Export utilities: Graphviz DOT for Markov chains (the paper's Figs
// 12-16 are exactly these graphs) and CSV for time series, cluster
// scatters and histograms, so the paper's plots can be redrawn from bench
// output with any plotting tool.
#pragma once

#include <map>
#include <string>

#include "analysis/markov.hpp"
#include "analysis/physical.hpp"
#include "analysis/sessions.hpp"
#include "core/analyzer.hpp"
#include "util/expected.hpp"
#include "util/stats.hpp"

namespace uncharted::core {

/// Machine-readable JSON of the full §6 report. Deterministic: map-ordered
/// keys, doubles through "%.9g", and the wall-clock stage timings are
/// deliberately excluded — two runs over the same capture produce
/// byte-identical JSON at any thread count.
std::string report_to_json(const AnalysisReport& report);

/// Renders a Markov chain as a Graphviz digraph with probability-labelled
/// edges, e.g. for `dot -Tpng`.
std::string markov_to_dot(const analysis::MarkovChain& chain,
                          const std::string& title = "");

/// CSV with header "t_seconds,value" (time relative to `t0`).
std::string series_to_csv(const analysis::TimeSeries& series, Timestamp t0);

/// CSV of the Fig 10 scatter: "pc1,pc2,cluster,src,dst".
std::string clusters_to_csv(const analysis::SessionClustering& clustering);

/// CSV of a log histogram: "bin_low,bin_high,count".
std::string histogram_to_csv(const LogHistogram& hist);

/// Writes a string to a file.
Status write_text_file(const std::string& path, const std::string& content);

}  // namespace uncharted::core
