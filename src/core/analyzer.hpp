// CaptureAnalyzer: the one-call public API — pcap in, full measurement
// report out. Runs every analysis from the paper's §6 over a capture.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/classify.hpp"
#include "analysis/conformance_audit.hpp"
#include "analysis/dataset.hpp"
#include "analysis/bandwidth.hpp"
#include "analysis/flows.hpp"
#include "analysis/markov.hpp"
#include "analysis/physical.hpp"
#include "analysis/seq_audit.hpp"
#include "analysis/sessions.hpp"
#include "analysis/sharded.hpp"
#include "analysis/topology_diff.hpp"
#include "analysis/typeid_stats.hpp"
#include "core/names.hpp"
#include "core/profiler.hpp"
#include "net/mapping.hpp"
#include "util/expected.hpp"

namespace uncharted::exec {
class Pool;
}  // namespace uncharted::exec

namespace uncharted::core {

/// What degraded-mode ingestion dropped, skipped or quarantined while the
/// report was produced. `degraded()` is false for a clean capture; when
/// true the headline numbers carry the documented drift bounds (DESIGN.md
/// "Degraded-mode ingestion") instead of being exact.
struct DegradationReport {
  analysis::DegradationCounters counters;
  /// Budget enforcement during streaming ingestion (empty for batch runs
  /// and unbounded streams).
  analysis::ResourcePressure resources;
  bool pcap_truncated = false;  ///< the capture file itself ended mid-record
  /// Human-readable summaries, empty when clean. May repeat (one entry per
  /// emitting stage); rendering deduplicates identical lines with a count.
  std::vector<std::string> warnings;

  bool degraded() const {
    return counters.any() || resources.any() || pcap_truncated;
  }
};

/// Everything §6 computes over one capture.
struct AnalysisReport {
  analysis::DatasetStats stats;
  analysis::FlowAnalysis flows;
  std::map<net::Ipv4Addr, analysis::CaptureDataset::ComplianceEntry> compliance;
  analysis::SessionClustering clustering;
  std::vector<analysis::ConnectionChain> chains;
  std::vector<analysis::StationClassification> station_types;
  analysis::TypeIdDistribution typeids;
  analysis::TypeIdStations typeid_stations;
  std::vector<analysis::VarianceRank> variance_ranking;
  std::map<analysis::SeriesKey, analysis::TimeSeries> series;
  analysis::BandwidthReport bandwidth;
  analysis::SeqAuditReport sequence_audit;
  analysis::ConformanceReport conformance;
  DegradationReport degradation;
  /// Wall-clock per-stage timings. NOT part of the deterministic report
  /// surface: excluded from report_to_json, rendered only with
  /// RenderOptions.profile.
  StageTimings timings;
};

class CaptureAnalyzer {
 public:
  struct Options {
    analysis::ParseMode mode = analysis::ParseMode::kPerPacket;
    iec104::ApduStreamParser::Mode parser_mode =
        iec104::ApduStreamParser::Mode::kTolerant;
    int cluster_k = 5;        ///< 0 = pick by elbow
    bool keep_series = true;  ///< retain full time series in the report
    /// Worker threads for the flow-sharded pipeline and the parallelized
    /// analytics. 1 = today's sequential path (no pool is created);
    /// 0 = one per hardware thread. The report is byte-identical at every
    /// value — see DESIGN.md "Parallel execution model".
    unsigned threads = 1;
    /// Shards for the parallel ingest path. Fixed by default (never
    /// derived from `threads`) so checkpoints and budget slices are
    /// thread-count independent.
    std::size_t shard_count = analysis::kDefaultShardCount;
  };

  /// Analyzes in-memory packets (borrows them as views; see below).
  static AnalysisReport analyze(const std::vector<net::CapturedPacket>& packets,
                                const Options& options);
  static AnalysisReport analyze(const std::vector<net::CapturedPacket>& packets) {
    return analyze(packets, Options{});
  }

  /// Zero-copy entry point: analyzes frame views in place. Every view's
  /// span must stay valid for the duration of the call (an mmap'd capture
  /// or owning packets both qualify). The owning overload above borrows
  /// its packets and delegates here, so the two are byte-identical.
  static AnalysisReport analyze(std::span<const net::FrameView> frames,
                                const Options& options);

  /// Maps (or, for unmappable inputs, reads) and analyzes a pcap file.
  /// The hot path runs over views into the mapping — no per-packet copy.
  static Result<AnalysisReport> analyze_file(const std::string& pcap_path,
                                             const Options& options);
  static Result<AnalysisReport> analyze_file(const std::string& pcap_path) {
    return analyze_file(pcap_path, Options{});
  }
  /// Test seam: `file_ops` overrides the OS surface the mapping uses
  /// (fault injection, forced read-fallback). Null means the real kernel.
  static Result<AnalysisReport> analyze_file(const std::string& pcap_path,
                                             const Options& options,
                                             net::FileOps* file_ops);
};

/// Shared back half of batch and streaming analysis: every §6 computation
/// over an already-built dataset. Callers supply the bandwidth report
/// because only they know how the packets were obtained. `pool` fans the
/// analytics out (clustering restarts and assignment, PCA reductions,
/// per-connection chains) with thread-count-invariant results; null runs
/// inline. The three-argument form resolves options.threads itself,
/// creating a transient pool when it asks for more than one.
AnalysisReport analyze_dataset(const analysis::CaptureDataset& dataset,
                               analysis::BandwidthReport bandwidth,
                               const CaptureAnalyzer::Options& options,
                               exec::Pool* pool);
AnalysisReport analyze_dataset(const analysis::CaptureDataset& dataset,
                               analysis::BandwidthReport bandwidth,
                               const CaptureAnalyzer::Options& options);

struct RenderOptions {
  /// Appends the wall-clock stage-timing footer (nondeterministic; keep
  /// off when diffing reports).
  bool profile = false;
};

/// Human-readable multi-section summary of a report.
std::string render_report(const AnalysisReport& report, const NameMap& names,
                          const RenderOptions& render_options);
std::string render_report(const AnalysisReport& report, const NameMap& names);

}  // namespace uncharted::core
