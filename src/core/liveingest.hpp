// LiveIngestDaemon: the always-on composition of IngestServer and
// StreamingAnalyzer.
//
// The IngestServer releases live frames in one deterministic global order;
// this class feeds them synchronously into a StreamingAnalyzer and owns
// the pieces neither side can own alone:
//
//   Composed checkpoint   One atomic v3-container snapshot holding the
//                         server's release cursors AND the analyzer state.
//                         Because the sink is synchronous, the two halves
//                         are always mutually consistent: a restore resumes
//                         the analyzer exactly where the cursors say the
//                         streams are, and cursor-based client resume
//                         re-sends everything newer. SIGKILL at any point
//                         costs at most one checkpoint interval of
//                         re-sending — never a divergent report.
//   Pressure coupling     The analyzer's ResourceBudgets enforcement
//                         (ResourcePressure deltas) raises the server's
//                         pressure level, shrinking the ingest buffer
//                         budget so shedding starts before the analyzer
//                         is forced to evict its own state.
//   Live report queries   report_snapshot() serialized through a twin
//                         analyzer renders the current AnalysisReport JSON
//                         without spending the live one.
#pragma once

#include <memory>
#include <string>

#include "core/streaming.hpp"
#include "health/health.hpp"
#include "netd/server.hpp"

namespace uncharted::core {

/// Deadlines and cadence for the daemon's health watchdogs. Defaults are
/// deliberately generous: an overloaded-but-moving daemon must never trip
/// them (the kill/restore soaks assert byte-identity with watchdogs on).
/// Setting a deadline to 0 disables that watchdog; poll_s = 0 disables
/// the whole supervision subsystem.
struct LiveWatchdogOptions {
  /// Watchdog evaluation cadence (rides its own reactor timer).
  double poll_s = 0.25;
  /// Reactor housekeeping ticks stop advancing (event-loop starvation).
  double reactor_deadline_s = 5.0;
  /// Watermark merge releases nothing while frames sit queued and the
  /// release gate is open (a registered stream went silent).
  double merge_deadline_s = 30.0;
  /// A shard lane ingests nothing while packets queue behind it.
  double lane_deadline_s = 30.0;
  /// Checkpoint writer makes no successful write while one is due.
  /// 0 derives max(3 × checkpoint_every_s, 30 s).
  double checkpoint_deadline_s = 0.0;
  /// Crash-loop circuit breaker across all recovery actions.
  health::BreakerConfig breaker;
  /// Virtual clock for tests (empty = steady_clock).
  health::Clock clock;
};

struct LiveIngestOptions {
  /// Analyzer configuration. `streaming.checkpoint_path` names the
  /// daemon's composed checkpoint; the analyzer itself never writes a file
  /// (the daemon snapshots both halves atomically instead).
  StreamingOptions streaming;
  netd::ServerConfig server;
  /// Composed-checkpoint cadence (0 = only on finalize).
  double checkpoint_every_s = 2.0;
  /// Analyzer-pressure poll cadence (0 = coupling off).
  double pressure_poll_s = 1.0;
  /// Syscall surface for the checkpoint writer (nullptr = the real
  /// kernel). The server's I/O has its own knob in `server.sys`.
  faultinject::SysOps* sys = nullptr;
  /// Self-healing supervision (see LiveWatchdogOptions).
  LiveWatchdogOptions watchdog;
  /// Test-only: wedge the checkpoint writer — every write fails with a
  /// deterministic error. Drives the restart-checkpoint → self-terminate
  /// rungs without needing an fsync storm.
  bool stall_checkpoint = false;
};

class LiveIngestDaemon {
 public:
  LiveIngestDaemon(netd::Reactor& reactor, LiveIngestOptions options);
  ~LiveIngestDaemon();

  LiveIngestDaemon(const LiveIngestDaemon&) = delete;
  LiveIngestDaemon& operator=(const LiveIngestDaemon&) = delete;

  /// Opens the listeners and arms the housekeeping timers. With
  /// `restore` set, first loads the newest valid composed checkpoint;
  /// a missing/corrupt/mismatched checkpoint starts fresh (never fatal).
  Status start(bool restore);

  netd::IngestServer& server() { return *server_; }
  StreamingAnalyzer& analyzer() { return *analyzer_; }

  /// True when start(restore=true) actually resumed from a checkpoint.
  bool restored() const { return restored_; }
  std::uint64_t frames_ingested() const { return analyzer_->packets_consumed(); }

  /// Writes the composed checkpoint now (no-op error when no path set).
  /// Failures are absorbed into the degradation ledger: the counter and
  /// last-error accessors below, and a warning in report_json() until a
  /// later write succeeds. A failed checkpoint never kills the daemon;
  /// the previous on-disk generation stays restorable.
  Status checkpoint_now();

  /// Periodic checkpoint writes that have failed so far.
  std::uint64_t checkpoint_failures() const { return checkpoint_failures_; }
  /// Last checkpoint error, empty once a subsequent write succeeds (the
  /// on-disk snapshot is current again).
  const std::string& checkpoint_error() const { return checkpoint_error_; }

  /// Current report as deterministic JSON (the query-socket payload).
  /// While the latest checkpoint write has failed, carries a degradation
  /// warning naming the error — the operator-visible signal that the
  /// daemon is serving from a stale snapshot.
  std::string report_json();

  /// Supervision state as JSON (the `health` query payload): per-subsystem
  /// state / progress / demand / recovery counts, plus the full recovery
  /// ledger. Volatile telemetry — never part of the analysis report.
  std::string health_json() const { return health_.to_json(); }
  const health::Registry& health() const { return health_; }

  /// Set by the recovery ladder's final rung: the daemon wants the process
  /// to exit health::kRecoveryExitCode so a supervisor restarts it into
  /// --restore. The driver's run loop checks this between reactor turns.
  bool terminate_requested() const { return terminate_requested_; }
  const std::string& terminate_reason() const { return terminate_reason_; }

  /// Observes every executed recovery (for stderr telemetry in drivers).
  using RecoveryHook = std::function<void(const health::StallEvent& ev, bool ok,
                                          const std::string& detail)>;
  void set_recovery_hook(RecoveryHook h) { recovery_hook_ = std::move(h); }

  /// Graceful drain: stop accepting, close every connection, write the
  /// final composed checkpoint, and produce the full report (with a
  /// degradation warning when forced releases broke the deterministic
  /// merge). The daemon is spent afterwards.
  AnalysisReport finalize();

 private:
  Status try_restore_composed();
  void rebuild_engine();
  void install_handlers();
  void arm_checkpoint_timer();
  void arm_pressure_timer();
  void arm_watchdog_timer();
  void poll_pressure();
  void register_watchdogs();
  void poll_watchdogs();
  void execute_recovery(const health::StallEvent& ev);
  /// kRestartLane: tear down the server and analyzer and rebuild both from
  /// the last good composed checkpoint (fresh when none), on the same
  /// port. Clients resume from the restored cursors — the PR-7 kill/
  /// restore contract, executed in-process.
  Status recover_from_checkpoint(const std::string& why);

  netd::Reactor& reactor_;
  LiveIngestOptions options_;
  std::string checkpoint_path_;
  std::unique_ptr<StreamingAnalyzer> analyzer_;
  std::unique_ptr<netd::IngestServer> server_;
  bool restored_ = false;
  bool finalized_ = false;
  std::uint64_t checkpoint_timer_ = 0;
  bool checkpoint_timer_armed_ = false;
  std::uint64_t pressure_timer_ = 0;
  bool pressure_timer_armed_ = false;
  std::uint64_t watchdog_timer_ = 0;
  bool watchdog_timer_armed_ = false;
  analysis::ResourcePressure last_pressure_;
  int pressure_level_ = 0;
  int calm_polls_ = 0;
  std::uint64_t checkpoint_failures_ = 0;
  std::uint64_t checkpoint_successes_ = 0;
  std::string checkpoint_error_;
  health::Registry health_;
  RecoveryHook recovery_hook_;
  bool terminate_requested_ = false;
  std::string terminate_reason_;
};

}  // namespace uncharted::core
