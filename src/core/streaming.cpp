#include "core/streaming.hpp"

#include <algorithm>

#include "core/checkpoint.hpp"
#include "util/strings.hpp"

namespace uncharted::core {

namespace {

analysis::CaptureDataset::Options dataset_options(const StreamingOptions& options) {
  analysis::CaptureDataset::Options ds_opts;
  ds_opts.mode = options.analyze.mode;
  ds_opts.parser_mode = options.analyze.parser_mode;
  return ds_opts;
}

}  // namespace

StreamingAnalyzer::StreamingAnalyzer(StreamingOptions options)
    : options_(std::move(options)),
      builder_(dataset_options(options_), options_.budgets) {}

void StreamingAnalyzer::add_packet(const net::CapturedPacket& pkt) {
  builder_.add_packet(pkt);
  bandwidth_.add_packet(pkt);
  if (options_.checkpoint_every_packets > 0 && !options_.checkpoint_path.empty() &&
      builder_.packets_consumed() - last_checkpoint_packets_ >=
          options_.checkpoint_every_packets) {
    // A failed periodic write must not stop ingestion (a full disk should
    // degrade durability, not availability); remember it for the report.
    if (auto st = write_checkpoint(); !st) checkpoint_error_ = st.error().str();
  }
}

void StreamingAnalyzer::add_packets(std::span<const net::CapturedPacket> packets) {
  while (!packets.empty()) {
    std::size_t n = std::min(packets.size(), options_.batch_packets);
    for (const auto& pkt : packets.first(n)) add_packet(pkt);
    packets = packets.subspan(n);
  }
}

Status StreamingAnalyzer::write_checkpoint() {
  ByteWriter w;
  if (auto st = builder_.save(w); !st) return st;
  bandwidth_.save(w);
  if (auto st = write_checkpoint_file(options_.checkpoint_path, w.view()); !st) {
    return st;
  }
  last_checkpoint_packets_ = builder_.packets_consumed();
  return Status::Ok();
}

Status StreamingAnalyzer::checkpoint_now() {
  if (options_.checkpoint_path.empty()) {
    return Error{"checkpoint-unconfigured", "no checkpoint_path set"};
  }
  return write_checkpoint();
}

bool StreamingAnalyzer::try_restore() {
  if (options_.checkpoint_path.empty()) return false;
  auto payload = read_latest_checkpoint(options_.checkpoint_path);
  if (!payload) return false;  // missing/corrupt/truncated: start fresh
  ByteReader r(payload.value());
  if (auto st = builder_.load(r); !st) return false;
  if (auto st = bandwidth_.load(r); !st) return false;
  last_checkpoint_packets_ = builder_.packets_consumed();
  return true;
}

AnalysisReport StreamingAnalyzer::finalize() {
  if (!options_.checkpoint_path.empty()) {
    // Shutdown checkpoint: a restart after this point resumes at the end
    // of input instead of re-ingesting.
    if (auto st = write_checkpoint(); !st) checkpoint_error_ = st.error().str();
  }
  auto pressure = builder_.pressure();
  auto dataset = builder_.finish();
  auto report = analyze_dataset(dataset, bandwidth_.finish(), options_.analyze);
  report.degradation.resources = pressure;
  if (pressure.any()) {
    report.degradation.warnings.push_back(
        "resource budgets enforced: " + format_count(pressure.flow_evictions) +
        " flow evictions, " + format_count(pressure.reassembly_flushes) +
        " reassembly flushes, " + format_count(pressure.records_evicted) +
        " records evicted, " + format_count(pressure.parsers_evicted) +
        " parsers retired — headline metrics undercount accordingly");
  }
  if (!checkpoint_error_.empty()) {
    report.degradation.warnings.push_back("checkpoint write failed: " +
                                          checkpoint_error_);
  }
  return report;
}

Result<AnalysisReport> analyze_file_streaming(const std::string& pcap_path,
                                              const StreamingOptions& options) {
  auto read = net::PcapReader::read_file_tolerant(pcap_path);
  if (!read) return read.error();

  StreamingAnalyzer analyzer(options);
  std::uint64_t skip = 0;
  if (analyzer.try_restore()) {
    skip = analyzer.packets_consumed();
    // A checkpoint past the end of this file means it belongs to some
    // other input; restart clean rather than silently produce nothing.
    if (skip > read->packets.size()) {
      StreamingAnalyzer fresh(options);
      fresh.add_packets(read->packets);
      auto report = fresh.finalize();
      report.degradation.warnings.push_back(
          "checkpoint ignored: cursor beyond end of input");
      if (read->truncated_tail) {
        report.degradation.pcap_truncated = true;
        report.degradation.warnings.insert(report.degradation.warnings.begin(),
                                           read->warning);
      }
      return report;
    }
  }
  analyzer.add_packets(std::span<const net::CapturedPacket>(read->packets)
                           .subspan(static_cast<std::size_t>(skip)));
  auto report = analyzer.finalize();
  if (read->truncated_tail) {
    report.degradation.pcap_truncated = true;
    report.degradation.warnings.insert(report.degradation.warnings.begin(),
                                       read->warning);
  }
  return report;
}

}  // namespace uncharted::core
