#include "core/streaming.hpp"

#include <algorithm>

#include "core/checkpoint.hpp"
#include "exec/pool.hpp"
#include "util/strings.hpp"

namespace uncharted::core {

namespace {

// Checkpoint payload engine tags: a sharded checkpoint cannot restore into
// a single builder (or vice versa), so the payload says which wrote it.
constexpr std::uint8_t kEngineSingle = 1;
constexpr std::uint8_t kEngineSharded = 2;

analysis::CaptureDataset::Options dataset_options(const StreamingOptions& options) {
  analysis::CaptureDataset::Options ds_opts;
  ds_opts.mode = options.analyze.mode;
  ds_opts.parser_mode = options.analyze.parser_mode;
  return ds_opts;
}

unsigned resolve_stream_threads(unsigned threads) {
  return threads == 0 ? exec::Pool::default_threads() : threads;
}

}  // namespace

StreamingAnalyzer::StreamingAnalyzer(StreamingOptions options)
    : options_(std::move(options)) {
  unsigned threads = resolve_stream_threads(options_.analyze.threads);
  if (threads > 1) {
    pool_ = std::make_unique<exec::Pool>(threads);
    sharded_ = std::make_unique<analysis::ShardedDatasetBuilder>(
        dataset_options(options_), options_.budgets, pool_.get(),
        options_.analyze.shard_count);
  } else {
    single_ = std::make_unique<analysis::DatasetBuilder>(dataset_options(options_),
                                                         options_.budgets);
  }
  std::size_t shards = std::max<std::size_t>(options_.analyze.shard_count, 1);
  deferred_.resize(shards);
  shard_ingested_.resize(shards, 0);
}

// Lanes must quiesce before the pool dies: sharded_ (declared after
// pool_) is destroyed first, joining its TaskGroup.
StreamingAnalyzer::~StreamingAnalyzer() = default;

std::uint64_t StreamingAnalyzer::packets_consumed() const {
  return sharded_ ? sharded_->packets_consumed() : single_->packets_consumed();
}

analysis::ResourcePressure StreamingAnalyzer::pressure() {
  return sharded_ ? sharded_->pressure() : single_->pressure();
}

std::size_t StreamingAnalyzer::deferral_shard(const net::CapturedPacket& pkt) const {
  return analysis::shard_of(pkt.data, deferred_.size());
}

void StreamingAnalyzer::ingest(std::size_t shard, const net::CapturedPacket& pkt) {
  if (sharded_) {
    sharded_->add_packet(pkt);
  } else {
    single_->add_packet(pkt);
  }
  ++shard_ingested_[shard];
}

void StreamingAnalyzer::add_packet(const net::CapturedPacket& pkt) {
  // Bandwidth is accounted at admission, before any stall deferral, so the
  // byte/interval series the report derives from does not depend on when a
  // wedged shard recovers.
  bandwidth_.add_packet(pkt);
  std::size_t shard = deferral_shard(pkt);
  // A non-empty queue keeps deferring even if the hook cleared — per-shard
  // order must survive the stall, and only poll_deferred() drains in order.
  if (!deferred_[shard].empty() ||
      (options_.stall_hook && options_.stall_hook(shard))) {
    deferred_[shard].push_back(pkt);
    ++deferred_total_;
    return;
  }
  ingest(shard, pkt);
  if (options_.checkpoint_every_packets > 0 && !options_.checkpoint_path.empty() &&
      deferred_total_ == 0 &&
      packets_consumed() - last_checkpoint_packets_ >=
          options_.checkpoint_every_packets) {
    // A failed periodic write must not stop ingestion (a full disk should
    // degrade durability, not availability); remember it for the report.
    if (auto st = write_checkpoint(); !st) checkpoint_error_ = st.error().str();
  }
}

std::size_t StreamingAnalyzer::poll_deferred() {
  if (deferred_total_ == 0) return 0;
  std::size_t drained = 0;
  for (std::size_t s = 0; s < deferred_.size(); ++s) {
    auto& q = deferred_[s];
    while (!q.empty() && !(options_.stall_hook && options_.stall_hook(s))) {
      ingest(s, q.front());
      q.pop_front();
      --deferred_total_;
      ++drained;
    }
  }
  return drained;
}

void StreamingAnalyzer::force_drain_deferred() {
  // Finalize override: whatever the hook says, the report must cover every
  // admitted packet. Per-shard order is all correctness requires.
  for (std::size_t s = 0; s < deferred_.size(); ++s) {
    for (const auto& pkt : deferred_[s]) ingest(s, pkt);
    deferred_total_ -= deferred_[s].size();
    deferred_[s].clear();
  }
}

std::vector<analysis::ShardedDatasetBuilder::LaneStat>
StreamingAnalyzer::lane_stats() const {
  std::vector<analysis::ShardedDatasetBuilder::LaneStat> out;
  if (sharded_) {
    out = sharded_->lane_stats();
  } else {
    out.resize(deferred_.size());
    for (std::size_t s = 0; s < out.size(); ++s) {
      out[s].ingested = shard_ingested_[s];
    }
  }
  for (std::size_t s = 0; s < out.size() && s < deferred_.size(); ++s) {
    out[s].queued_packets += deferred_[s].size();
  }
  return out;
}

void StreamingAnalyzer::add_packets(std::span<const net::CapturedPacket> packets) {
  while (!packets.empty()) {
    std::size_t n = std::min(packets.size(), options_.batch_packets);
    for (const auto& pkt : packets.first(n)) add_packet(pkt);
    packets = packets.subspan(n);
  }
}

Status StreamingAnalyzer::save_state(ByteWriter& w) {
  if (sharded_) {
    w.u8(kEngineSharded);
    if (auto st = sharded_->save(w); !st) return st;
  } else {
    w.u8(kEngineSingle);
    if (auto st = single_->save(w); !st) return st;
  }
  bandwidth_.save(w);
  return Status::Ok();
}

Status StreamingAnalyzer::load_state(ByteReader& r) {
  auto engine = r.u8();
  if (!engine) return Error{"streaming-state", "engine tag unreadable"};
  // An engine (or shard-count) mismatch means the state was written under
  // a different --threads configuration; the caller must rebuild fresh.
  if (engine.value() == kEngineSharded) {
    if (!sharded_) return Error{"streaming-engine", "sharded state, single engine"};
    if (auto st = sharded_->load(r); !st) return st;
  } else if (engine.value() == kEngineSingle) {
    if (!single_) return Error{"streaming-engine", "single state, sharded engine"};
    if (auto st = single_->load(r); !st) return st;
  } else {
    return Error{"streaming-engine",
                 "unknown engine tag " + std::to_string(engine.value())};
  }
  if (auto st = bandwidth_.load(r); !st) return st;
  last_checkpoint_packets_ = packets_consumed();
  return Status::Ok();
}

AnalysisReport StreamingAnalyzer::report_snapshot() {
  ByteWriter w;
  StreamingOptions twin_options = options_;
  twin_options.checkpoint_path.clear();  // the twin must never touch disk
  StreamingAnalyzer twin(twin_options);
  if (auto st = save_state(w); !st) {
    AnalysisReport report;
    report.degradation.warnings.push_back("report snapshot unavailable: " +
                                          st.error().str());
    return report;
  }
  ByteReader r(w.view());
  if (auto st = twin.load_state(r); !st) {
    AnalysisReport report;
    report.degradation.warnings.push_back("report snapshot unavailable: " +
                                          st.error().str());
    return report;
  }
  return twin.finalize();
}

Status StreamingAnalyzer::write_checkpoint() {
  ByteWriter w;
  if (auto st = save_state(w); !st) return st;
  if (auto st = write_checkpoint_file(options_.checkpoint_path, w.view()); !st) {
    return st;
  }
  last_checkpoint_packets_ = packets_consumed();
  return Status::Ok();
}

Status StreamingAnalyzer::checkpoint_now() {
  if (options_.checkpoint_path.empty()) {
    return Error{"checkpoint-unconfigured", "no checkpoint_path set"};
  }
  if (!quiescent()) {
    return Error{"checkpoint-stalled",
                 "packets parked behind a wedged shard; checkpoint would be "
                 "inconsistent"};
  }
  return write_checkpoint();
}

bool StreamingAnalyzer::try_restore() {
  if (options_.checkpoint_path.empty()) return false;
  auto payload = read_latest_checkpoint(options_.checkpoint_path);
  if (!payload) return false;  // missing/corrupt/truncated: start fresh
  ByteReader r(payload.value());
  // A load failure (engine mismatch, truncated payload) means re-ingesting
  // from the start is the correct recovery; treat like a missing
  // checkpoint. Note a partial load may have mutated builder state — the
  // builders tolerate that only because every caller discards the analyzer
  // or starts from packet 0 on false.
  return static_cast<bool>(load_state(r));
}

AnalysisReport StreamingAnalyzer::finalize() {
  force_drain_deferred();
  if (!options_.checkpoint_path.empty()) {
    // Shutdown checkpoint: a restart after this point resumes at the end
    // of input instead of re-ingesting.
    if (auto st = write_checkpoint(); !st) checkpoint_error_ = st.error().str();
  }
  auto final_pressure = pressure();
  auto dataset = sharded_ ? sharded_->finish() : single_->finish();
  auto report =
      analyze_dataset(dataset, bandwidth_.finish(), options_.analyze, pool_.get());
  report.degradation.resources = final_pressure;
  if (final_pressure.any()) {
    report.degradation.warnings.push_back(
        "resource budgets enforced: " + format_count(final_pressure.flow_evictions) +
        " flow evictions, " + format_count(final_pressure.reassembly_flushes) +
        " reassembly flushes, " + format_count(final_pressure.records_evicted) +
        " records evicted, " + format_count(final_pressure.parsers_evicted) +
        " parsers retired — headline metrics undercount accordingly");
  }
  if (!checkpoint_error_.empty()) {
    report.degradation.warnings.push_back("checkpoint write failed: " +
                                          checkpoint_error_);
  }
  return report;
}

Result<AnalysisReport> analyze_file_streaming(const std::string& pcap_path,
                                              const StreamingOptions& options) {
  // The capture is mmap'd (read only when unmappable) and records are fed
  // straight off the mapping; one owning packet is materialized per record
  // because the deferral queues need ownership, but the whole-file slurp
  // and its second per-packet copy are gone.
  auto mapping = net::PcapMapping::open(pcap_path, nullptr);
  if (!mapping) return mapping.error();
  auto probe = net::PcapCursor::open(mapping->bytes());
  if (!probe) return probe.error();
  // Count records up front: the checkpoint-beyond-end check below needs the
  // total before the first packet is admitted. A second cursor pass over
  // the mapping is header walking only — no payloads are touched.
  std::uint64_t total = 0;
  {
    net::FrameView v;
    while (probe->next(v)) ++total;
  }

  StreamingAnalyzer analyzer(options);
  std::uint64_t skip = 0;
  bool checkpoint_ignored = false;
  if (analyzer.try_restore()) {
    skip = analyzer.packets_consumed();
    // A checkpoint past the end of this file means it belongs to some
    // other input; restart clean rather than silently produce nothing.
    if (skip > total) {
      checkpoint_ignored = true;
      skip = 0;
    }
  }

  auto feed = [&](StreamingAnalyzer& an) {
    auto cursor = net::PcapCursor::open(mapping->bytes());
    net::FrameView view;
    net::CapturedPacket pkt;
    std::uint64_t index = 0;
    while (cursor->next(view)) {
      if (index++ < skip) continue;
      pkt.ts = view.ts;
      pkt.original_length = view.original_length;
      pkt.data.assign(view.data.begin(), view.data.end());
      an.add_packet(pkt);
    }
  };

  AnalysisReport report;
  if (checkpoint_ignored) {
    StreamingAnalyzer fresh(options);
    feed(fresh);
    report = fresh.finalize();
    report.degradation.warnings.push_back(
        "checkpoint ignored: cursor beyond end of input");
  } else {
    feed(analyzer);
    report = analyzer.finalize();
  }
  if (probe->truncated_tail()) {
    report.degradation.pcap_truncated = true;
    report.degradation.warnings.insert(report.degradation.warnings.begin(),
                                       probe->warning());
  }
  return report;
}

}  // namespace uncharted::core
