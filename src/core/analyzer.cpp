#include "core/analyzer.hpp"

#include <algorithm>

#include "exec/pool.hpp"
#include "iec104/constants.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace uncharted::core {

namespace {

unsigned resolve_threads(unsigned threads) {
  return threads == 0 ? exec::Pool::default_threads() : threads;
}

}  // namespace

AnalysisReport analyze_dataset(const analysis::CaptureDataset& dataset,
                               analysis::BandwidthReport bandwidth,
                               const CaptureAnalyzer::Options& options,
                               exec::Pool* pool) {
  AnalysisReport report;
  report.stats = dataset.stats();
  {
    ScopedStageTimer t(&report.timings, "flow analysis");
    report.flows = analysis::analyze_flows(dataset.flow_table());
  }
  report.compliance = dataset.compliance();
  {
    ScopedStageTimer t(&report.timings, "session clustering");
    report.clustering = analysis::cluster_sessions(dataset, options.cluster_k, pool);
  }
  {
    ScopedStageTimer t(&report.timings, "markov chains");
    report.chains = analysis::build_connection_chains(dataset, pool);
  }
  {
    ScopedStageTimer t(&report.timings, "station typing");
    report.station_types = analysis::classify_stations(dataset);
    report.typeids = analysis::typeid_distribution(dataset);
    report.typeid_stations = analysis::typeid_station_counts(dataset);
  }
  {
    ScopedStageTimer t(&report.timings, "time series");
    auto series = analysis::extract_time_series(dataset);
    report.variance_ranking = analysis::rank_by_normalized_variance(series);
    if (options.keep_series) report.series = std::move(series);
  }
  report.bandwidth = std::move(bandwidth);
  {
    ScopedStageTimer t(&report.timings, "sequence audit");
    report.sequence_audit = analysis::audit_sequences(dataset);
  }
  {
    ScopedStageTimer t(&report.timings, "conformance audit");
    report.conformance = analysis::audit_conformance(dataset);
  }
  report.degradation.counters = report.stats.degradation;
  if (report.degradation.counters.any()) {
    report.degradation.warnings.push_back(
        "degraded capture: " + format_count(report.degradation.counters.total()) +
        " fault events survived (see degradation counters)");
  }
  return report;
}

AnalysisReport analyze_dataset(const analysis::CaptureDataset& dataset,
                               analysis::BandwidthReport bandwidth,
                               const CaptureAnalyzer::Options& options) {
  unsigned threads = resolve_threads(options.threads);
  if (threads <= 1) {
    return analyze_dataset(dataset, std::move(bandwidth), options, nullptr);
  }
  exec::Pool pool(threads);
  return analyze_dataset(dataset, std::move(bandwidth), options, &pool);
}

AnalysisReport CaptureAnalyzer::analyze(const std::vector<net::CapturedPacket>& packets,
                                        const Options& options) {
  auto views = net::as_frame_views(packets);
  return analyze(views, options);
}

AnalysisReport CaptureAnalyzer::analyze(std::span<const net::FrameView> frames,
                                        const Options& options) {
  analysis::CaptureDataset::Options ds_opts;
  ds_opts.mode = options.mode;
  ds_opts.parser_mode = options.parser_mode;

  unsigned threads = resolve_threads(options.threads);
  if (threads <= 1) {
    StageTimings build_timings;
    analysis::CaptureDataset dataset;
    {
      ScopedStageTimer t(&build_timings, "ingest");
      dataset = analysis::CaptureDataset::build(frames, ds_opts);
    }
    auto report = analyze_dataset(dataset, analysis::analyze_bandwidth(frames),
                                  options, nullptr);
    report.timings.stages.insert(report.timings.stages.begin(),
                                 build_timings.stages.begin(),
                                 build_timings.stages.end());
    return report;
  }

  exec::Pool pool(threads);
  StageTimings build_timings;
  analysis::CaptureDataset dataset;
  {
    ScopedStageTimer t(&build_timings, "ingest");
    dataset = analysis::build_dataset_sharded(
        frames, ds_opts, &pool, options.shard_count, {}, nullptr,
        [&build_timings](const char* stage, double wall_ms) {
          build_timings.add(stage, wall_ms);
        });
  }
  auto report =
      analyze_dataset(dataset, analysis::analyze_bandwidth(frames), options, &pool);
  report.timings.stages.insert(report.timings.stages.begin(),
                               build_timings.stages.begin(),
                               build_timings.stages.end());
  return report;
}

Result<AnalysisReport> CaptureAnalyzer::analyze_file(const std::string& pcap_path,
                                                     const Options& options) {
  return analyze_file(pcap_path, options, nullptr);
}

Result<AnalysisReport> CaptureAnalyzer::analyze_file(const std::string& pcap_path,
                                                     const Options& options,
                                                     net::FileOps* file_ops) {
  // The capture is mapped (or read, when mapping is impossible) once; the
  // whole ingest pipeline then runs over views into those bytes. Tolerant
  // cursor: a capture cut off mid-record (crashed tap, live file) still
  // yields the report over its complete prefix, flagged as degraded.
  auto mapping = net::PcapMapping::open(pcap_path, file_ops);
  if (!mapping) return mapping.error();
  auto cursor = net::PcapCursor::open(mapping->bytes());
  if (!cursor) return cursor.error();

  std::vector<net::FrameView> frames;
  net::FrameView view;
  while (cursor->next(view)) frames.push_back(view);

  auto report = analyze(frames, options);
  if (cursor->truncated_tail()) {
    report.degradation.pcap_truncated = true;
    report.degradation.warnings.insert(report.degradation.warnings.begin(),
                                       cursor->warning());
  }
  return report;
}

namespace {

/// Identical warnings repeat when many stages (or many connections) hit
/// the same condition; emit each distinct line once with a count,
/// preserving first-occurrence order. Shared by the degradation and
/// conformance sections.
void render_deduped_warnings(std::string& out,
                             const std::vector<std::string>& warnings) {
  std::vector<std::pair<std::string, std::size_t>> deduped;
  for (const auto& warning : warnings) {
    auto it = std::find_if(deduped.begin(), deduped.end(),
                           [&](const auto& e) { return e.first == warning; });
    if (it == deduped.end()) {
      deduped.emplace_back(warning, 1);
    } else {
      ++it->second;
    }
  }
  for (const auto& [warning, count] : deduped) {
    out += "warning: " + warning +
           (count > 1 ? " (x" + std::to_string(count) + ")" : "") + "\n";
  }
}

}  // namespace

std::string render_report(const AnalysisReport& report, const NameMap& names,
                          const RenderOptions& render_options) {
  std::string out;

  out += "== Capture overview ==\n";
  out += "packets: " + format_count(report.stats.packets) +
         "  tcp: " + format_count(report.stats.tcp_packets) +
         "  apdus: " + format_count(report.stats.apdus) +
         "  non-compliant: " + format_count(report.stats.non_compliant_apdus) +
         "  parse failures: " + format_count(report.stats.apdu_failures) + "\n\n";

  if (report.degradation.degraded()) {
    const auto& d = report.degradation.counters;
    out += "== Degraded-mode ingestion ==\n";
    render_deduped_warnings(out, report.degradation.warnings);
    out += "undecodable frames: " + format_count(d.undecodable_frames) +
           "  parser resyncs: " + format_count(d.parser_resyncs) + " (" +
           format_count(d.garbage_bytes) + " garbage bytes)" +
           "  undecodable apdus: " + format_count(d.undecodable_apdus) + "\n";
    out += "reassembly gaps: " + format_count(d.reassembly_gaps) + " (" +
           format_count(d.reassembly_lost_bytes) + " bytes lost)" +
           "  overlaps: " + format_count(d.overlapping_segments) +
           "  aborted streams: " + format_count(d.aborted_streams) +
           "  wild segments: " + format_count(d.wild_segments) + "\n";
    out += "truncated tail bytes: " + format_count(d.truncated_tail_bytes) +
           "  quarantined: " + format_count(d.quarantined_connections) +
           " connections / " + format_count(d.quarantined_apdus) + " apdus" +
           (report.degradation.pcap_truncated ? "  [pcap tail truncated]" : "") +
           "\n";
    const auto& rp = report.degradation.resources;
    if (rp.any()) {
      out += "resource pressure: " + format_count(rp.flow_evictions) +
             " flows evicted, " + format_count(rp.reassembly_flushes) +
             " streams force-flushed, " + format_count(rp.records_evicted) +
             " records evicted, " + format_count(rp.parsers_evicted) +
             " parsers retired (peaks: " + format_count(rp.peak_flow_entries) +
             " flows, " + format_count(rp.peak_reassembly_bytes) +
             " pending bytes, " + format_count(rp.peak_records) + " records)\n";
    }
    out += "\n";
  }

  out += "== TCP flows (Table 3) ==\n";
  const auto& fs = report.flows.summary;
  out += "total connections: " + format_count(fs.total) + "\n";
  out += "short-lived: " + format_count(fs.short_lived) + " (" +
         format_percent(fs.short_fraction(), 1) + "), of which <1s: " +
         format_count(fs.short_under_1s) + " (" +
         format_percent(fs.under_1s_fraction_of_short(), 1) + ")\n";
  out += "long-lived: " + format_count(fs.long_lived) + " (" +
         format_percent(fs.long_fraction(), 1) + ")\n\n";

  if (!report.compliance.empty()) {
    out += "== IEC 104 compliance (Fig 7) ==\n";
    for (const auto& [ip, entry] : report.compliance) {
      if (entry.non_compliant == 0) continue;
      out += name_of(names, ip) + ": " + format_count(entry.non_compliant) + "/" +
             format_count(entry.i_apdus) + " I-APDUs non-standard (profile " +
             entry.profile.str() + ")\n";
    }
    out += "\n";
  }

  out += "== Session clusters (Figs 10-11) ==\n";
  for (const auto& p : report.clustering.profiles) {
    out += "cluster " + std::to_string(p.cluster) + ": n=" + std::to_string(p.size) +
           "  dt=" + format_duration(p.mean_inter_arrival) + "  %I=" +
           format_percent(p.pct_i, 0) + " %S=" + format_percent(p.pct_s, 0) +
           " %U=" + format_percent(p.pct_u, 0) + "  -- " + p.interpretation + "\n";
  }
  out += "\n";

  out += "== Markov chain clusters (Fig 13) ==\n";
  std::size_t p11 = 0, square = 0, ellipse = 0;
  for (const auto& c : report.chains) {
    switch (c.cluster) {
      case analysis::ChainCluster::kPoint11: ++p11; break;
      case analysis::ChainCluster::kSquare: ++square; break;
      case analysis::ChainCluster::kEllipse: ++ellipse; break;
    }
  }
  out += "point(1,1): " + std::to_string(p11) + "  square: " + std::to_string(square) +
         "  ellipse (I100): " + std::to_string(ellipse) + "\n\n";

  out += "== Outstation types (Fig 17) ==\n";
  auto hist = analysis::type_histogram(report.station_types);
  for (const auto& [type, count] : hist) {
    out += "type " + std::to_string(static_cast<int>(type)) + ": " +
           std::to_string(count) + "  (" + analysis::station_type_description(type) +
           ")\n";
  }
  out += "\n";

  out += "== Bandwidth ==\n";
  for (const auto& [proto, bytes] : report.bandwidth.total_bytes) {
    out += analysis::tap_protocol_name(proto) + ": " + format_count(bytes) + " bytes (" +
           format_double(report.bandwidth.mean_rate_bps(proto) / 1024.0, 1) + " KiB/s)\n";
  }
  out += "IEC 104 mean packet inter-arrival: " +
         format_duration(report.bandwidth.iec104_interarrival_s.mean()) + "\n\n";

  out += "== Sequence audit ==\n";
  out += "gaps: " + format_count(report.sequence_audit.total_gaps) +
         "  duplicates: " + format_count(report.sequence_audit.total_duplicates) +
         "  ack violations: " + format_count(report.sequence_audit.total_ack_violations) +
         "\n\n";

  const auto& conf = report.conformance;
  if (!conf.entries.empty()) {
    out += "== IEC 104 conformance ==\n";
    out += "connections: " + format_count(conf.clean_connections) + " clean, " +
           format_count(conf.legacy_connections) + " legacy, " +
           format_count(conf.suspect_connections) + " suspect, " +
           format_count(conf.hostile_connections) + " hostile\n";
    std::vector<std::string> conf_warnings;
    for (const auto& entry : conf.entries) {
      if (entry.verdict == iec104::Verdict::kClean ||
          entry.verdict == iec104::Verdict::kLegacy) {
        continue;
      }
      out += name_of(names, entry.pair.a) + " <-> " + name_of(names, entry.pair.b) +
             ": " + iec104::verdict_name(entry.verdict) + " (" +
             entry.profile.summary() + ")\n";
      for (const auto& v : entry.profile.violations) {
        if (v.severity != iec104::Severity::kHostile) continue;
        conf_warnings.push_back("hostile " + iec104::violation_code_name(v.code) +
                                ": " + v.detail);
      }
    }
    render_deduped_warnings(out, conf_warnings);
    out += "\n";
  }

  out += "== ASDU typeIDs (Table 7) ==\n";
  for (const auto& [type, count] : report.typeids.sorted()) {
    out += "I" + std::to_string(type) + ": " +
           format_percent(report.typeids.percentage(type)) + " (" + format_count(count) +
           ")\n";
  }

  // Wall time is nondeterministic, so the footer is opt-in: with it off,
  // the rendered report stays byte-comparable across runs and thread counts.
  if (render_options.profile && !report.timings.empty()) {
    out += "\n== Stage timings (--profile) ==\n";
    for (const auto& s : report.timings.stages) {
      out += s.stage + ": " + format_double(s.wall_ms, 2) + " ms\n";
    }
    out += "total: " + format_double(report.timings.total_ms(), 2) + " ms\n";
  }
  return out;
}

std::string render_report(const AnalysisReport& report, const NameMap& names) {
  return render_report(report, names, RenderOptions{});
}

}  // namespace uncharted::core
