#include "core/export.hpp"

#include <cstdio>

#include "util/strings.hpp"

namespace uncharted::core {

namespace {
/// DOT identifiers: quote and escape token names like I_36.
std::string dot_quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}
}  // namespace

std::string markov_to_dot(const analysis::MarkovChain& chain, const std::string& title) {
  std::string out = "digraph markov {\n";
  out += "  rankdir=LR;\n  node [shape=circle, fontsize=11];\n";
  if (!title.empty()) {
    out += "  label=" + dot_quote(title) + ";\n  labelloc=t;\n";
  }
  for (const auto& [node, successors] : chain.counts()) {
    out += "  " + dot_quote(node) + ";\n";
    for (const auto& [next, count] : successors) {
      out += "  " + dot_quote(node) + " -> " + dot_quote(next) + " [label=\"" +
             format_double(chain.probability(node, next), 2) + "\"];\n";
    }
  }
  out += "}\n";
  return out;
}

std::string series_to_csv(const analysis::TimeSeries& series, Timestamp t0) {
  std::string out = "t_seconds,value\n";
  for (const auto& p : series.points) {
    out += format_double(to_seconds(static_cast<DurationUs>(p.ts - t0)), 6) + "," +
           format_double(p.value, 6) + "\n";
  }
  return out;
}

std::string clusters_to_csv(const analysis::SessionClustering& clustering) {
  std::string out = "pc1,pc2,cluster,src,dst\n";
  for (std::size_t i = 0; i < clustering.sessions.size(); ++i) {
    const auto& proj = clustering.projection.projected[i];
    out += format_double(proj[0], 6) + "," + format_double(proj.size() > 1 ? proj[1] : 0.0, 6) +
           "," + std::to_string(clustering.clustering.assignment[i]) + "," +
           clustering.sessions[i].src.str() + "," + clustering.sessions[i].dst.str() +
           "\n";
  }
  return out;
}

std::string histogram_to_csv(const LogHistogram& hist) {
  std::string out = "bin_low,bin_high,count\n";
  for (std::size_t b = 0; b < hist.bin_count(); ++b) {
    out += format_double(hist.edge(b), 9) + "," + format_double(hist.edge(b + 1), 9) +
           "," + std::to_string(hist.count_at(b)) + "\n";
  }
  return out;
}

namespace {

/// JSON number for a double: shortest round-trippable-enough form, fixed
/// at "%.9g" so the byte sequence is identical across runs and platforms
/// computing the same value.
std::string json_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace

std::string report_to_json(const AnalysisReport& report) {
  std::string out = "{";

  const auto& st = report.stats;
  out += "\"stats\":{";
  out += "\"packets\":" + std::to_string(st.packets);
  out += ",\"tcp_packets\":" + std::to_string(st.tcp_packets);
  out += ",\"undecodable_frames\":" + std::to_string(st.undecodable_frames);
  out += ",\"iec104_payload_packets\":" + std::to_string(st.iec104_payload_packets);
  out += ",\"apdus\":" + std::to_string(st.apdus);
  out += ",\"apdu_failures\":" + std::to_string(st.apdu_failures);
  out += ",\"c37118_packets\":" + std::to_string(st.c37118_packets);
  out += ",\"iccp_packets\":" + std::to_string(st.iccp_packets);
  out += ",\"other_tcp_packets\":" + std::to_string(st.other_tcp_packets);
  out += ",\"non_compliant_apdus\":" + std::to_string(st.non_compliant_apdus);
  out += ",\"tcp_retransmissions\":" + std::to_string(st.tcp_retransmissions);
  out += "}";

  const auto& fs = report.flows.summary;
  out += ",\"flows\":{";
  out += "\"total\":" + std::to_string(fs.total);
  out += ",\"short_lived\":" + std::to_string(fs.short_lived);
  out += ",\"long_lived\":" + std::to_string(fs.long_lived);
  out += ",\"short_under_1s\":" + std::to_string(fs.short_under_1s);
  out += ",\"short_over_1s\":" + std::to_string(fs.short_over_1s);
  out += "}";

  out += ",\"compliance\":[";
  bool first = true;
  for (const auto& [ip, entry] : report.compliance) {
    if (!first) out += ",";
    first = false;
    out += "{\"station\":" + json_str(ip.str());
    out += ",\"i_apdus\":" + std::to_string(entry.i_apdus);
    out += ",\"non_compliant\":" + std::to_string(entry.non_compliant);
    out += ",\"profile\":" + json_str(entry.profile.str()) + "}";
  }
  out += "]";

  out += ",\"clustering\":{";
  out += "\"chosen_k\":" + std::to_string(report.clustering.chosen_k);
  out += ",\"sessions\":" + std::to_string(report.clustering.sessions.size());
  out += ",\"profiles\":[";
  first = true;
  for (const auto& p : report.clustering.profiles) {
    if (!first) out += ",";
    first = false;
    out += "{\"cluster\":" + std::to_string(p.cluster);
    out += ",\"size\":" + std::to_string(p.size);
    out += ",\"mean_inter_arrival\":" + json_num(p.mean_inter_arrival);
    out += ",\"mean_packets\":" + json_num(p.mean_packets);
    out += ",\"pct_i\":" + json_num(p.pct_i);
    out += ",\"pct_s\":" + json_num(p.pct_s);
    out += ",\"pct_u\":" + json_num(p.pct_u);
    out += ",\"interpretation\":" + json_str(p.interpretation) + "}";
  }
  out += "]}";

  out += ",\"chains\":[";
  first = true;
  for (const auto& c : report.chains) {
    if (!first) out += ",";
    first = false;
    out += "{\"a\":" + json_str(c.pair.a.str());
    out += ",\"b\":" + json_str(c.pair.b.str());
    out += ",\"nodes\":" + std::to_string(c.nodes);
    out += ",\"edges\":" + std::to_string(c.edges);
    out += ",\"has_i100\":" + std::string(c.has_i100 ? "true" : "false");
    out += ",\"cluster\":" + json_str(analysis::chain_cluster_name(c.cluster)) + "}";
  }
  out += "]";

  out += ",\"station_types\":[";
  first = true;
  for (const auto& sc : report.station_types) {
    if (!first) out += ",";
    first = false;
    out += "{\"station\":" + json_str(sc.station.str());
    out += ",\"type\":" + std::to_string(static_cast<int>(sc.type)) + "}";
  }
  out += "]";

  out += ",\"typeids\":{";
  out += "\"total\":" + std::to_string(report.typeids.total);
  out += ",\"counts\":{";
  first = true;
  for (const auto& [type, count] : report.typeids.counts) {
    if (!first) out += ",";
    first = false;
    out += "\"" + std::to_string(static_cast<int>(type)) + "\":" + std::to_string(count);
  }
  out += "}}";

  const auto& sa = report.sequence_audit;
  out += ",\"sequence_audit\":{";
  out += "\"total_gaps\":" + std::to_string(sa.total_gaps);
  out += ",\"total_duplicates\":" + std::to_string(sa.total_duplicates);
  out += ",\"total_ack_violations\":" + std::to_string(sa.total_ack_violations);
  out += "}";

  const auto& conf = report.conformance;
  out += ",\"conformance\":{";
  out += "\"clean\":" + std::to_string(conf.clean_connections);
  out += ",\"legacy\":" + std::to_string(conf.legacy_connections);
  out += ",\"suspect\":" + std::to_string(conf.suspect_connections);
  out += ",\"hostile\":" + std::to_string(conf.hostile_connections);
  out += ",\"hostile_events\":" + std::to_string(conf.hostile_events);
  out += ",\"entries\":[";
  first = true;
  for (const auto& entry : conf.entries) {
    if (!first) out += ",";
    first = false;
    out += "{\"a\":" + json_str(entry.pair.a.str());
    out += ",\"b\":" + json_str(entry.pair.b.str());
    out += ",\"verdict\":" + json_str(iec104::verdict_name(entry.verdict)) + "}";
  }
  out += "]}";

  out += ",\"bandwidth\":{";
  out += "\"total_bytes\":{";
  first = true;
  for (const auto& [proto, bytes] : report.bandwidth.total_bytes) {
    if (!first) out += ",";
    first = false;
    out += json_str(analysis::tap_protocol_name(proto)) + ":" + std::to_string(bytes);
  }
  out += "},\"total_packets\":{";
  first = true;
  for (const auto& [proto, packets] : report.bandwidth.total_packets) {
    if (!first) out += ",";
    first = false;
    out += json_str(analysis::tap_protocol_name(proto)) + ":" + std::to_string(packets);
  }
  out += "},\"iec104_interarrival_mean_s\":" +
         json_num(report.bandwidth.iec104_interarrival_s.mean());
  out += "}";

  const auto& d = report.degradation;
  out += ",\"degradation\":{";
  out += "\"degraded\":" + std::string(d.degraded() ? "true" : "false");
  out += ",\"undecodable_frames\":" + std::to_string(d.counters.undecodable_frames);
  out += ",\"parser_resyncs\":" + std::to_string(d.counters.parser_resyncs);
  out += ",\"reassembly_gaps\":" + std::to_string(d.counters.reassembly_gaps);
  out += ",\"quarantined_connections\":" +
         std::to_string(d.counters.quarantined_connections);
  out += ",\"pcap_truncated\":" + std::string(d.pcap_truncated ? "true" : "false");
  out += ",\"warnings\":[";
  first = true;
  for (const auto& w : d.warnings) {
    if (!first) out += ",";
    first = false;
    out += json_str(w);
  }
  out += "]}";

  out += "}";
  return out;
}

Status write_text_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return Err("open-failed", path);
  std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  bool close_ok = std::fclose(f) == 0;
  if (written != content.size() || !close_ok) return Err("write-failed", path);
  return Status::Ok();
}

}  // namespace uncharted::core
