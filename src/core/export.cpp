#include "core/export.hpp"

#include <cstdio>

#include "util/strings.hpp"

namespace uncharted::core {

namespace {
/// DOT identifiers: quote and escape token names like I_36.
std::string dot_quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}
}  // namespace

std::string markov_to_dot(const analysis::MarkovChain& chain, const std::string& title) {
  std::string out = "digraph markov {\n";
  out += "  rankdir=LR;\n  node [shape=circle, fontsize=11];\n";
  if (!title.empty()) {
    out += "  label=" + dot_quote(title) + ";\n  labelloc=t;\n";
  }
  for (const auto& [node, successors] : chain.counts()) {
    out += "  " + dot_quote(node) + ";\n";
    for (const auto& [next, count] : successors) {
      out += "  " + dot_quote(node) + " -> " + dot_quote(next) + " [label=\"" +
             format_double(chain.probability(node, next), 2) + "\"];\n";
    }
  }
  out += "}\n";
  return out;
}

std::string series_to_csv(const analysis::TimeSeries& series, Timestamp t0) {
  std::string out = "t_seconds,value\n";
  for (const auto& p : series.points) {
    out += format_double(to_seconds(static_cast<DurationUs>(p.ts - t0)), 6) + "," +
           format_double(p.value, 6) + "\n";
  }
  return out;
}

std::string clusters_to_csv(const analysis::SessionClustering& clustering) {
  std::string out = "pc1,pc2,cluster,src,dst\n";
  for (std::size_t i = 0; i < clustering.sessions.size(); ++i) {
    const auto& proj = clustering.projection.projected[i];
    out += format_double(proj[0], 6) + "," + format_double(proj.size() > 1 ? proj[1] : 0.0, 6) +
           "," + std::to_string(clustering.clustering.assignment[i]) + "," +
           clustering.sessions[i].src.str() + "," + clustering.sessions[i].dst.str() +
           "\n";
  }
  return out;
}

std::string histogram_to_csv(const LogHistogram& hist) {
  std::string out = "bin_low,bin_high,count\n";
  for (std::size_t b = 0; b < hist.bin_count(); ++b) {
    out += format_double(hist.edge(b), 9) + "," + format_double(hist.edge(b + 1), 9) +
           "," + std::to_string(hist.count_at(b)) + "\n";
  }
  return out;
}

Status write_text_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return Err("open-failed", path);
  std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  bool close_ok = std::fclose(f) == 0;
  if (written != content.size() || !close_ok) return Err("write-failed", path);
  return Status::Ok();
}

}  // namespace uncharted::core
