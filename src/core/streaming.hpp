// Streaming analysis: bounded-memory ingestion with checkpoint/restore.
//
// The batch CaptureAnalyzer holds the whole capture in memory; fine for a
// day of traffic, wrong for a permanent monitor. StreamingAnalyzer consumes
// packets one bounded batch at a time, keeps only builder state (flow
// table, per-direction parsers, APDU records — each under a resource
// budget), and periodically snapshots that state to a crash-safe
// checkpoint file. After a crash, `try_restore` resumes from the newest
// valid generation and the driver re-reads the input from
// `packets_consumed()`, reproducing the batch report exactly when budgets
// never bound.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "analysis/resource.hpp"
#include "analysis/sharded.hpp"
#include "core/analyzer.hpp"

namespace uncharted::exec {
class Pool;
}  // namespace uncharted::exec

namespace uncharted::core {

/// Test-only stall seam: called with a packet's shard index before it is
/// handed to the analysis engine. Returning true parks the packet in a
/// per-shard deferred queue instead — the shard is "wedged" — until a
/// later poll_deferred() finds the hook returning false again. Per-shard
/// order is preserved, and the shard index is computed with the same
/// endpoint-pair hash at every --threads value, so a stalled-then-drained
/// run produces the same report on both engines.
using StallHook = std::function<bool(std::size_t shard)>;

struct StreamingOptions {
  CaptureAnalyzer::Options analyze;
  /// Budgets handed to the DatasetBuilder. Default: unlimited.
  analysis::ResourceBudgets budgets;
  /// add_packets() slice size — bounds how much work happens between
  /// checkpoint opportunities.
  std::size_t batch_packets = 1024;
  /// Write a checkpoint every N consumed packets (0 = only on finalize).
  std::uint64_t checkpoint_every_packets = 0;
  /// Checkpoint file path; empty disables checkpointing entirely.
  std::string checkpoint_path;
  /// Test-only: wedge selected shards (see StallHook above). Empty = never.
  StallHook stall_hook;
};

class StreamingAnalyzer {
 public:
  explicit StreamingAnalyzer(StreamingOptions options);
  ~StreamingAnalyzer();  // out of line: pool_ is only forward-declared here

  StreamingAnalyzer(const StreamingAnalyzer&) = delete;
  StreamingAnalyzer& operator=(const StreamingAnalyzer&) = delete;

  /// Ingests one packet; writes a checkpoint when the interval elapses.
  /// Checkpoint write failures never interrupt ingestion — they surface as
  /// a degradation warning in the final report.
  void add_packet(const net::CapturedPacket& pkt);

  /// Ingests a span in `batch_packets`-sized slices.
  void add_packets(std::span<const net::CapturedPacket> packets);

  /// Packets ingested so far; after try_restore(), the resume cursor.
  std::uint64_t packets_consumed() const;

  /// Re-checks the stall hook for every wedged shard and ingests (in
  /// per-shard order) everything whose shard is no longer stalled. Returns
  /// the number of packets drained. Cheap no-op when nothing is deferred.
  std::size_t poll_deferred();

  /// No packets are parked behind a wedged shard. Checkpoints composed
  /// with external cursors are only consistent when this holds — a parked
  /// packet is counted by the cursor but absent from builder state.
  bool quiescent() const { return deferred_total_ == 0; }

  /// Per-shard progress for the health watchdogs: packets handed to the
  /// engine and packets queued behind it (engine lanes + deferred). On the
  /// single-builder engine the "lanes" are the same hash partition the
  /// sharded engine would use, so watchdog wiring is thread-count-neutral.
  std::vector<analysis::ShardedDatasetBuilder::LaneStat> lane_stats() const;

  /// Budget enforcement so far. Drains in-flight lane work first on the
  /// sharded engine, hence by value and non-const.
  analysis::ResourcePressure pressure();

  /// Writes a checkpoint now (error if no checkpoint_path configured).
  Status checkpoint_now();

  /// Serializes the full analyzer state (engine tag + builder + bandwidth)
  /// into `w` — the payload `write_checkpoint()` wraps in the v3 container.
  /// Exposed so a daemon can compose it with its own durable state into
  /// one atomic checkpoint.
  Status save_state(ByteWriter& w);

  /// Restores state previously written by save_state(). The engine (and
  /// shard count) must match the current configuration; a mismatch is an
  /// error and the analyzer should be discarded and rebuilt fresh.
  Status load_state(ByteReader& r);

  /// The report over everything ingested so far, without spending the
  /// analyzer: state is serialized into a fresh twin which is finalized.
  /// Serves live queries on a daemon that keeps ingesting afterwards.
  AnalysisReport report_snapshot();

  /// Loads the newest valid checkpoint generation, if any. Returns true
  /// when state was restored, false when no usable checkpoint exists (the
  /// analyzer stays fresh — corrupt or truncated files are skipped, never
  /// fatal). Call before feeding any packets.
  bool try_restore();

  /// Final checkpoint (when configured), then the full §6 report. The
  /// analyzer is spent afterwards.
  AnalysisReport finalize();

 private:
  Status write_checkpoint();
  std::size_t deferral_shard(const net::CapturedPacket& pkt) const;
  void ingest(std::size_t shard, const net::CapturedPacket& pkt);
  void force_drain_deferred();

  StreamingOptions options_;
  /// Engine selection: threads <= 1 uses the single DatasetBuilder (the
  /// seed code path, byte-for-byte); more threads use the flow-sharded
  /// builder over pool_. Exactly one of single_/sharded_ is set. pool_ is
  /// declared first so it outlives the lanes that run on it.
  std::unique_ptr<exec::Pool> pool_;
  std::unique_ptr<analysis::DatasetBuilder> single_;
  std::unique_ptr<analysis::ShardedDatasetBuilder> sharded_;
  analysis::BandwidthAccumulator bandwidth_;
  std::uint64_t last_checkpoint_packets_ = 0;
  std::string checkpoint_error_;  ///< last failed write, for the report
  /// Stall-deferral state, one slot per deferral shard (the sharded
  /// engine's shard count on both engines). Driver-thread only.
  std::vector<std::deque<net::CapturedPacket>> deferred_;
  std::vector<std::uint64_t> shard_ingested_;
  std::size_t deferred_total_ = 0;
};

/// Streams a pcap file: restore from checkpoint if present, skip what was
/// already consumed, ingest the rest, finalize. The crash-recovery entry
/// point for drivers and the soak harness.
Result<AnalysisReport> analyze_file_streaming(const std::string& pcap_path,
                                              const StreamingOptions& options);

}  // namespace uncharted::core
