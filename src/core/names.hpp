// Endpoint naming: maps IP addresses to the paper's C*/O* labels when the
// topology is known (simulated captures), or to generic role-based names
// inferred from traffic otherwise.
#pragma once

#include <map>
#include <string>

#include "analysis/dataset.hpp"
#include "net/headers.hpp"
#include "sim/topology.hpp"

namespace uncharted::core {

using NameMap = std::map<net::Ipv4Addr, std::string>;

/// Names from a known topology (C1..C4, O1..O58).
NameMap name_map(const sim::Topology& topology);

/// Heuristic names from traffic alone: endpoints owning the IEC 104 port
/// become "station-<ip>", the others "server-<ip>".
NameMap infer_names(const analysis::CaptureDataset& dataset);

/// Lookup with fallback to the dotted quad.
std::string name_of(const NameMap& names, net::Ipv4Addr ip);

}  // namespace uncharted::core
