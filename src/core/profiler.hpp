// Profiling, in both of this file's senses:
//  - StageTimings / ScopedStageTimer: wall-clock per-stage timers for the
//    analysis pipeline (shard fan-out, merge, each §6 analytics stage),
//    rendered behind --profile and fed by the throughput benchmark.
//  - NetworkProfiler: the whitelist the paper's conclusion proposes —
//    correlate cyber profiles (per-connection Markov/bigram models, known
//    endpoints, per-station typeID and IOA sets) with physical profiles
//    (value ranges, the generator-activation signature) and flag
//    deviations.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/dataset.hpp"
#include "analysis/markov.hpp"
#include "analysis/physical.hpp"
#include "core/names.hpp"

namespace uncharted::core {

/// One timed pipeline stage.
struct StageTiming {
  std::string stage;
  double wall_ms = 0.0;
};

/// Ordered wall-clock stage timings for one analysis run. Wall time is
/// inherently nondeterministic, so timings live OUTSIDE every determinism
/// surface: they are excluded from report_to_json and rendered only when
/// RenderOptions.profile asks for them.
struct StageTimings {
  std::vector<StageTiming> stages;

  void add(std::string stage, double wall_ms) {
    stages.push_back(StageTiming{std::move(stage), wall_ms});
  }
  double total_ms() const {
    double total = 0.0;
    for (const auto& s : stages) total += s.wall_ms;
    return total;
  }
  bool empty() const { return stages.empty(); }
};

/// RAII stage timer: appends to `timings` on destruction; a null target
/// makes it a no-op so call sites need no conditionals.
class ScopedStageTimer {
 public:
  ScopedStageTimer(StageTimings* timings, std::string stage)
      : timings_(timings), stage_(std::move(stage)),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedStageTimer() {
    if (!timings_) return;
    auto elapsed = std::chrono::steady_clock::now() - start_;
    timings_->add(std::move(stage_),
                  std::chrono::duration<double, std::milli>(elapsed).count());
  }

  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

 private:
  StageTimings* timings_;
  std::string stage_;
  std::chrono::steady_clock::time_point start_;
};

enum class AnomalyKind {
  kUnknownStation,        ///< endpoint never seen during learning
  kUnknownTypeId,         ///< station sent a typeID it never used before
  kUnknownIoa,            ///< station reported an unknown IOA
  kUnseenTransition,      ///< APDU bigram never observed on this connection class
  kValueOutOfRange,       ///< measurement far outside the learned range
  kUnexpectedInterrogation, ///< I100 from a server that never interrogated
  kSpecViolation,           ///< direction/cause rule violation (validate_asdu)
};

std::string anomaly_kind_name(AnomalyKind k);

struct Anomaly {
  AnomalyKind kind;
  std::string description;
  Timestamp ts = 0;
};

/// Learn-then-detect profiler over capture datasets.
class NetworkProfiler {
 public:
  /// Learns the whitelist from a (presumed benign) capture.
  void learn(const analysis::CaptureDataset& dataset);

  /// Checks another capture against the whitelist.
  std::vector<Anomaly> detect(const analysis::CaptureDataset& dataset,
                              const NameMap& names = {}) const;

  /// Learned state introspection (for tests and reports).
  std::size_t known_stations() const { return station_typeids_.size(); }
  const analysis::BigramModel& sequence_model() const { return bigrams_; }

 private:
  struct ValueRange {
    double lo = 0.0;
    double hi = 0.0;
    bool initialized = false;
  };

  std::set<net::Ipv4Addr> stations_;
  std::map<net::Ipv4Addr, std::set<std::uint8_t>> station_typeids_;
  std::map<net::Ipv4Addr, std::set<std::uint32_t>> station_ioas_;
  std::set<net::Ipv4Addr> interrogators_;  ///< servers that sent I100
  analysis::BigramModel bigrams_;          ///< pooled over all connections
  std::map<analysis::SeriesKey, ValueRange> ranges_;
};

}  // namespace uncharted::core
