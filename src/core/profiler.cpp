#include "core/profiler.hpp"

#include <algorithm>
#include <cmath>

#include "iec104/validate.hpp"

namespace uncharted::core {

std::string anomaly_kind_name(AnomalyKind k) {
  switch (k) {
    case AnomalyKind::kUnknownStation: return "unknown-station";
    case AnomalyKind::kUnknownTypeId: return "unknown-typeid";
    case AnomalyKind::kUnknownIoa: return "unknown-ioa";
    case AnomalyKind::kUnseenTransition: return "unseen-transition";
    case AnomalyKind::kValueOutOfRange: return "value-out-of-range";
    case AnomalyKind::kUnexpectedInterrogation: return "unexpected-interrogation";
    case AnomalyKind::kSpecViolation: return "spec-violation";
  }
  return "?";
}

namespace {
net::Ipv4Addr station_of(const analysis::ApduRecord& rec) {
  return rec.flow.src_port == iec104::kIec104Port ? rec.flow.src_ip : rec.flow.dst_ip;
}
}  // namespace

void NetworkProfiler::learn(const analysis::CaptureDataset& dataset) {
  for (const auto& rec : dataset.records()) {
    net::Ipv4Addr station = station_of(rec);
    stations_.insert(station);
    station_typeids_.try_emplace(station);
    if (rec.apdu.apdu.format == iec104::ApduFormat::kI && rec.apdu.apdu.asdu) {
      station_typeids_[station].insert(
          static_cast<std::uint8_t>(rec.apdu.apdu.asdu->type));
      if (rec.apdu.apdu.asdu->type == iec104::TypeId::C_IC_NA_1 &&
          rec.flow.dst_port == iec104::kIec104Port) {
        interrogators_.insert(rec.flow.src_ip);
      }
      if (rec.flow.src_port == iec104::kIec104Port) {
        for (const auto& obj : rec.apdu.apdu.asdu->objects) {
          station_ioas_[station].insert(obj.ioa);
        }
      }
    }
  }

  for (const auto& chain : analysis::build_connection_chains(dataset)) {
    bigrams_.add_sequence(chain.tokens);
  }

  for (const auto& [key, series] : analysis::extract_time_series(dataset)) {
    ValueRange& r = ranges_[key];
    for (const auto& p : series.points) {
      if (!r.initialized) {
        r.lo = r.hi = p.value;
        r.initialized = true;
      } else {
        r.lo = std::min(r.lo, p.value);
        r.hi = std::max(r.hi, p.value);
      }
    }
  }
}

std::vector<Anomaly> NetworkProfiler::detect(const analysis::CaptureDataset& dataset,
                                             const NameMap& names) const {
  std::vector<Anomaly> anomalies;
  auto push = [&](AnomalyKind kind, Timestamp ts, std::string description) {
    anomalies.push_back(Anomaly{kind, std::move(description), ts});
  };

  std::set<std::string> seen;  // dedupe repeated identical findings
  auto push_once = [&](AnomalyKind kind, Timestamp ts, const std::string& description) {
    if (seen.insert(anomaly_kind_name(kind) + "|" + description).second) {
      push(kind, ts, description);
    }
  };

  for (const auto& rec : dataset.records()) {
    net::Ipv4Addr station = station_of(rec);
    if (!stations_.count(station)) {
      push_once(AnomalyKind::kUnknownStation, rec.ts, name_of(names, station));
      continue;
    }
    if (rec.apdu.apdu.format != iec104::ApduFormat::kI || !rec.apdu.apdu.asdu) continue;
    auto type = static_cast<std::uint8_t>(rec.apdu.apdu.asdu->type);

    auto known_types = station_typeids_.find(station);
    if (known_types != station_typeids_.end() && !known_types->second.count(type)) {
      push_once(AnomalyKind::kUnknownTypeId, rec.ts,
                name_of(names, station) + " typeID " + std::to_string(type));
    }
    if (rec.apdu.apdu.asdu->type == iec104::TypeId::C_IC_NA_1 &&
        rec.flow.dst_port == iec104::kIec104Port &&
        !interrogators_.count(rec.flow.src_ip)) {
      push_once(AnomalyKind::kUnexpectedInterrogation, rec.ts,
                name_of(names, rec.flow.src_ip) + " -> " + name_of(names, station));
    }
    if (rec.flow.src_port == iec104::kIec104Port) {
      auto known_ioas = station_ioas_.find(station);
      for (const auto& obj : rec.apdu.apdu.asdu->objects) {
        if (known_ioas != station_ioas_.end() && !known_ioas->second.count(obj.ioa)) {
          push_once(AnomalyKind::kUnknownIoa, rec.ts,
                    name_of(names, station) + " ioa " + std::to_string(obj.ioa));
        }
      }
    }

    // Specification rules hold regardless of what was learned.
    auto direction = rec.flow.src_port == iec104::kIec104Port
                         ? iec104::Direction::kFromOutstation
                         : iec104::Direction::kFromController;
    for (const auto& v : iec104::validate_asdu(*rec.apdu.apdu.asdu, direction)) {
      push_once(AnomalyKind::kSpecViolation, rec.ts,
                name_of(names, station) + ": " +
                    iec104::violation_kind_name(v.kind) + " (" + v.detail + ")");
    }
  }

  for (const auto& chain : analysis::build_connection_chains(dataset)) {
    if (bigrams_.contains_unseen_transition(chain.tokens)) {
      push_once(AnomalyKind::kUnseenTransition, 0, chain.pair.str());
    }
  }

  for (const auto& [key, series] : analysis::extract_time_series(dataset)) {
    auto it = ranges_.find(key);
    if (it == ranges_.end() || !it->second.initialized) continue;
    double span = std::max(1e-6, it->second.hi - it->second.lo);
    for (const auto& p : series.points) {
      if (p.value > it->second.hi + 0.5 * span || p.value < it->second.lo - 0.5 * span) {
        push_once(AnomalyKind::kValueOutOfRange, p.ts, key.str());
        break;
      }
    }
  }

  std::sort(anomalies.begin(), anomalies.end(),
            [](const Anomaly& a, const Anomaly& b) { return a.ts < b.ts; });
  return anomalies;
}

}  // namespace uncharted::core
