#include "core/checkpoint.hpp"

#include <fcntl.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "util/bytes.hpp"
#include "util/checksum.hpp"

namespace uncharted::core {

namespace {

namespace fi = faultinject;

Status sys_error(const char* code, const std::string& what, int err) {
  return Error{code, what + ": " + std::strerror(err)};
}

/// Writes `bytes` to a fresh `path` and makes it durable (write + fsync +
/// close). Any failure removes the partial file so a torn tmp can never
/// be mistaken for a complete one.
Status write_durable(fi::SysOps& sys, const std::string& path,
                     std::span<const std::uint8_t> bytes) {
  const int fd =
      sys.open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return sys_error("checkpoint-open", "cannot open " + path, errno);
  }
  std::size_t off = 0;
  while (off < bytes.size()) {
    const fi::IoResult r =
        fi::retry_write(sys, fd, bytes.data() + off, bytes.size() - off);
    if (r.status != fi::IoStatus::kOk) {
      const int err = r.status == fi::IoStatus::kError ? r.err : EAGAIN;
      (void)sys.close(fd);
      std::error_code ec;
      std::filesystem::remove(path, ec);
      return sys_error("checkpoint-write", "short write to " + path, err);
    }
    off += r.bytes;
  }
  // fsync BEFORE rename: rename is durable only for file content that has
  // already reached the disk; otherwise a crash can expose a zero-length
  // or torn file under the durable name.
  if (sys.fsync(fd) < 0) {
    const int err = errno;
    (void)sys.close(fd);
    std::error_code ec;
    std::filesystem::remove(path, ec);
    return sys_error("checkpoint-fsync", "fsync " + path, err);
  }
  (void)sys.close(fd);
  return Status::Ok();
}

/// Makes a completed rename durable by fsyncing the parent directory. A
/// directory that cannot be opened (exotic filesystems) is tolerated; a
/// directory that opens but will not sync is a real error.
Status sync_parent_dir(fi::SysOps& sys, const std::string& path) {
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  const int dfd = sys.open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC, 0);
  if (dfd < 0) return Status::Ok();
  if (sys.fsync(dfd) < 0) {
    const int err = errno;
    (void)sys.close(dfd);
    return sys_error("checkpoint-dirsync", "fsync dir " + dir, err);
  }
  (void)sys.close(dfd);
  return Status::Ok();
}

}  // namespace

Status write_checkpoint_file(const std::string& path,
                             std::span<const std::uint8_t> payload,
                             faultinject::SysOps* sys_override) {
  fi::SysOps& sys =
      sys_override != nullptr ? *sys_override : fi::real_sys_ops();
  ByteWriter w;
  w.u32le(kCheckpointMagic);
  w.u32le(kCheckpointVersion);
  w.u64le(payload.size());
  w.u32le(crc32(payload));
  w.bytes(payload);

  const std::string tmp = path + ".tmp";
  if (auto st = write_durable(sys, tmp, w.view()); !st) return st;

  std::error_code ec;
  // Rotate the previous generation; a missing primary is fine (first write).
  // A *corrupt* primary (torn by power loss or a crashed writer) must not
  // be rotated over a still-valid `.1` — that would destroy the last good
  // generation. Validate before rotating and discard a bad primary when
  // the fallback is the better artifact.
  if (std::filesystem::exists(path, ec)) {
    if (!read_checkpoint_file(path) && read_checkpoint_file(path + ".1")) {
      std::filesystem::remove(path, ec);
      if (ec) return Error{"checkpoint-rotate", ec.message()};
    } else {
      const std::string prev = path + ".1";
      if (sys.rename(path.c_str(), prev.c_str()) < 0) {
        return sys_error("checkpoint-rotate", "rotate " + path, errno);
      }
    }
  }
  if (sys.rename(tmp.c_str(), path.c_str()) < 0) {
    // Torn rename: tmp stays behind, the durable names are untouched —
    // the previous generation (now at `.1`) remains restorable.
    return sys_error("checkpoint-rename", "rename into " + path, errno);
  }
  return sync_parent_dir(sys, path);
}

Result<std::vector<std::uint8_t>> read_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error{"checkpoint-open", "cannot open " + path};
  std::vector<std::uint8_t> raw((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());

  ByteReader r(raw);
  auto magic = r.u32le();
  if (!magic || magic.value() != kCheckpointMagic) {
    return Error{"checkpoint-magic", path + " is not a checkpoint"};
  }
  auto version = r.u32le();
  if (!version || version.value() != kCheckpointVersion) {
    return Error{"checkpoint-version",
                 "unsupported version in " + path +
                     (version ? " (" + std::to_string(version.value()) + ")" : "")};
  }
  auto len = r.u64le();
  auto crc = r.u32le();
  if (!crc) return Error{"checkpoint-truncated", path + " header incomplete"};
  auto payload = r.bytes(static_cast<std::size_t>(len.value()));
  if (!payload) {
    return Error{"checkpoint-truncated",
                 path + " declares " + std::to_string(len.value()) +
                     " payload bytes but holds fewer"};
  }
  if (crc32(*payload) != crc.value()) {
    return Error{"checkpoint-crc", path + " payload checksum mismatch"};
  }
  return std::vector<std::uint8_t>(payload->begin(), payload->end());
}

Result<std::vector<std::uint8_t>> read_latest_checkpoint(const std::string& path) {
  auto primary = read_checkpoint_file(path);
  if (primary) return primary;
  auto fallback = read_checkpoint_file(path + ".1");
  if (fallback) return fallback;
  // Report the primary's failure — it is the interesting one.
  return primary.error();
}

}  // namespace uncharted::core
