#include "core/checkpoint.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/bytes.hpp"
#include "util/checksum.hpp"

namespace uncharted::core {

Status write_checkpoint_file(const std::string& path,
                             std::span<const std::uint8_t> payload) {
  ByteWriter w;
  w.u32le(kCheckpointMagic);
  w.u32le(kCheckpointVersion);
  w.u64le(payload.size());
  w.u32le(crc32(payload));
  w.bytes(payload);

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Error{"checkpoint-open", "cannot open " + tmp};
    out.write(reinterpret_cast<const char*>(w.data().data()),
              static_cast<std::streamsize>(w.data().size()));
    out.flush();
    if (!out) return Error{"checkpoint-write", "short write to " + tmp};
  }

  std::error_code ec;
  // Rotate the previous generation; a missing primary is fine (first write).
  // A *corrupt* primary (torn by power loss or a crashed writer) must not
  // be rotated over a still-valid `.1` — that would destroy the last good
  // generation. Validate before rotating and discard a bad primary when
  // the fallback is the better artifact.
  if (std::filesystem::exists(path, ec)) {
    if (!read_checkpoint_file(path) && read_checkpoint_file(path + ".1")) {
      std::filesystem::remove(path, ec);
      if (ec) return Error{"checkpoint-rotate", ec.message()};
    } else {
      std::filesystem::rename(path, path + ".1", ec);
      if (ec) return Error{"checkpoint-rotate", ec.message()};
    }
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) return Error{"checkpoint-rename", ec.message()};
  return Status::Ok();
}

Result<std::vector<std::uint8_t>> read_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error{"checkpoint-open", "cannot open " + path};
  std::vector<std::uint8_t> raw((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());

  ByteReader r(raw);
  auto magic = r.u32le();
  if (!magic || magic.value() != kCheckpointMagic) {
    return Error{"checkpoint-magic", path + " is not a checkpoint"};
  }
  auto version = r.u32le();
  if (!version || version.value() != kCheckpointVersion) {
    return Error{"checkpoint-version",
                 "unsupported version in " + path +
                     (version ? " (" + std::to_string(version.value()) + ")" : "")};
  }
  auto len = r.u64le();
  auto crc = r.u32le();
  if (!crc) return Error{"checkpoint-truncated", path + " header incomplete"};
  auto payload = r.bytes(static_cast<std::size_t>(len.value()));
  if (!payload) {
    return Error{"checkpoint-truncated",
                 path + " declares " + std::to_string(len.value()) +
                     " payload bytes but holds fewer"};
  }
  if (crc32(*payload) != crc.value()) {
    return Error{"checkpoint-crc", path + " payload checksum mismatch"};
  }
  return std::vector<std::uint8_t>(payload->begin(), payload->end());
}

Result<std::vector<std::uint8_t>> read_latest_checkpoint(const std::string& path) {
  auto primary = read_checkpoint_file(path);
  if (primary) return primary;
  auto fallback = read_checkpoint_file(path + ".1");
  if (fallback) return fallback;
  // Report the primary's failure — it is the interesting one.
  return primary.error();
}

}  // namespace uncharted::core
