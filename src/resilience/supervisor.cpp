#include "resilience/supervisor.hpp"

#include <algorithm>
#include <cassert>

#include "iec104/elements.hpp"

namespace uncharted::resilience {

std::string endpoint_state_name(EndpointState s) {
  switch (s) {
    case EndpointState::kDown: return "down";
    case EndpointState::kConnecting: return "connecting";
    case EndpointState::kStandby: return "standby";
    case EndpointState::kActive: return "active";
    case EndpointState::kBackoff: return "backoff";
    case EndpointState::kCircuitOpen: return "circuit-open";
  }
  return "?";
}

RedundancySupervisor::RedundancySupervisor(SupervisorConfig config)
    : config_(config),
      endpoints_{Endpoint(config), Endpoint(config)},
      rng_(config.seed) {}

int RedundancySupervisor::check(int endpoint) {
  assert(endpoint >= 0 && endpoint < kEndpoints);
  return endpoint;
}

void RedundancySupervisor::fail(Timestamp now, int endpoint) {
  auto& ep = endpoints_[check(endpoint)];
  ++stats_.failed_connects;
  ++ep.consecutive_failures;
  ep.connect_deadline.reset();
  ep.awaiting_start_con = false;
  if (ep.consecutive_failures >= config_.circuit_failure_threshold) {
    // Flapping or dead: stop retrying for the cool-off period.
    ++stats_.circuit_opens;
    ep.state = EndpointState::kCircuitOpen;
    ep.wake_at = now + from_seconds(config_.circuit_open_s);
    ep.backoff_s = config_.backoff_initial_s;
    return;
  }
  double base = ep.backoff_s <= 0.0 ? config_.backoff_initial_s
                                    : std::min(ep.backoff_s * 2.0, config_.backoff_max_s);
  ep.backoff_s = base;
  // Deterministic jitter desynchronizes a fleet of supervisors retrying
  // after a shared outage (the thundering-herd problem).
  double jitter = rng_.uniform(-config_.backoff_jitter, config_.backoff_jitter);
  double delay = std::max(0.0, base * (1.0 + jitter));
  ep.state = EndpointState::kBackoff;
  ep.wake_at = now + from_seconds(delay);
}

void RedundancySupervisor::promote(Timestamp now, int endpoint, std::vector<Action>& out) {
  auto& ep = endpoints_[check(endpoint)];
  active_ = endpoint;
  ep.awaiting_start_con = true;
  out.push_back(
      Action{Action::Kind::kSendApdu, endpoint, ep.engine.start_dt(now)});
}

void RedundancySupervisor::lose_active(Timestamp now, std::vector<Action>& out) {
  int other = active_ == kPrimary ? kBackup : kPrimary;
  active_ = -1;
  if (endpoints_[other].state == EndpointState::kStandby) {
    // Switchover: the cold backup takes over (paper Fig 9).
    ++stats_.switchovers;
    promote(now, other, out);
  }
}

void RedundancySupervisor::track_outbound(Timestamp now,
                                          const std::vector<Action>& out) {
  for (const auto& action : out) {
    if (action.kind != Action::Kind::kSendApdu) continue;
    endpoints_[check(action.endpoint)].conformance.on_apdu(
        now, /*from_controller=*/true, action.apdu);
  }
}

void RedundancySupervisor::quarantine_if_hostile(Timestamp now, int endpoint,
                                                 std::vector<Action>& out) {
  auto& ep = endpoints_[check(endpoint)];
  if (!config_.quarantine_hostile_peers || !ep.conformance.hostile()) return;
  if (ep.state != EndpointState::kStandby && ep.state != EndpointState::kActive) return;
  // A peer speaking protocol-impossible IEC 104: cut the session and open
  // the circuit. Unlike a flap this needs no failure streak — the evidence
  // is in the conformance profile, not in connect statistics.
  ++stats_.hostile_quarantines;
  ++stats_.circuit_opens;
  out.push_back(Action{Action::Kind::kCloseConnection, endpoint, {}});
  ep.state = EndpointState::kCircuitOpen;
  ep.wake_at = now + from_seconds(config_.circuit_open_s);
  ep.backoff_s = config_.backoff_initial_s;
  ep.awaiting_start_con = false;
  if (active_ == endpoint) lose_active(now, out);
}

std::vector<Action> RedundancySupervisor::on_connected(Timestamp now, int endpoint) {
  std::vector<Action> out;
  auto& ep = endpoints_[check(endpoint)];
  ep.engine.on_connected(now);
  // Fresh session, fresh conformance machine: a new transport connection
  // is definitively in STOPDT with zeroed counters.
  ep.conformance = iec104::ConformanceMachine(config_.conformance);
  ep.conformance.on_connection_open(now);
  ep.state = EndpointState::kStandby;
  ep.connected_at = now;
  ep.connect_deadline.reset();
  ep.wake_at.reset();
  // Success clears the failure streak only once the connection proves
  // itself (min_uptime); a flap must keep escalating. The streak is
  // cleared lazily in on_disconnected / on_tick via uptime checks, and
  // explicitly here when the previous session was long-lived.
  if (active_ < 0) promote(now, endpoint, out);
  track_outbound(now, out);
  return out;
}

std::vector<Action> RedundancySupervisor::on_connect_failed(Timestamp now,
                                                            int endpoint) {
  std::vector<Action> out;
  fail(now, endpoint);
  return out;
}

std::vector<Action> RedundancySupervisor::on_disconnected(Timestamp now, int endpoint) {
  std::vector<Action> out;
  auto& ep = endpoints_[check(endpoint)];
  bool was_active = active_ == endpoint;
  bool young = to_seconds(static_cast<DurationUs>(now - ep.connected_at)) <
               config_.min_uptime_s;
  if (!was_active && (ep.state == EndpointState::kStandby)) {
    // The paper's reset-backup pattern: the cold connection is routinely
    // torn down and re-established. Expected churn, not a failure.
    ++stats_.backup_resets;
  }
  if (young) {
    fail(now, endpoint);
  } else {
    ep.consecutive_failures = 0;
    ep.backoff_s = 0.0;
    ep.state = EndpointState::kBackoff;
    // Honest disconnect: retry after the initial delay (jittered).
    double delay = std::max(
        0.0, config_.backoff_initial_s *
                 (1.0 + rng_.uniform(-config_.backoff_jitter, config_.backoff_jitter)));
    ep.wake_at = now + from_seconds(delay);
  }
  ep.awaiting_start_con = false;
  if (was_active) lose_active(now, out);
  track_outbound(now, out);
  return out;
}

std::vector<Action> RedundancySupervisor::on_apdu(Timestamp now, int endpoint,
                                                  const iec104::Apdu& apdu) {
  std::vector<Action> out;
  auto& ep = endpoints_[check(endpoint)];
  if (ep.state != EndpointState::kStandby && ep.state != EndpointState::kActive) {
    return out;  // late APDU on a dead transport: ignore
  }
  ep.conformance.on_apdu(now, /*from_controller=*/false, apdu);
  auto signals = ep.engine.on_apdu(now, apdu);
  for (auto& reply : signals.to_send) {
    out.push_back(Action{Action::Kind::kSendApdu, endpoint, std::move(reply)});
  }

  if (ep.awaiting_start_con && apdu.format == iec104::ApduFormat::kU &&
      apdu.u_function == iec104::UFunction::kStartDtCon) {
    // Activation confirmed: resynchronize process state with a general
    // interrogation — the I100 burst the paper observes after every
    // switchover (the Fig 13 "ellipse" pattern).
    ep.awaiting_start_con = false;
    ep.state = EndpointState::kActive;
    ep.consecutive_failures = 0;
    ep.backoff_s = 0.0;
    iec104::Asdu gi;
    gi.type = iec104::TypeId::C_IC_NA_1;
    gi.cot.cause = iec104::Cause::kActivation;
    gi.common_address = config_.common_address;
    gi.objects.push_back({0, iec104::InterrogationCommand{20}, std::nullopt});
    if (auto i_apdu = ep.engine.send_asdu(now, std::move(gi))) {
      ++stats_.interrogations_sent;
      out.push_back(Action{Action::Kind::kSendApdu, endpoint, std::move(*i_apdu)});
    }
  }

  if (signals.close_connection) {
    ++stats_.t1_closes;
    out.push_back(Action{Action::Kind::kCloseConnection, endpoint, {}});
    ep.state = EndpointState::kDown;
    ep.wake_at = now;  // eligible to reconnect immediately
    if (active_ == endpoint) lose_active(now, out);
  }
  track_outbound(now, out);
  quarantine_if_hostile(now, endpoint, out);
  return out;
}

std::vector<Action> RedundancySupervisor::on_tick(Timestamp now) {
  std::vector<Action> out;
  for (int i = 0; i < kEndpoints; ++i) {
    auto& ep = endpoints_[i];
    switch (ep.state) {
      case EndpointState::kDown:
        if (!ep.wake_at || now >= *ep.wake_at) {
          ++stats_.reconnect_attempts;
          ep.state = EndpointState::kConnecting;
          ep.connect_deadline = now + from_seconds(config_.connect_timeout_s);
          out.push_back(Action{Action::Kind::kOpenConnection, i, {}});
        }
        break;
      case EndpointState::kBackoff:
      case EndpointState::kCircuitOpen:
        if (ep.wake_at && now >= *ep.wake_at) {
          if (ep.state == EndpointState::kCircuitOpen) {
            // Half-open probe: one fresh attempt; failure re-opens fast.
            ep.consecutive_failures = config_.circuit_failure_threshold - 1;
          }
          ++stats_.reconnect_attempts;
          ep.state = EndpointState::kConnecting;
          ep.wake_at.reset();
          ep.connect_deadline = now + from_seconds(config_.connect_timeout_s);
          out.push_back(Action{Action::Kind::kOpenConnection, i, {}});
        }
        break;
      case EndpointState::kConnecting:
        if (ep.connect_deadline && now >= *ep.connect_deadline) {
          // The transport never answered (paper's T0 expiry).
          fail(now, i);
        }
        break;
      case EndpointState::kStandby:
      case EndpointState::kActive: {
        auto signals = ep.engine.on_tick(now);
        for (auto& apdu : signals.to_send) {
          out.push_back(Action{Action::Kind::kSendApdu, i, std::move(apdu)});
        }
        if (signals.close_connection) {
          // T1 expiry: the defining switchover trigger.
          ++stats_.t1_closes;
          out.push_back(Action{Action::Kind::kCloseConnection, i, {}});
          ep.state = EndpointState::kDown;
          ep.wake_at = now;
          ep.awaiting_start_con = false;
          if (active_ == i) lose_active(now, out);
        }
        break;
      }
    }
  }
  track_outbound(now, out);
  return out;
}

}  // namespace uncharted::resilience
