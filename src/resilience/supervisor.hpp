// Redundancy supervisor: primary/backup IEC 104 connection management.
//
// The paper's measurements (§5, Figs 8-9) show control centers holding a
// hot primary connection and a cold backup to every outstation, with two
// recurring dynamics: the backup being periodically reset ("reset-backup")
// and traffic switching to the backup when the primary's T1 timer expires
// ("switchover"). This supervisor reproduces both on top of two
// ConnectionEngine instances, adding the operational machinery a real
// front-end needs for long-run resilience:
//
//   - exponential backoff with deterministic jitter between reconnect
//     attempts, so a dead outstation is not hammered;
//   - a circuit breaker: an endpoint that keeps failing — or keeps
//     flapping (connecting, then dying young) — is quarantined for a
//     cool-off period instead of being retried forever;
//   - T1-expiry-triggered switchover: when the active connection's send
//     timer fires, the standby is promoted (STARTDT, then a general
//     interrogation to resynchronize state, the paper's I100 ellipse).
//
// Like ConnectionEngine, the supervisor is transport-agnostic and
// time-driven: the owner reports transport events and ticks, and executes
// the returned actions.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "iec104/conformance.hpp"
#include "iec104/connection.hpp"
#include "util/rng.hpp"
#include "util/timebase.hpp"

namespace uncharted::resilience {

/// Lifecycle of one redundant endpoint (one TCP path to the outstation).
enum class EndpointState {
  kDown,         ///< not connected, eligible for a connect attempt
  kConnecting,   ///< connect requested, waiting for the transport
  kStandby,      ///< connected, STOPDT — the cold backup
  kActive,       ///< connected, STARTDT confirmed — carrying traffic
  kBackoff,      ///< waiting out an exponential-backoff delay
  kCircuitOpen,  ///< quarantined after repeated failures/flaps
};

std::string endpoint_state_name(EndpointState s);

struct SupervisorConfig {
  iec104::Timers timers;
  int k = iec104::kDefaultK;
  int w = iec104::kDefaultW;

  double backoff_initial_s = 1.0;  ///< first retry delay
  double backoff_max_s = 60.0;     ///< delay cap
  double backoff_jitter = 0.25;    ///< +/- fraction of the delay, randomized

  /// Consecutive failures (failed connects or young deaths) that open the
  /// circuit breaker.
  int circuit_failure_threshold = 5;
  double circuit_open_s = 120.0;  ///< quarantine duration
  /// A connection dying sooner than this after connecting counts as a
  /// failure (flap), not an honest disconnect.
  double min_uptime_s = 5.0;
  /// A connect attempt outstanding longer than this is failed by the
  /// supervisor itself (transport never answered — the paper's T0).
  double connect_timeout_s = 30.0;

  /// Station address used in the post-switchover general interrogation.
  std::uint16_t common_address = 1;

  /// Severity policy for the per-connection conformance machines. The
  /// supervisor observes both directions of each endpoint's session (its
  /// own sends and the peer's frames) through one of these.
  iec104::ConformancePolicy conformance;
  /// Trip the circuit breaker when a peer's conformance verdict turns
  /// hostile: the connection is closed and the endpoint quarantined for
  /// circuit_open_s, exactly like a flapping transport. A peer speaking
  /// protocol-impossible IEC 104 is an intruder or a faulted device;
  /// either way, keeping the session up is the wrong move.
  bool quarantine_hostile_peers = true;

  std::uint64_t seed = 0x5ca1ab1eULL;  ///< jitter determinism
};

/// What the supervisor wants its owner to do.
struct Action {
  enum class Kind {
    kOpenConnection,   ///< start a TCP connect on `endpoint`
    kCloseConnection,  ///< tear down `endpoint`'s transport
    kSendApdu,         ///< transmit `apdu` on `endpoint`
  };
  Kind kind = Kind::kOpenConnection;
  int endpoint = 0;  ///< 0 = primary, 1 = backup
  iec104::Apdu apdu;
};

struct SupervisorStats {
  std::uint64_t switchovers = 0;         ///< active role moved endpoints
  std::uint64_t reconnect_attempts = 0;  ///< kOpenConnection actions issued
  std::uint64_t failed_connects = 0;     ///< failures + young deaths
  std::uint64_t circuit_opens = 0;       ///< times the breaker tripped
  std::uint64_t t1_closes = 0;           ///< closes forced by T1 expiry
  std::uint64_t interrogations_sent = 0; ///< I100 after activation
  std::uint64_t backup_resets = 0;       ///< standby disconnects (reset-backup)
  std::uint64_t hostile_quarantines = 0; ///< circuit opens forced by conformance
};

class RedundancySupervisor {
 public:
  static constexpr int kPrimary = 0;
  static constexpr int kBackup = 1;
  static constexpr int kEndpoints = 2;

  explicit RedundancySupervisor(SupervisorConfig config = {});

  /// Transport reports `endpoint` connected.
  std::vector<Action> on_connected(Timestamp now, int endpoint);
  /// Transport reports the connect attempt failed.
  std::vector<Action> on_connect_failed(Timestamp now, int endpoint);
  /// Transport reports an established connection died (peer close, RST).
  std::vector<Action> on_disconnected(Timestamp now, int endpoint);
  /// An APDU arrived on `endpoint`.
  std::vector<Action> on_apdu(Timestamp now, int endpoint, const iec104::Apdu& apdu);
  /// Clock tick: drives engines' timers, backoff expiry, circuit reset and
  /// connect timeouts.
  std::vector<Action> on_tick(Timestamp now);

  EndpointState state(int endpoint) const { return endpoints_[check(endpoint)].state; }
  /// The endpoint currently carrying (or activating) traffic, -1 if none.
  int active_endpoint() const { return active_; }
  const SupervisorStats& stats() const { return stats_; }
  const iec104::ConnectionEngine& engine(int endpoint) const {
    return endpoints_[check(endpoint)].engine;
  }
  /// Conformance machine for the endpoint's current session (reset on
  /// every reconnect).
  const iec104::ConformanceMachine& conformance(int endpoint) const {
    return endpoints_[check(endpoint)].conformance;
  }

 private:
  struct Endpoint {
    explicit Endpoint(const SupervisorConfig& config)
        : engine(iec104::Role::kControlling, config.timers, config.k, config.w),
          conformance(config.conformance) {}

    EndpointState state = EndpointState::kDown;
    iec104::ConnectionEngine engine;
    iec104::ConformanceMachine conformance;
    int consecutive_failures = 0;
    double backoff_s = 0.0;
    std::optional<Timestamp> wake_at;        ///< backoff / circuit-open expiry
    std::optional<Timestamp> connect_deadline;
    Timestamp connected_at = 0;
    bool awaiting_start_con = false;  ///< STARTDT sent, confirmation pending
  };

  static int check(int endpoint);
  /// Registers a failure (failed connect or flap) and schedules the next
  /// attempt — or opens the circuit.
  void fail(Timestamp now, int endpoint);
  /// Begins activation of a connected endpoint: STARTDT + bookkeeping.
  void promote(Timestamp now, int endpoint, std::vector<Action>& out);
  /// Active endpoint lost: demote and promote the standby if possible.
  void lose_active(Timestamp now, std::vector<Action>& out);
  /// Feeds every outbound kSendApdu in `out` to its endpoint's
  /// conformance machine (our own traffic is half the session).
  void track_outbound(Timestamp now, const std::vector<Action>& out);
  /// Closes and quarantines `endpoint` if its peer turned hostile.
  void quarantine_if_hostile(Timestamp now, int endpoint, std::vector<Action>& out);

  SupervisorConfig config_;
  std::array<Endpoint, kEndpoints> endpoints_;
  int active_ = -1;
  SupervisorStats stats_;
  Rng rng_;
};

}  // namespace uncharted::resilience
