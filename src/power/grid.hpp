// Area grid model: aggregate swing-equation frequency dynamics over a set
// of generators and loads, with schedulable disturbance events.
//
// The model is deliberately low-order — the paper's Figs 18-21 depend on
// the *shape* of frequency/power/voltage trajectories (unmet load raises
// frequency, AGC ramps generation back down, reconnection reverses it), not
// on transmission-level power flow. One synchronous area, uniform frequency.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "power/generator.hpp"
#include "util/rng.hpp"

namespace uncharted::power {

struct LoadConfig {
  std::string name;
  double base_mw = 100.0;
  double noise_fraction = 0.005;  ///< per-step multiplicative noise
};

/// One controllable/disturbable load block.
class Load {
 public:
  explicit Load(LoadConfig config) : config_(std::move(config)) {}

  /// Disconnects (load loss: the Fig 18 "unmet load" event).
  void disconnect() { connected_ = false; }
  void reconnect() { connected_ = true; }
  bool connected() const { return connected_; }

  double demand_mw(Rng& rng) const {
    if (!connected_) return 0.0;
    return config_.base_mw * (1.0 + config_.noise_fraction * rng.normal());
  }

  const LoadConfig& config() const { return config_; }

 private:
  LoadConfig config_;
  bool connected_ = true;
};

struct GridConfig {
  double nominal_frequency_hz = 60.0;
  /// Aggregate inertia constant H (s) on the total generation base.
  double inertia_s = 5.0;
  /// Load damping: %/Hz of load change per Hz of frequency deviation.
  double damping = 1.5;
  std::uint64_t noise_seed = 42;
};

/// A scheduled disturbance.
struct GridEvent {
  double at_seconds = 0.0;
  std::function<void()> apply;
  std::string description;
};

class GridModel {
 public:
  explicit GridModel(GridConfig config);

  /// Takes ownership of a generator; returns its index.
  std::size_t add_generator(Generator gen);
  std::size_t add_load(Load load);

  Generator& generator(std::size_t i) { return generators_.at(i); }
  const Generator& generator(std::size_t i) const { return generators_.at(i); }
  Load& load(std::size_t i) { return loads_.at(i); }
  std::size_t generator_count() const { return generators_.size(); }
  std::size_t load_count() const { return loads_.size(); }

  /// Schedules `apply` to run when simulation time reaches `at_seconds`.
  void schedule(double at_seconds, std::string description, std::function<void()> apply);

  /// Advances by dt seconds: fires due events, steps generators, integrates
  /// the swing equation.
  void step(double dt);

  double time_seconds() const { return time_s_; }
  double frequency_hz() const { return frequency_hz_; }
  double total_generation_mw() const;
  double total_load_mw() const { return last_load_mw_; }
  const GridConfig& config() const { return config_; }
  Rng& rng() { return rng_; }

 private:
  GridConfig config_;
  std::vector<Generator> generators_;
  std::vector<Load> loads_;
  std::vector<GridEvent> pending_events_;
  double time_s_ = 0.0;
  double frequency_hz_;
  double last_load_mw_ = 0.0;
  Rng rng_;
};

}  // namespace uncharted::power
