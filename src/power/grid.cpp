#include "power/grid.hpp"

#include <algorithm>

namespace uncharted::power {

GridModel::GridModel(GridConfig config)
    : config_(config), frequency_hz_(config.nominal_frequency_hz), rng_(config.noise_seed) {}

std::size_t GridModel::add_generator(Generator gen) {
  generators_.push_back(std::move(gen));
  return generators_.size() - 1;
}

std::size_t GridModel::add_load(Load load) {
  loads_.push_back(std::move(load));
  return loads_.size() - 1;
}

void GridModel::schedule(double at_seconds, std::string description,
                         std::function<void()> apply) {
  pending_events_.push_back(GridEvent{at_seconds, std::move(apply), std::move(description)});
  std::sort(pending_events_.begin(), pending_events_.end(),
            [](const GridEvent& a, const GridEvent& b) { return a.at_seconds < b.at_seconds; });
}

double GridModel::total_generation_mw() const {
  double total = 0.0;
  for (const auto& g : generators_) total += g.output_mw();
  return total;
}

void GridModel::step(double dt) {
  time_s_ += dt;

  while (!pending_events_.empty() && pending_events_.front().at_seconds <= time_s_) {
    pending_events_.front().apply();
    pending_events_.erase(pending_events_.begin());
  }

  // Primary frequency response: each online governor counters the current
  // deviation within +-10% of unit capacity (droop characteristic).
  double f0_pre = config_.nominal_frequency_hz;
  double dev_pre = frequency_hz_ - f0_pre;
  for (auto& g : generators_) {
    if (g.phase() == GeneratorPhase::kOnline && g.config().governor_droop > 0.0) {
      double cap = g.config().capacity_mw;
      double response = -dev_pre / (f0_pre * g.config().governor_droop) * cap;
      g.set_governor_target(std::clamp(response, -0.1 * cap, 0.1 * cap));
    } else {
      g.set_governor_target(0.0);
    }
    g.step(dt);
  }

  double load_mw = 0.0;
  for (const auto& l : loads_) load_mw += l.demand_mw(rng_);

  // Frequency-dependent load damping around nominal.
  double f0 = config_.nominal_frequency_hz;
  double dev = frequency_hz_ - f0;
  load_mw *= 1.0 + config_.damping / 100.0 * dev;
  last_load_mw_ = load_mw;

  double gen_mw = total_generation_mw();
  double capacity = 0.0;
  for (const auto& g : generators_) capacity += g.config().capacity_mw;
  if (capacity < 1.0) capacity = 1.0;

  // Swing equation on the aggregate base: 2H/f0 * df/dt = (Pgen-Pload)/S.
  double imbalance_pu = (gen_mw - load_mw) / capacity;
  double dfdt = imbalance_pu * f0 / (2.0 * config_.inertia_s);
  frequency_hz_ += dfdt * dt;
  // Numerical guard: keep frequency in a physically plausible band.
  frequency_hz_ = std::clamp(frequency_hz_, 0.8 * f0, 1.2 * f0);
}

}  // namespace uncharted::power
