// Automatic Generation Control: the balancing authority's control loop
// (paper §2). Every cycle it computes the Area Control Error from the
// frequency deviation and nudges participating generators' dispatch
// setpoints against it, split by participation factor. The setpoint itself
// acts as the controller's integrator (bounded by unit capacity), which is
// how utility AGC implementations avoid wind-up. The simulator turns the
// issued setpoints into C_SE_NC_1 (I50) "AGC-SP" messages — exactly the
// commands the paper observed.
#pragma once

#include <cstddef>
#include <vector>

#include "power/grid.hpp"

namespace uncharted::power {

struct AgcConfig {
  double cycle_seconds = 4.0;  ///< AGC execution period
  /// Frequency bias beta in MW/0.1Hz (positive). Scale with system size:
  /// roughly 1 MW/0.1Hz per 100 MW of capacity.
  double frequency_bias_mw_per_tenth_hz = 6.0;
  /// Fraction of the ACE corrected per cycle (integral gain on setpoints).
  double correction_gain = 0.3;
  double deadband_hz = 0.005;  ///< no action within the deadband
  /// Setpoint commands smaller than this are suppressed (no point waking a
  /// generator for noise-level corrections).
  double min_command_delta_mw = 0.0;
};

/// One issued setpoint command.
struct AgcCommand {
  std::size_t generator_index;
  double setpoint_mw;
};

class AgcController {
 public:
  AgcController(AgcConfig config, std::vector<std::size_t> participant_indices)
      : config_(config), participants_(std::move(participant_indices)) {}

  /// Runs one AGC pass if `cycle_seconds` elapsed since the last one.
  /// Applies the setpoints to the grid's generators and returns them.
  std::vector<AgcCommand> step(GridModel& grid);

  double area_control_error_mw() const { return last_ace_mw_; }
  const AgcConfig& config() const { return config_; }

 private:
  AgcConfig config_;
  std::vector<std::size_t> participants_;
  double last_run_s_ = -1e18;
  double last_ace_mw_ = 0.0;
};

}  // namespace uncharted::power
