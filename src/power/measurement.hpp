// Measurement sampling: turns grid state into the telemetry points an RTU
// reports, with the spontaneous-threshold logic the paper dissects (§6.3
// Type 5: values are sent only when they move past a configured threshold,
// which can starve a connection of I-messages for >T3 seconds).
#pragma once

#include <cmath>
#include <string>

namespace uncharted::power {

/// Physical quantity kinds, following the paper's Table 8 legend.
enum class PhysicalSymbol {
  kCurrent,      ///< I
  kActivePower,  ///< P
  kReactivePower,///< Q
  kVoltage,      ///< U
  kFrequency,    ///< Freq
  kStatus,       ///< breaker / switch status
  kSetpoint,     ///< AGC-SP
  kOther,
};

std::string physical_symbol_name(PhysicalSymbol s);

/// Decides when a measured value is reported spontaneously.
class SpontaneousReporter {
 public:
  /// threshold: absolute change that triggers a report. A large threshold
  /// reproduces the paper's "stale data" outstation.
  explicit SpontaneousReporter(double threshold) : threshold_(threshold) {}

  /// Returns true when `value` differs from the last reported value by more
  /// than the threshold (always true for the first sample).
  bool should_report(double value) {
    if (!has_last_ || std::fabs(value - last_reported_) > threshold_) {
      last_reported_ = value;
      has_last_ = true;
      return true;
    }
    return false;
  }

  double threshold() const { return threshold_; }

 private:
  double threshold_;
  double last_reported_ = 0.0;
  bool has_last_ = false;
};

}  // namespace uncharted::power
