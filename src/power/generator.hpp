// Generator model: setpoint tracking with ramp limits plus the
// synchronization sequence the paper observes on the wire (Fig 20/21):
// voltage ramps 0 -> nominal, breaker status 0 -> 2 (closed), then active
// power ramps while reactive power settles positive or negative.
#pragma once

#include <cstdint>
#include <string>

namespace uncharted::power {

/// Breaker/connection status as encoded in double-point telemetry:
/// 0 = intermediate, 1 = off/open, 2 = on/closed (paper Table 8 Status(0,1,2)).
enum class BreakerStatus : std::uint8_t {
  kIntermediate = 0,
  kOpen = 1,
  kClosed = 2,
};

/// Generator lifecycle during synchronization.
enum class GeneratorPhase {
  kOffline,       ///< shut down: V=0, P=0, breaker open
  kRampingUp,     ///< field energized: V ramps to nominal, breaker open
  kSynchronizing, ///< V at nominal, matching frequency/phase, breaker open
  kOnline,        ///< breaker closed, delivering power
};

struct GeneratorConfig {
  std::string name;
  double capacity_mw = 100.0;
  double ramp_mw_per_s = 1.0;        ///< AGC ramp rate limit
  double governor_droop = 0.05;      ///< 5% droop primary frequency response
  double nominal_voltage_kv = 130.0; ///< at the step-up transformer input
  double voltage_ramp_kv_per_s = 2.0;
  double sync_duration_s = 60.0;     ///< time in kSynchronizing before close
  bool agc_participant = true;
  double participation_factor = 1.0; ///< share of AGC regulation
};

class Generator {
 public:
  explicit Generator(GeneratorConfig config, bool start_online = true,
                     double initial_mw = 0.0);

  /// AGC (or operator) setpoint in MW; tracked at the ramp limit while online.
  void set_setpoint(double mw);
  double setpoint() const { return setpoint_mw_; }

  /// Begins the offline -> online synchronization sequence.
  void begin_startup();
  /// Trips the unit: breaker opens, voltage collapses.
  void trip();

  /// Advances the model by dt seconds.
  void step(double dt);

  /// Target primary frequency response (governor droop) requested by the
  /// grid model; the unit tracks it with a first-order lag (turbine/governor
  /// time constant) in step(). Included in output_mw() while online.
  void set_governor_target(double mw) { governor_target_mw_ = mw; }
  double governor_response() const { return governor_mw_; }

  GeneratorPhase phase() const { return phase_; }
  BreakerStatus breaker() const { return breaker_; }
  /// Delivered active power: AGC dispatch plus governor response.
  double output_mw() const {
    return phase_ == GeneratorPhase::kOnline ? output_mw_ + governor_mw_ : output_mw_;
  }
  /// Reactive power follows grid voltage needs; signed.
  double reactive_mvar() const { return reactive_mvar_; }
  double terminal_voltage_kv() const { return voltage_kv_; }
  /// Stator current in kA derived from S = sqrt(P^2+Q^2) and V.
  double current_ka() const;
  const GeneratorConfig& config() const { return config_; }

 private:
  GeneratorConfig config_;
  GeneratorPhase phase_;
  BreakerStatus breaker_;
  double setpoint_mw_ = 0.0;
  double output_mw_ = 0.0;   ///< dispatched power (setpoint tracking)
  double governor_mw_ = 0.0;        ///< primary frequency response on top
  double governor_target_mw_ = 0.0; ///< droop target being tracked
  double reactive_mvar_ = 0.0;
  double voltage_kv_ = 0.0;
  double sync_elapsed_s_ = 0.0;
};

}  // namespace uncharted::power
