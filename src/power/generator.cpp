#include "power/generator.hpp"

#include <algorithm>
#include <cmath>

namespace uncharted::power {

Generator::Generator(GeneratorConfig config, bool start_online, double initial_mw)
    : config_(std::move(config)) {
  if (start_online) {
    phase_ = GeneratorPhase::kOnline;
    breaker_ = BreakerStatus::kClosed;
    voltage_kv_ = config_.nominal_voltage_kv;
    output_mw_ = std::clamp(initial_mw, 0.0, config_.capacity_mw);
    setpoint_mw_ = output_mw_;
  } else {
    // The paper's Fig 20 shows the breaker status jumping 0 -> 2 when a
    // generator comes online, so a de-energized unit reports 0.
    phase_ = GeneratorPhase::kOffline;
    breaker_ = BreakerStatus::kIntermediate;
  }
}

void Generator::set_setpoint(double mw) {
  setpoint_mw_ = std::clamp(mw, 0.0, config_.capacity_mw);
}

void Generator::begin_startup() {
  if (phase_ == GeneratorPhase::kOffline) {
    phase_ = GeneratorPhase::kRampingUp;
    sync_elapsed_s_ = 0.0;
  }
}

void Generator::trip() {
  governor_mw_ = 0.0;
  governor_target_mw_ = 0.0;
  phase_ = GeneratorPhase::kOffline;
  breaker_ = BreakerStatus::kIntermediate;
  output_mw_ = 0.0;
  reactive_mvar_ = 0.0;
  voltage_kv_ = 0.0;
}

void Generator::step(double dt) {
  switch (phase_) {
    case GeneratorPhase::kOffline:
      voltage_kv_ = std::max(0.0, voltage_kv_ - 4.0 * config_.voltage_ramp_kv_per_s * dt);
      output_mw_ = 0.0;
      reactive_mvar_ = 0.0;
      break;

    case GeneratorPhase::kRampingUp:
      // Field energization: terminal voltage climbs to nominal, no power.
      voltage_kv_ += config_.voltage_ramp_kv_per_s * dt;
      if (voltage_kv_ >= config_.nominal_voltage_kv) {
        voltage_kv_ = config_.nominal_voltage_kv;
        phase_ = GeneratorPhase::kSynchronizing;
        sync_elapsed_s_ = 0.0;
      }
      break;

    case GeneratorPhase::kSynchronizing:
      // Frequency/phase matching; P and Q stay flat (the Fig 20 plateau).
      sync_elapsed_s_ += dt;
      if (sync_elapsed_s_ >= config_.sync_duration_s) {
        breaker_ = BreakerStatus::kClosed;
        phase_ = GeneratorPhase::kOnline;
      }
      break;

    case GeneratorPhase::kOnline: {
      // Governor lag: ~5 s turbine time constant keeps the droop loop
      // stable at the simulation step size.
      governor_mw_ += (governor_target_mw_ - governor_mw_) * std::min(1.0, dt / 5.0);
      double delta = setpoint_mw_ - output_mw_;  // dispatch tracking, droop on top
      double max_step = config_.ramp_mw_per_s * dt;
      output_mw_ += std::clamp(delta, -max_step, max_step);
      output_mw_ = std::clamp(output_mw_, 0.0, config_.capacity_mw);
      // Reactive power loosely follows loading; sign depends on whether the
      // machine absorbs or produces vars (paper: "positive or negative").
      double target_q = 0.25 * output_mw_ - 0.05 * config_.capacity_mw;
      reactive_mvar_ += (target_q - reactive_mvar_) * std::min(1.0, 0.2 * dt);
      break;
    }
  }
}

double Generator::current_ka() const {
  if (voltage_kv_ < 1.0) return 0.0;
  double s_mva = std::hypot(output_mw(), reactive_mvar_);
  // Three-phase: I = S / (sqrt(3) * V_LL).
  return s_mva / (1.7320508 * voltage_kv_);
}

}  // namespace uncharted::power
