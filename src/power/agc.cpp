#include "power/agc.hpp"

#include <algorithm>
#include <cmath>

namespace uncharted::power {

std::vector<AgcCommand> AgcController::step(GridModel& grid) {
  std::vector<AgcCommand> commands;
  if (grid.time_seconds() - last_run_s_ < config_.cycle_seconds) return commands;
  last_run_s_ = grid.time_seconds();

  double dev = grid.frequency_hz() - grid.config().nominal_frequency_hz;
  if (std::fabs(dev) < config_.deadband_hz) {
    last_ace_mw_ = 0.0;
    return commands;
  }

  // ACE = 10 * beta * delta_f (single-area: no tie-line term). Positive ACE
  // means over-generation (high frequency) -> lower the setpoints.
  double ace = 10.0 * config_.frequency_bias_mw_per_tenth_hz * dev;
  last_ace_mw_ = ace;
  double adjust = -config_.correction_gain * ace;

  double total_participation = 0.0;
  for (std::size_t i : participants_) {
    if (grid.generator(i).phase() != GeneratorPhase::kOnline) continue;
    total_participation += grid.generator(i).config().participation_factor;
  }
  if (total_participation <= 0.0) return commands;

  for (std::size_t i : participants_) {
    auto& gen = grid.generator(i);
    if (gen.phase() != GeneratorPhase::kOnline) continue;
    double share = gen.config().participation_factor / total_participation;
    double target =
        std::clamp(gen.setpoint() + adjust * share, 0.0, gen.config().capacity_mw);
    if (std::fabs(target - gen.setpoint()) < config_.min_command_delta_mw) continue;
    gen.set_setpoint(target);
    commands.push_back(AgcCommand{i, target});
  }
  return commands;
}

}  // namespace uncharted::power
