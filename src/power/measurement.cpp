#include "power/measurement.hpp"

namespace uncharted::power {

std::string physical_symbol_name(PhysicalSymbol s) {
  switch (s) {
    case PhysicalSymbol::kCurrent: return "I";
    case PhysicalSymbol::kActivePower: return "P";
    case PhysicalSymbol::kReactivePower: return "Q";
    case PhysicalSymbol::kVoltage: return "U";
    case PhysicalSymbol::kFrequency: return "Freq";
    case PhysicalSymbol::kStatus: return "Status";
    case PhysicalSymbol::kSetpoint: return "AGC-SP";
    case PhysicalSymbol::kOther: return "-";
  }
  return "-";
}

}  // namespace uncharted::power
