// Non-blocking socket reactor: the event loop under the live-ingest daemon.
//
// One thread, one readiness loop. On Linux the backend is epoll; a
// portable poll(2) backend exists as a runtime fallback (and as a second
// implementation the tests diff against). Everything the daemon does with
// a socket — accept, read, write, connect — happens through callbacks
// registered here; the unchartedlint rule `netd-raw-socket` enforces that
// no other module touches sockets directly.
//
// The reactor also owns the two non-fd event sources a daemon needs:
//   - one-shot monotonic timers (idle/read timeouts, pacing deadlines,
//     checkpoint cadence), fired in deadline order with deterministic
//     FIFO tie-break;
//   - an async-signal-safe wakeup (self-pipe) so SIGTERM/SIGINT handlers
//     can interrupt a sleeping poll without touching non-reentrant state.
//
// Determinism note: the reactor itself introduces no randomness and no
// unordered containers; fd dispatch order within one poll batch follows
// ascending fd order on both backends so single-threaded in-process tests
// interleave identically run to run.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "faultinject/sysfault.hpp"
#include "util/expected.hpp"

namespace uncharted::netd {

/// Readiness bits passed to fd callbacks.
inline constexpr std::uint32_t kEventRead = 0x1;
inline constexpr std::uint32_t kEventWrite = 0x2;
/// Error/hangup: the fd should be torn down by its owner.
inline constexpr std::uint32_t kEventError = 0x4;

enum class Backend { kEpoll, kPoll };

/// Monotonic clock used for every deadline in netd.
using MonoClock = std::chrono::steady_clock;
using MonoTime = MonoClock::time_point;

class Reactor {
 public:
  using FdCallback = std::function<void(std::uint32_t events)>;
  using TimerCallback = std::function<void()>;

  /// kEpoll on Linux, kPoll elsewhere.
  static Backend default_backend();

  /// `sys` routes the reactor's waits and wakeup-pipe reads (nullptr =
  /// the real kernel); pass a faultinject::FaultySysOps to chaos-test the
  /// loop itself.
  explicit Reactor(Backend backend = default_backend(),
                   faultinject::SysOps* sys = nullptr);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  Backend backend() const { return backend_; }

  /// Registers `fd` (must already be non-blocking) with an interest mask
  /// of kEventRead/kEventWrite bits. The callback may add/remove fds and
  /// timers freely, including removing its own fd.
  Status add_fd(int fd, std::uint32_t interest, FdCallback cb);

  /// Replaces the interest mask of a registered fd.
  Status set_interest(int fd, std::uint32_t interest);

  /// Unregisters `fd`. The caller still owns (and closes) the fd.
  void remove_fd(int fd);

  /// Number of registered fds (excluding the internal wakeup pipe).
  std::size_t fd_count() const { return fds_.size(); }

  /// Schedules `cb` to run once, `delay_s` from now (clamped at >= 0).
  /// Returns an id usable with cancel_timer.
  std::uint64_t add_timer_after(double delay_s, TimerCallback cb);
  std::uint64_t add_timer_at(MonoTime deadline, TimerCallback cb);
  void cancel_timer(std::uint64_t id);

  /// One poll iteration: waits at most `max_wait_ms` (less if a timer is
  /// due sooner), dispatches ready fds in ascending fd order, then fires
  /// due timers in deadline order. Returns true if any callback ran.
  bool run_once(int max_wait_ms);

  /// Loops run_once until stop(). `stop()` is safe from any callback.
  void run();
  void stop();
  bool stopped() const { return stopped_; }

  /// Async-signal-safe: writes one byte to the internal self-pipe, waking
  /// a sleeping run_once. The wakeup callback (if set) runs on the loop.
  void notify_from_signal();
  void set_wakeup_callback(TimerCallback cb) { wakeup_cb_ = std::move(cb); }

  /// Makes `fd` non-blocking and close-on-exec (helper for fd owners).
  static Status make_nonblocking(int fd);

 private:
  struct FdEntry {
    std::uint32_t interest = 0;
    FdCallback cb;
  };

  void fire_due_timers();
  int timeout_for(int max_wait_ms) const;

  Backend backend_;
  faultinject::SysOps& sys_;
  int epoll_fd_ = -1;
  int wake_read_ = -1;
  int wake_write_ = -1;
  bool stopped_ = false;
  std::map<int, FdEntry> fds_;
  /// (deadline, id) -> callback: fires in deadline order, FIFO on ties.
  std::map<std::pair<MonoTime, std::uint64_t>, TimerCallback> timers_;
  std::uint64_t next_timer_id_ = 1;
  TimerCallback wakeup_cb_;
};

}  // namespace uncharted::netd
