#include "netd/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace uncharted::netd {

namespace {

/// Cap on the per-connection send backlog before yielding to the reactor.
constexpr std::size_t kOutBacklogCap = 256 * 1024;
constexpr std::size_t kReadChunk = 4096;

/// Slow-loris abuse: declare this many payload bytes, deliver only a few.
constexpr std::uint32_t kLorisDeclaredBytes = 4096;
constexpr std::size_t kLorisDeliveredBytes = 16;

}  // namespace

FleetClient::FleetClient(Reactor& reactor, FleetConfig config,
                         std::vector<ReplayStream> streams)
    : reactor_(reactor),
      config_(std::move(config)),
      sys_(config_.sys != nullptr ? *config_.sys : faultinject::real_sys_ops()),
      rng_(config_.seed) {
  streams_.reserve(streams.size());
  for (auto& spec : streams) {
    StreamState st;
    st.spec = std::move(spec);
    streams_.push_back(std::move(st));
  }
}

FleetClient::~FleetClient() {
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    if (streams_[i].pace_timer_armed) {
      reactor_.cancel_timer(streams_[i].pace_timer);
      streams_[i].pace_timer_armed = false;
    }
    close_fd(i);
  }
}

void FleetClient::start() {
  started_ = true;
  epoch_ts_ = 0;
  bool have_epoch = false;
  for (auto& st : streams_) {
    if (st.spec.frames.empty()) continue;
    if (!have_epoch || st.spec.frames.front().ts < epoch_ts_) {
      epoch_ts_ = st.spec.frames.front().ts;
      have_epoch = true;
    }
  }
  wall_epoch_ = MonoClock::now();
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    StreamState& st = streams_[i];
    if (st.spec.mode == ReplayMode::kBenign && config_.churn > 0.0 &&
        st.spec.frames.size() > 1 && rng_.uniform() < config_.churn) {
      st.churn_at =
          1 + rng_.below(static_cast<std::uint64_t>(st.spec.frames.size()) - 1);
      st.churn_armed = true;
    }
    connect_stream(i);
  }
  if (config_.linger) {
    reactor_.add_timer_after(config_.linger_recheck_s, [this] { on_linger_tick(); });
  }
}

bool FleetClient::all_done() const {
  return std::all_of(streams_.begin(), streams_.end(), [](const StreamState& st) {
    return st.counted_done || st.phase == Phase::kFailed;
  });
}

bool FleetClient::all_benign_ok() const {
  return std::all_of(streams_.begin(), streams_.end(), [](const StreamState& st) {
    return st.spec.mode != ReplayMode::kBenign ||
           (st.counted_done && st.phase != Phase::kFailed);
  });
}

MonoTime FleetClient::deadline_for(Timestamp ts) const {
  const double capture_s =
      static_cast<double>(ts - epoch_ts_) / static_cast<double>(kMicrosPerSecond);
  return wall_epoch_ + std::chrono::duration_cast<MonoClock::duration>(
                           std::chrono::duration<double>(capture_s / config_.pace));
}

void FleetClient::connect_stream(std::size_t idx) {
  StreamState& st = streams_[idx];
  st.pace_timer_armed = false;
  if (st.phase == Phase::kDone && !config_.linger) return;
  st.in.clear();
  st.out.clear();
  st.out_off = 0;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    retry_later(idx, false);
    return;
  }
  (void)Reactor::make_nonblocking(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    mark_failed(idx);
    return;
  }
  stats_.connects_attempted++;
  const int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  if (rc < 0 && errno != EINPROGRESS) {
    ::close(fd);
    retry_later(idx, false);
    return;
  }
  st.fd = fd;
  st.phase = Phase::kConnecting;
  if (auto status = reactor_.add_fd(
          fd, kEventWrite, [this, idx](std::uint32_t ev) { on_event(idx, ev); });
      !status) {
    close_fd(idx);
    retry_later(idx, false);
  }
}

void FleetClient::on_event(std::size_t idx, std::uint32_t events) {
  StreamState& st = streams_[idx];
  if (st.fd < 0) return;
  if (events & kEventError) {
    if (st.spec.mode != ReplayMode::kBenign && st.loris_sent) {
      stats_.hostile_closed++;
      mark_done(idx);
    } else if (st.phase == Phase::kDone) {
      close_fd(idx);
    } else {
      retry_later(idx, st.phase != Phase::kConnecting);
    }
    return;
  }
  if (events & kEventWrite) {
    if (st.phase == Phase::kConnecting) {
      on_connected(idx);
      if (streams_[idx].fd < 0) return;
    } else {
      flush_out(idx);
      if (streams_[idx].fd < 0) return;
      if (streams_[idx].phase == Phase::kSending &&
          streams_[idx].out.size() == streams_[idx].out_off) {
        pump_send(idx);
      }
    }
  }
  if ((events & kEventRead) && streams_[idx].fd >= 0) on_readable(idx);
}

void FleetClient::on_connected(std::size_t idx) {
  StreamState& st = streams_[idx];
  int err = 0;
  socklen_t len = sizeof err;
  if (::getsockopt(st.fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
    retry_later(idx, false);
    return;
  }
  if (st.spec.mode == ReplayMode::kGarbage) {
    // Not even a hello: 64 bytes that cannot start with the magic.
    st.out.reserve(64);
    for (int i = 0; i < 64; ++i) {
      st.out.push_back(static_cast<std::uint8_t>(0x80u | (rng_.next_u64() & 0x7Fu)));
    }
    st.loris_sent = true;
    st.phase = Phase::kAwaitAck;  // nothing valid will come; wait for the boot
    (void)reactor_.set_interest(st.fd, kEventRead);
    flush_out(idx);
    return;
  }
  ByteWriter w;
  wire::encode_hello(w, wire::Hello{wire::HelloKind::kData, st.spec.id,
                                    static_cast<std::uint64_t>(st.spec.frames.size())});
  st.out.assign(w.view().begin(), w.view().end());
  st.phase = Phase::kAwaitAck;
  (void)reactor_.set_interest(st.fd, kEventRead);
  flush_out(idx);
}

void FleetClient::on_readable(std::size_t idx) {
  StreamState& st = streams_[idx];
  bool peer_closed = false;
  while (true) {
    std::uint8_t buf[kReadChunk];
    const faultinject::IoResult r =
        faultinject::retry_recv(sys_, st.fd, buf, sizeof buf);
    if (r.status == faultinject::IoStatus::kOk) {
      st.in.insert(st.in.end(), buf, buf + r.bytes);
      continue;
    }
    if (r.status == faultinject::IoStatus::kWouldBlock) break;
    // Peer closed (or reset). The server flushes its final ack and closes
    // immediately, so the ack and the EOF routinely arrive in one readable
    // event: parse what is buffered below BEFORE interpreting the close,
    // or a racing fin-ack would be discarded and retried forever.
    peer_closed = true;
    break;
  }

  if (st.phase == Phase::kAwaitAck && st.in.size() >= wire::kHelloAckSize) {
    ByteReader r(std::span<const std::uint8_t>(st.in.data(), wire::kHelloAckSize));
    auto ack = wire::decode_hello_ack(r);
    st.in.erase(st.in.begin(),
                st.in.begin() + static_cast<std::ptrdiff_t>(wire::kHelloAckSize));
    if (!ack) {
      retry_later(idx, true);
      return;
    }
    if (!handle_ack(idx, ack.value())) return;
  }
  if (streams_[idx].phase == Phase::kAwaitFinAck &&
      streams_[idx].in.size() >= wire::kFinAckSize) {
    StreamState& cur = streams_[idx];
    ByteReader r(std::span<const std::uint8_t>(cur.in.data(), wire::kFinAckSize));
    auto total = wire::decode_fin_ack(r);
    cur.in.clear();
    if (!total) {
      retry_later(idx, true);
      return;
    }
    if (!cur.counted_done) {
      cur.counted_done = true;
      stats_.finished_streams++;
    }
    mark_done(idx);
  }

  if (!peer_closed) return;
  StreamState& cur = streams_[idx];
  if (cur.fd < 0) return;  // the buffered ack already resolved this connection
  if (cur.spec.mode != ReplayMode::kBenign && cur.loris_sent) {
    stats_.hostile_closed++;
    mark_done(idx);
  } else if (cur.phase == Phase::kDone) {
    close_fd(idx);
  } else {
    retry_later(idx, true);
  }
}

bool FleetClient::handle_ack(std::size_t idx, const wire::HelloAck& ack) {
  StreamState& st = streams_[idx];
  switch (ack.status) {
    case wire::AckStatus::kBusy:
      stats_.busy_retries++;
      retry_later(idx, false);
      return false;
    case wire::AckStatus::kFinished:
      if (!st.counted_done) {
        st.counted_done = true;
        stats_.finished_streams++;
      }
      mark_done(idx);
      return false;
    case wire::AckStatus::kAccepted:
      break;
  }
  st.failing = false;
  st.backoff_s = 0.0;
  st.next_frame = ack.resume_cursor;
  if (st.spec.mode == ReplayMode::kSlowLoris) {
    // A syntactically valid record header, then silence: only the
    // server's read timeout can classify this.
    ByteWriter w;
    wire::RecordHeader rec;
    rec.ts = epoch_ts_;
    rec.original_length = kLorisDeclaredBytes;
    rec.cap_len = kLorisDeclaredBytes;
    wire::encode_record_header(w, rec);
    for (std::size_t i = 0; i < kLorisDeliveredBytes; ++i) w.u8(0x55);
    st.out.insert(st.out.end(), w.view().begin(), w.view().end());
    st.loris_sent = true;
    st.phase = Phase::kSending;  // parked: no more bytes will follow
    flush_out(idx);
    return streams_[idx].fd >= 0;
  }
  st.phase = Phase::kSending;
  pump_send(idx);
  return streams_[idx].fd >= 0;
}

void FleetClient::append_frame(StreamState& st) {
  const net::CapturedPacket& pkt = st.spec.frames[st.next_frame];
  ByteWriter w;
  wire::RecordHeader rec;
  rec.ts = pkt.ts;
  rec.original_length = pkt.original_length;
  rec.cap_len = static_cast<std::uint32_t>(pkt.data.size());
  wire::encode_record_header(w, rec);
  st.out.insert(st.out.end(), w.view().begin(), w.view().end());
  st.out.insert(st.out.end(), pkt.data.begin(), pkt.data.end());
  st.next_frame++;
  stats_.frames_sent++;
}

void FleetClient::pump_send(std::size_t idx) {
  StreamState& st = streams_[idx];
  if (st.phase != Phase::kSending || st.spec.mode == ReplayMode::kSlowLoris) return;
  const auto total = static_cast<std::uint64_t>(st.spec.frames.size());
  while (st.next_frame < total) {
    if (st.churn_armed && st.next_frame >= st.churn_at) {
      // Deliberate mid-stream disconnect; the resume cursor brings the
      // stream back to wherever the server actually got.
      st.churn_armed = false;
      stats_.reconnects++;
      close_fd(idx);
      st.phase = Phase::kIdle;
      st.pace_timer = reactor_.add_timer_after(config_.retry_initial_s,
                                               [this, idx] { connect_stream(idx); });
      st.pace_timer_armed = true;
      return;
    }
    if (st.out.size() - st.out_off >= kOutBacklogCap) break;
    if (config_.pace > 0.0) {
      const MonoTime due = deadline_for(st.spec.frames[st.next_frame].ts);
      if (MonoClock::now() < due) {
        if (!st.pace_timer_armed) {
          st.pace_timer = reactor_.add_timer_at(due, [this, idx] {
            streams_[idx].pace_timer_armed = false;
            if (streams_[idx].phase == Phase::kSending) pump_send(idx);
          });
          st.pace_timer_armed = true;
        }
        break;
      }
    }
    append_frame(st);
  }
  if (st.next_frame == total && st.out.size() - st.out_off < kOutBacklogCap) {
    ByteWriter w;
    wire::encode_fin(w, total);
    st.out.insert(st.out.end(), w.view().begin(), w.view().end());
    st.phase = Phase::kAwaitFinAck;
  }
  flush_out(idx);
}

void FleetClient::flush_out(std::size_t idx) {
  StreamState& st = streams_[idx];
  while (st.out_off < st.out.size()) {
    const faultinject::IoResult r =
        faultinject::retry_send(sys_, st.fd, st.out.data() + st.out_off,
                                st.out.size() - st.out_off, MSG_NOSIGNAL);
    if (r.status == faultinject::IoStatus::kOk) {
      st.out_off += r.bytes;
      continue;
    }
    if (r.status == faultinject::IoStatus::kWouldBlock) {
      (void)reactor_.set_interest(st.fd, kEventRead | kEventWrite);
      return;
    }
    if (st.spec.mode != ReplayMode::kBenign && st.loris_sent) {
      stats_.hostile_closed++;
      mark_done(idx);
    } else {
      retry_later(idx, true);
    }
    return;
  }
  st.out.clear();
  st.out_off = 0;
  (void)reactor_.set_interest(st.fd, kEventRead);
}

void FleetClient::close_fd(std::size_t idx) {
  StreamState& st = streams_[idx];
  if (st.fd < 0) return;
  reactor_.remove_fd(st.fd);
  ::close(st.fd);
  st.fd = -1;
}

void FleetClient::retry_later(std::size_t idx, bool count_reconnect) {
  StreamState& st = streams_[idx];
  close_fd(idx);
  if (count_reconnect) stats_.reconnects++;
  const MonoTime now = MonoClock::now();
  if (!st.failing) {
    st.failing = true;
    st.first_fail = now;
  } else if (std::chrono::duration<double>(now - st.first_fail).count() >
             config_.retry_for_s) {
    mark_failed(idx);
    return;
  }
  st.backoff_s = st.backoff_s <= 0.0
                     ? config_.retry_initial_s
                     : std::min(config_.retry_max_s, st.backoff_s * 2.0);
  // Seeded jitter: spreads a thundering herd of retries without breaking
  // run-to-run reproducibility under a fixed seed.
  const double delay = st.backoff_s * (0.75 + 0.5 * rng_.uniform());
  st.phase = Phase::kIdle;
  if (st.pace_timer_armed) reactor_.cancel_timer(st.pace_timer);
  st.pace_timer = reactor_.add_timer_after(delay, [this, idx] { connect_stream(idx); });
  st.pace_timer_armed = true;
}

void FleetClient::mark_done(std::size_t idx) {
  StreamState& st = streams_[idx];
  if (st.pace_timer_armed) {
    reactor_.cancel_timer(st.pace_timer);
    st.pace_timer_armed = false;
  }
  close_fd(idx);
  st.phase = Phase::kDone;
  st.failing = false;
  if (st.spec.mode != ReplayMode::kBenign && !st.counted_done) st.counted_done = true;
}

void FleetClient::mark_failed(std::size_t idx) {
  StreamState& st = streams_[idx];
  if (st.pace_timer_armed) {
    reactor_.cancel_timer(st.pace_timer);
    st.pace_timer_armed = false;
  }
  close_fd(idx);
  if (st.phase != Phase::kFailed) stats_.failed_streams++;
  st.phase = Phase::kFailed;
}

void FleetClient::on_linger_tick() {
  if (!config_.linger) return;
  stats_.linger_rechecks++;
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    StreamState& st = streams_[i];
    if (st.spec.mode != ReplayMode::kBenign) continue;
    if (st.phase == Phase::kDone && st.fd < 0 && !st.pace_timer_armed) {
      connect_stream(i);
    }
  }
  reactor_.add_timer_after(config_.linger_recheck_s, [this] { on_linger_tick(); });
}

// ---------------------------------------------------------------------------
// Blocking report / health queries
// ---------------------------------------------------------------------------

namespace {

Result<std::string> fetch_query_json(wire::HelloKind kind, const std::string& host,
                                     std::uint16_t port, double timeout_s,
                                     faultinject::SysOps* sys) {
  faultinject::SysOps& ops =
      sys != nullptr ? *sys : faultinject::real_sys_ops();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Error{"netd-socket", std::strerror(errno)};
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_s);
  tv.tv_usec = static_cast<suseconds_t>((timeout_s - static_cast<double>(tv.tv_sec)) *
                                        1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Error{"netd-addr", "bad host " + host};
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const Error err{"netd-connect", std::string("connect: ") + std::strerror(errno)};
    ::close(fd);
    return err;
  }
  ByteWriter w;
  wire::encode_hello(w, wire::Hello{kind, 0, 0});
  std::size_t off = 0;
  while (off < w.view().size()) {
    const faultinject::IoResult r = faultinject::retry_send(
        ops, fd, w.view().data() + off, w.view().size() - off, MSG_NOSIGNAL);
    // Blocking socket: kWouldBlock here means SO_SNDTIMEO expired.
    if (r.status != faultinject::IoStatus::kOk) {
      ::close(fd);
      return Error{"netd-send", "query hello send failed"};
    }
    off += r.bytes;
  }
  std::vector<std::uint8_t> in;
  auto read_until = [&](std::size_t want) -> bool {
    while (in.size() < want) {
      std::uint8_t buf[4096];
      const faultinject::IoResult r =
          faultinject::retry_recv(ops, fd, buf, sizeof buf);
      if (r.status != faultinject::IoStatus::kOk) return false;
      in.insert(in.end(), buf, buf + r.bytes);
    }
    return true;
  };
  if (!read_until(wire::kQueryReplyHeaderSize)) {
    ::close(fd);
    return Error{"netd-recv", "query reply header truncated"};
  }
  ByteReader hr(std::span<const std::uint8_t>(in.data(), wire::kQueryReplyHeaderSize));
  auto status = hr.u8();
  auto json_len = hr.u32le();
  if (!json_len) {
    ::close(fd);
    return Error{"netd-recv", "query reply header unreadable"};
  }
  if (status.value() != static_cast<std::uint8_t>(wire::AckStatus::kAccepted)) {
    ::close(fd);
    return Error{"netd-busy", "daemon has no report yet"};
  }
  if (!read_until(wire::kQueryReplyHeaderSize + json_len.value())) {
    ::close(fd);
    return Error{"netd-recv", "query reply body truncated"};
  }
  ::close(fd);
  return std::string(
      reinterpret_cast<const char*>(in.data()) + wire::kQueryReplyHeaderSize,
      json_len.value());
}

}  // namespace

Result<std::string> fetch_report(const std::string& host, std::uint16_t port,
                                 double timeout_s, faultinject::SysOps* sys) {
  return fetch_query_json(wire::HelloKind::kQuery, host, port, timeout_s, sys);
}

Result<std::string> fetch_health(const std::string& host, std::uint16_t port,
                                 double timeout_s, faultinject::SysOps* sys) {
  return fetch_query_json(wire::HelloKind::kHealth, host, port, timeout_s, sys);
}

}  // namespace uncharted::netd
