#include "netd/wire.hpp"

namespace uncharted::netd::wire {

void encode_hello(ByteWriter& w, const Hello& h) {
  w.u32le(kMagic);
  w.u16le(kVersion);
  w.u8(static_cast<std::uint8_t>(h.kind));
  w.u64le(h.stream_id);
  w.u64le(h.total_frames);
}

void encode_hello_ack(ByteWriter& w, const HelloAck& ack) {
  w.u32le(kMagic);
  w.u8(static_cast<std::uint8_t>(ack.status));
  w.u64le(ack.resume_cursor);
}

void encode_record_header(ByteWriter& w, const RecordHeader& r) {
  w.u8(static_cast<std::uint8_t>(Marker::kRecord));
  w.u64le(r.ts);
  w.u32le(r.original_length);
  w.u32le(r.cap_len);
}

void encode_fin(ByteWriter& w, std::uint64_t total_frames) {
  w.u8(static_cast<std::uint8_t>(Marker::kFin));
  w.u64le(total_frames);
}

void encode_fin_ack(ByteWriter& w, std::uint64_t total_frames) {
  w.u8(static_cast<std::uint8_t>(Marker::kFinAck));
  w.u64le(total_frames);
}

void encode_query_reply_header(ByteWriter& w, AckStatus status,
                               std::uint32_t json_len) {
  w.u8(static_cast<std::uint8_t>(status));
  w.u32le(json_len);
}

Result<Hello> decode_hello(ByteReader& r) {
  auto magic = r.u32le();
  if (!magic || magic.value() != kMagic) {
    return Error{"wire-magic", "hello magic mismatch"};
  }
  auto version = r.u16le();
  if (!version || version.value() != kVersion) {
    return Error{"wire-version", "unsupported tapstream version"};
  }
  auto kind = r.u8();
  auto stream_id = r.u64le();
  auto total = r.u64le();
  if (!total) return Error{"wire-truncated", "hello truncated"};
  if (kind.value() < static_cast<std::uint8_t>(HelloKind::kData) ||
      kind.value() > static_cast<std::uint8_t>(HelloKind::kHealth)) {
    return Error{"wire-kind", "unknown hello kind"};
  }
  Hello h;
  h.kind = static_cast<HelloKind>(kind.value());
  h.stream_id = stream_id.value();
  h.total_frames = total.value();
  return h;
}

Result<HelloAck> decode_hello_ack(ByteReader& r) {
  auto magic = r.u32le();
  if (!magic || magic.value() != kMagic) {
    return Error{"wire-magic", "ack magic mismatch"};
  }
  auto status = r.u8();
  auto cursor = r.u64le();
  if (!cursor) return Error{"wire-truncated", "ack truncated"};
  if (status.value() > static_cast<std::uint8_t>(AckStatus::kFinished)) {
    return Error{"wire-status", "unknown ack status"};
  }
  HelloAck ack;
  ack.status = static_cast<AckStatus>(status.value());
  ack.resume_cursor = cursor.value();
  return ack;
}

Result<RecordHeader> decode_record_header(ByteReader& r) {
  auto marker = r.u8();
  if (!marker || marker.value() != static_cast<std::uint8_t>(Marker::kRecord)) {
    return Error{"wire-marker", "expected record marker"};
  }
  auto ts = r.u64le();
  auto original = r.u32le();
  auto cap_len = r.u32le();
  if (!cap_len) return Error{"wire-truncated", "record header truncated"};
  if (cap_len.value() > kMaxFrameBytes) {
    return Error{"wire-oversized",
                 "record declares " + std::to_string(cap_len.value()) +
                     " bytes (cap " + std::to_string(kMaxFrameBytes) + ")"};
  }
  RecordHeader rec;
  rec.ts = ts.value();
  rec.original_length = original.value();
  rec.cap_len = cap_len.value();
  return rec;
}

namespace {

Result<std::uint64_t> decode_marker_u64(ByteReader& r, Marker expect,
                                        const char* what) {
  auto marker = r.u8();
  if (!marker || marker.value() != static_cast<std::uint8_t>(expect)) {
    return Error{"wire-marker", std::string("expected ") + what + " marker"};
  }
  auto total = r.u64le();
  if (!total) return Error{"wire-truncated", std::string(what) + " truncated"};
  return total.value();
}

}  // namespace

Result<std::uint64_t> decode_fin(ByteReader& r) {
  return decode_marker_u64(r, Marker::kFin, "fin");
}

Result<std::uint64_t> decode_fin_ack(ByteReader& r) {
  return decode_marker_u64(r, Marker::kFinAck, "fin-ack");
}

}  // namespace uncharted::netd::wire
