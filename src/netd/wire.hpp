// "Tapstream" wire protocol: captured frames over a live TCP connection.
//
// A fleet client owns one stream of captured Ethernet frames (one
// endpoint-pair's slice of a capture) and replays it to the daemon over
// one TCP connection per stream. The protocol is deliberately minimal and
// little-endian throughout (decoded with the poisoning ByteReader, like
// every other wire format in this tree):
//
//   client -> server   Hello   { magic, version, kind, stream_id, total }
//   server -> client   HelloAck{ magic, status, resume_cursor }
//   client -> server   Record  { marker, ts, original_length, cap_len, bytes }*
//   client -> server   Fin     { marker, total_frames }
//   server -> client   FinAck  { marker, total_frames }
//
// The ack's `resume_cursor` is the number of frames the server has already
// *released to the analyzer* for this stream id; the client skips that
// many and resends the rest. That cursor-based resume is what makes both
// reconnect churn and daemon crash-restore lossless: any frame the server
// buffered but had not released when a connection (or the daemon) died is
// simply sent again.
//
// A Hello with kind=kQuery instead asks for the current AnalysisReport,
// and kind=kHealth for the supervision registry's health JSON (per-
// subsystem state, recovery counts, and the recovery ledger):
//   server -> client   QueryReply { status, json_len, json_bytes }, close.
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.hpp"
#include "util/expected.hpp"
#include "util/timebase.hpp"

namespace uncharted::netd::wire {

inline constexpr std::uint32_t kMagic = 0x554E5450;  // "UNTP"
inline constexpr std::uint16_t kVersion = 1;

/// Frames larger than this are protocol abuse, not Ethernet.
inline constexpr std::uint32_t kMaxFrameBytes = 128 * 1024;

enum class HelloKind : std::uint8_t {
  kData = 1,    ///< this connection replays one capture stream
  kQuery = 2,   ///< this connection fetches the current report JSON
  kHealth = 3,  ///< this connection fetches the supervision health JSON
};

enum class AckStatus : std::uint8_t {
  kAccepted = 0,  ///< stream registered; send frames from resume_cursor
  kBusy = 1,      ///< admission control refused; retry with backoff
  kFinished = 2,  ///< stream already fully ingested; nothing to send
};

enum class Marker : std::uint8_t {
  kRecord = 1,  ///< one captured frame follows
  kFin = 2,     ///< stream complete at `total_frames`
  kFinAck = 3,  ///< server confirms the stream is fully released
};

inline constexpr std::size_t kHelloSize = 4 + 2 + 1 + 8 + 8;
inline constexpr std::size_t kHelloAckSize = 4 + 1 + 8;
inline constexpr std::size_t kRecordHeaderSize = 1 + 8 + 4 + 4;
inline constexpr std::size_t kFinSize = 1 + 8;
inline constexpr std::size_t kFinAckSize = 1 + 8;
inline constexpr std::size_t kQueryReplyHeaderSize = 1 + 4;

struct Hello {
  HelloKind kind = HelloKind::kData;
  std::uint64_t stream_id = 0;
  std::uint64_t total_frames = 0;  ///< 0 when unknown up front
};

struct HelloAck {
  AckStatus status = AckStatus::kAccepted;
  std::uint64_t resume_cursor = 0;
};

struct RecordHeader {
  Timestamp ts = 0;
  std::uint32_t original_length = 0;
  std::uint32_t cap_len = 0;  ///< payload bytes that follow
};

void encode_hello(ByteWriter& w, const Hello& h);
void encode_hello_ack(ByteWriter& w, const HelloAck& ack);
void encode_record_header(ByteWriter& w, const RecordHeader& r);
void encode_fin(ByteWriter& w, std::uint64_t total_frames);
void encode_fin_ack(ByteWriter& w, std::uint64_t total_frames);
void encode_query_reply_header(ByteWriter& w, AckStatus status,
                               std::uint32_t json_len);

/// Each decode consumes exactly its message's bytes from `r` on success.
/// A failed decode poisons the reader; callers check buffered length
/// against the k*Size constants first, so failure means malformed bytes
/// (wrong magic/version/marker), never a short buffer.
Result<Hello> decode_hello(ByteReader& r);
Result<HelloAck> decode_hello_ack(ByteReader& r);
/// Validates cap_len <= kMaxFrameBytes.
Result<RecordHeader> decode_record_header(ByteReader& r);
Result<std::uint64_t> decode_fin(ByteReader& r);
Result<std::uint64_t> decode_fin_ack(ByteReader& r);

}  // namespace uncharted::netd::wire
