// FleetClient: a fleet of tapstream replay connections over one Reactor.
//
// Each ReplayStream owns one slice of a capture (one endpoint-pair's
// frames, time-sorted) and replays it to an IngestServer over its own TCP
// connection: connect, Hello, skip the acked resume cursor, send records
// (paced against capture timestamps when pace > 0), Fin, wait for FinAck.
//
// The client is deliberately unkillable in the ways the daemon must
// tolerate being killed: busy acks, evictions, resets and refused
// connects all funnel into seeded-backoff reconnects that resume from the
// server's cursor, so a benign stream completes losslessly through
// admission control, shedding, and daemon crash-restore. `churn`
// additionally injects deliberate mid-stream disconnects, and the two
// hostile modes impersonate the attackers the eviction ladder must catch:
//
//   kGarbage     sends non-protocol bytes instead of a Hello
//   kSlowLoris   completes the handshake, then leaves a record forever
//                partial (the transport twin of kSlowlorisDribble)
//
// With `linger` set, streams that already got their FinAck periodically
// reconnect and re-offer the stream: a daemon restored from a checkpoint
// older than the FinAck answers with a rewound cursor and receives the
// tail again. The soak harness runs lingering fleets across daemon kills
// and stops them once the final report is on disk.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "faultinject/sysfault.hpp"
#include "net/pcap.hpp"
#include "netd/reactor.hpp"
#include "netd/wire.hpp"
#include "util/expected.hpp"
#include "util/rng.hpp"

namespace uncharted::netd {

enum class ReplayMode : std::uint8_t {
  kBenign = 0,
  kGarbage = 1,
  kSlowLoris = 2,
};

struct ReplayStream {
  std::uint64_t id = 0;
  ReplayMode mode = ReplayMode::kBenign;
  std::vector<net::CapturedPacket> frames;
};

struct FleetConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Replay pacing: capture time divided by this factor maps to wall time
  /// (1.0 = real time, 10.0 = 10x faster). <= 0 sends at full speed.
  double pace = 0.0;
  /// Probability per benign stream of one deliberate mid-stream
  /// disconnect+resume (seeded; exercises reconnect churn).
  double churn = 0.0;
  std::uint64_t seed = 0x5ca1ab1eULL;
  /// Reconnect backoff after a failed/refused/evicted connection.
  double retry_initial_s = 0.05;
  double retry_max_s = 2.0;
  /// Give up on a stream after this long without progress.
  double retry_for_s = 60.0;
  /// Keep re-offering finished streams (see header comment).
  bool linger = false;
  double linger_recheck_s = 1.0;
  /// Syscall surface for stream I/O (nullptr = the real kernel).
  faultinject::SysOps* sys = nullptr;
};

struct FleetStats {
  std::uint64_t connects_attempted = 0;
  std::uint64_t busy_retries = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t finished_streams = 0;
  std::uint64_t failed_streams = 0;
  std::uint64_t hostile_closed = 0;  ///< hostile-mode conns the server killed
  std::uint64_t linger_rechecks = 0;
};

class FleetClient {
 public:
  FleetClient(Reactor& reactor, FleetConfig config,
              std::vector<ReplayStream> streams);
  ~FleetClient();

  FleetClient(const FleetClient&) = delete;
  FleetClient& operator=(const FleetClient&) = delete;

  /// Kicks off every stream's connection. Drive the reactor afterwards.
  void start();

  /// Every stream has finished (FinAck / server-closed hostile) or given
  /// up. Lingering rechecks do not un-finish a stream.
  bool all_done() const;
  /// All benign streams finished and none failed.
  bool all_benign_ok() const;

  const FleetStats& stats() const { return stats_; }

 private:
  enum class Phase : std::uint8_t {
    kIdle,        ///< waiting for a retry/linger timer
    kConnecting,  ///< connect() in flight
    kAwaitAck,    ///< hello sent
    kSending,
    kAwaitFinAck,
    kDone,
    kFailed,
  };

  struct StreamState {
    ReplayStream spec;
    Phase phase = Phase::kIdle;
    int fd = -1;
    std::uint64_t next_frame = 0;
    std::vector<std::uint8_t> out;
    std::size_t out_off = 0;
    std::vector<std::uint8_t> in;
    double backoff_s = 0.0;
    MonoTime first_fail{};
    bool failing = false;
    std::uint64_t churn_at = 0;
    bool churn_armed = false;
    std::uint64_t pace_timer = 0;
    bool pace_timer_armed = false;
    bool counted_done = false;
    bool loris_sent = false;
  };

  void connect_stream(std::size_t idx);
  void on_event(std::size_t idx, std::uint32_t events);
  void on_connected(std::size_t idx);
  void on_readable(std::size_t idx);
  bool handle_ack(std::size_t idx, const wire::HelloAck& ack);
  /// Appends as many due records as allowed to the out buffer; arms the
  /// pace timer for the next one when pacing.
  void pump_send(std::size_t idx);
  void append_frame(StreamState& st);
  void flush_out(std::size_t idx);
  void close_fd(std::size_t idx);
  /// Connection lost / refused / busy: backoff and retry, or give up.
  void retry_later(std::size_t idx, bool count_reconnect);
  void mark_done(std::size_t idx);
  void mark_failed(std::size_t idx);
  void on_linger_tick();
  MonoTime deadline_for(Timestamp ts) const;

  Reactor& reactor_;
  FleetConfig config_;
  faultinject::SysOps& sys_;
  std::vector<StreamState> streams_;
  Rng rng_;
  Timestamp epoch_ts_ = 0;  ///< min frame ts across the fleet
  MonoTime wall_epoch_{};
  bool started_ = false;
  FleetStats stats_;
};

/// Fetches the daemon's current report JSON over a blocking query
/// connection (Hello kind=kQuery). Used by `iec104_fleet --query` and the
/// tests; independent of any FleetClient.
Result<std::string> fetch_report(const std::string& host, std::uint16_t port,
                                 double timeout_s = 10.0,
                                 faultinject::SysOps* sys = nullptr);

/// Same transport, Hello kind=kHealth: fetches the supervision registry's
/// health JSON (per-subsystem state, recovery counts, recovery ledger).
/// Used by `iec104_fleet --health` and the stall post-mortem artifacts.
Result<std::string> fetch_health(const std::string& host, std::uint16_t port,
                                 double timeout_s = 10.0,
                                 faultinject::SysOps* sys = nullptr);

}  // namespace uncharted::netd
