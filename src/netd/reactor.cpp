#include "netd/reactor.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <vector>

#if defined(__linux__)
#include <sys/epoll.h>
#define UNCHARTED_NETD_HAVE_EPOLL 1
#else
#define UNCHARTED_NETD_HAVE_EPOLL 0
#endif

namespace uncharted::netd {

namespace {

Status errno_error(const char* code, const char* what) {
  return Error{code, std::string(what) + ": " + std::strerror(errno)};
}

#if UNCHARTED_NETD_HAVE_EPOLL
std::uint32_t to_epoll(std::uint32_t interest) {
  std::uint32_t ev = 0;
  if (interest & kEventRead) ev |= EPOLLIN;
  if (interest & kEventWrite) ev |= EPOLLOUT;
  return ev;
}

std::uint32_t from_epoll(std::uint32_t ev) {
  std::uint32_t out = 0;
  if (ev & (EPOLLIN | EPOLLPRI)) out |= kEventRead;
  if (ev & EPOLLOUT) out |= kEventWrite;
  if (ev & (EPOLLERR | EPOLLHUP)) out |= kEventError;
  return out;
}
#endif

short to_poll(std::uint32_t interest) {
  short ev = 0;
  if (interest & kEventRead) ev |= POLLIN;
  if (interest & kEventWrite) ev |= POLLOUT;
  return ev;
}

std::uint32_t from_poll(short ev) {
  std::uint32_t out = 0;
  if (ev & (POLLIN | POLLPRI)) out |= kEventRead;
  if (ev & POLLOUT) out |= kEventWrite;
  if (ev & (POLLERR | POLLHUP | POLLNVAL)) out |= kEventError;
  return out;
}

}  // namespace

Backend Reactor::default_backend() {
#if UNCHARTED_NETD_HAVE_EPOLL
  return Backend::kEpoll;
#else
  return Backend::kPoll;
#endif
}

Status Reactor::make_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return errno_error("netd-fcntl", "F_GETFL");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return errno_error("netd-fcntl", "F_SETFL O_NONBLOCK");
  }
  int fdflags = ::fcntl(fd, F_GETFD, 0);
  if (fdflags >= 0) ::fcntl(fd, F_SETFD, fdflags | FD_CLOEXEC);
  return Status::Ok();
}

Reactor::Reactor(Backend backend, faultinject::SysOps* sys)
    : backend_(backend),
      sys_(sys != nullptr ? *sys : faultinject::real_sys_ops()) {
#if UNCHARTED_NETD_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) backend_ = Backend::kPoll;  // degrade, never fail
  }
#else
  backend_ = Backend::kPoll;
#endif
  int pipefd[2] = {-1, -1};
  if (::pipe(pipefd) == 0) {
    wake_read_ = pipefd[0];
    wake_write_ = pipefd[1];
    (void)make_nonblocking(wake_read_);
    (void)make_nonblocking(wake_write_);
#if UNCHARTED_NETD_HAVE_EPOLL
    if (backend_ == Backend::kEpoll) {
      struct epoll_event ev {};
      ev.events = EPOLLIN;
      ev.data.fd = wake_read_;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_read_, &ev);
    }
#endif
  }
}

Reactor::~Reactor() {
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
#if UNCHARTED_NETD_HAVE_EPOLL
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
#endif
}

Status Reactor::add_fd(int fd, std::uint32_t interest, FdCallback cb) {
  if (fd < 0) return Error{"netd-badfd", "negative fd"};
  if (fds_.count(fd) > 0) {
    return Error{"netd-dupfd", "fd " + std::to_string(fd) + " already registered"};
  }
#if UNCHARTED_NETD_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    struct epoll_event ev {};
    ev.events = to_epoll(interest);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      return errno_error("netd-epoll-add", "EPOLL_CTL_ADD");
    }
  }
#endif
  fds_[fd] = FdEntry{interest, std::move(cb)};
  return Status::Ok();
}

Status Reactor::set_interest(int fd, std::uint32_t interest) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return Error{"netd-nofd", "fd " + std::to_string(fd) + " not registered"};
  }
  if (it->second.interest == interest) return Status::Ok();
#if UNCHARTED_NETD_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    struct epoll_event ev {};
    ev.events = to_epoll(interest);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
      return errno_error("netd-epoll-mod", "EPOLL_CTL_MOD");
    }
  }
#endif
  it->second.interest = interest;
  return Status::Ok();
}

void Reactor::remove_fd(int fd) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) return;
#if UNCHARTED_NETD_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
#endif
  fds_.erase(it);
}

std::uint64_t Reactor::add_timer_after(double delay_s, TimerCallback cb) {
  if (delay_s < 0.0) delay_s = 0.0;
  const auto delay = std::chrono::duration_cast<MonoClock::duration>(
      std::chrono::duration<double>(delay_s));
  return add_timer_at(MonoClock::now() + delay, std::move(cb));
}

std::uint64_t Reactor::add_timer_at(MonoTime deadline, TimerCallback cb) {
  const std::uint64_t id = next_timer_id_++;
  timers_.emplace(std::make_pair(deadline, id), std::move(cb));
  return id;
}

void Reactor::cancel_timer(std::uint64_t id) {
  for (auto it = timers_.begin(); it != timers_.end(); ++it) {
    if (it->first.second == id) {
      timers_.erase(it);
      return;
    }
  }
}

int Reactor::timeout_for(int max_wait_ms) const {
  if (max_wait_ms < 0) max_wait_ms = 0;
  if (timers_.empty()) return max_wait_ms;
  const MonoTime next = timers_.begin()->first.first;
  const MonoTime now = MonoClock::now();
  if (next <= now) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(next - now).count() + 1;
  return static_cast<int>(std::min<long long>(ms, max_wait_ms));
}

void Reactor::fire_due_timers() {
  const MonoTime now = MonoClock::now();
  // Pop one at a time: a firing timer may add or cancel other timers.
  while (!timers_.empty() && timers_.begin()->first.first <= now) {
    TimerCallback cb = std::move(timers_.begin()->second);
    timers_.erase(timers_.begin());
    cb();
  }
}

bool Reactor::run_once(int max_wait_ms) {
  const int timeout_ms = timeout_for(max_wait_ms);
  // Ready set snapshot: (fd, events) pairs in ascending fd order, so both
  // backends dispatch identically and callbacks may mutate the registry.
  std::vector<std::pair<int, std::uint32_t>> ready;

#if UNCHARTED_NETD_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    std::vector<struct epoll_event> events(std::max<std::size_t>(fds_.size() + 1, 64));
    int n = sys_.epoll_wait(epoll_fd_, events.data(),
                            static_cast<int>(events.size()), timeout_ms);
    for (int i = 0; i < n; ++i) {
      const int fd = events[static_cast<std::size_t>(i)].data.fd;
      ready.emplace_back(fd, from_epoll(events[static_cast<std::size_t>(i)].events));
    }
    std::sort(ready.begin(), ready.end());
  }
#endif
  if (backend_ == Backend::kPoll) {
    std::vector<struct pollfd> pfds;
    pfds.reserve(fds_.size() + 1);
    if (wake_read_ >= 0) pfds.push_back(pollfd{wake_read_, POLLIN, 0});
    for (const auto& [fd, entry] : fds_) {
      pfds.push_back(pollfd{fd, to_poll(entry.interest), 0});
    }
    int n = sys_.poll_wait(pfds.data(), static_cast<nfds_t>(pfds.size()),
                           timeout_ms);
    if (n > 0) {
      for (const auto& p : pfds) {
        if (p.revents != 0) ready.emplace_back(p.fd, from_poll(p.revents));
      }
      std::sort(ready.begin(), ready.end());
    }
  }

  bool ran = false;
  for (const auto& [fd, events] : ready) {
    if (fd == wake_read_) {
      char buf[64];
      while (faultinject::retry_read(sys_, wake_read_, buf, sizeof buf).status ==
             faultinject::IoStatus::kOk) {
      }
      if (wakeup_cb_) wakeup_cb_();
      ran = true;
      continue;
    }
    auto it = fds_.find(fd);
    if (it == fds_.end()) continue;  // removed by an earlier callback
    // Only deliver events the owner asked for (plus errors); copy the
    // callback out so the owner may remove_fd() from inside it.
    const std::uint32_t masked =
        events & (it->second.interest | kEventError);
    if (masked == 0) continue;
    FdCallback cb = it->second.cb;
    cb(masked);
    ran = true;
  }
  fire_due_timers();
  return ran;
}

void Reactor::run() {
  stopped_ = false;
  while (!stopped_) run_once(500);
}

void Reactor::stop() {
  stopped_ = true;
  notify_from_signal();
}

void Reactor::notify_from_signal() {
  if (wake_write_ < 0) return;
  const char byte = 1;
  // Async-signal-safe: a single write(2); EAGAIN just means a wakeup is
  // already pending, which is equally good. Deliberately NOT routed
  // through SysOps: a virtual dispatch into FaultySysOps (which mutates
  // its RNG and fault ledger) is not reentrant from a signal handler.
  [[maybe_unused]] ssize_t rc =
      ::write(wake_write_, &byte, 1);  // UNCHARTED-LINT-ALLOW(netd-raw-socket): async-signal-safe self-pipe wakeup must bypass the (stateful, non-reentrant) SysOps shim

}

}  // namespace uncharted::netd
