// IngestServer: the live front door of the always-on analyzer.
//
// Accepts tapstream connections (netd/wire.hpp) from thousands of fleet
// clients, merges their per-stream frame sequences into ONE deterministic
// global order, and releases frames to a sink (the daemon's
// StreamingAnalyzer) — with the robustness machinery a long-running
// listener needs layered on top:
//
//   Admission control   hard connection cap (excess greeted with a kBusy
//                       ack and closed) and a token-bucket accept-rate
//                       limit (excess left in the kernel backlog).
//   Hostile eviction    garbage hellos, oversized records, unknown
//                       markers, per-stream timestamp regressions and
//                       slow-loris dribble (a partial message older than
//                       the read timeout) evict the connection with an
//                       iec104::Severity verdict — the same ladder the
//                       conformance machine uses for in-protocol abuse.
//   Idle eviction       a silent connection past the idle timeout is
//                       closed (kInfo; the client resumes via its cursor).
//   Backpressure        per-connection read pausing once a stream buffers
//                       too far ahead of the release watermark, a global
//                       buffered-bytes budget, overload shedding (drop the
//                       fattest stream's buffer and close it — lossless,
//                       because resume re-sends), and, as a last resort,
//                       forced release that degrades determinism to
//                       sampling instead of OOMing.
//
// Deterministic watermark merge. Every queued frame carries the key
// (capture_ts, stream_id, seq). Each registered unfinished stream holds a
// lower bound on every key it may still enqueue; frames are released only
// while the smallest queued key is below the smallest bound. With
// `expect_streams` set, nothing is released until all expected streams
// have said hello, making the released sequence the unique sorted order
// of the fleet's frames — independent of socket interleaving, reconnect
// churn, and daemon crash/restore. That is the property the kill/restore
// soak's byte-identical-report acceptance test rests on.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "faultinject/sysfault.hpp"
#include "iec104/conformance.hpp"
#include "net/pcap.hpp"
#include "netd/reactor.hpp"
#include "netd/wire.hpp"
#include "util/bytes.hpp"
#include "util/expected.hpp"

namespace uncharted::netd {

struct ServerConfig {
  std::string bind_addr = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; see IngestServer::port()
  /// Optional AF_UNIX listener serving report queries locally.
  std::string query_sock_path;

  /// Admission: hard cap on simultaneous connections; extras get a kBusy
  /// ack and are closed.
  std::size_t max_connections = 12000;
  /// Token-bucket accept-rate limit (accepts/second, 0 = unlimited).
  double accept_rate = 0.0;
  double accept_burst = 64.0;

  /// No complete Hello within this window after accept: evicted (kWarn).
  double handshake_timeout_s = 10.0;
  /// A partial message outstanding longer than this is a slow-loris
  /// dribble: evicted (kHostile), no matter how slowly bytes trickle in.
  double read_timeout_s = 30.0;
  /// A connection with no traffic at all for this long is closed (kInfo);
  /// the client transparently resumes from its cursor.
  double idle_timeout_s = 120.0;

  /// Global budget for buffered (received but unreleased) frame bytes.
  std::size_t max_buffered_bytes = 64u << 20;
  /// Reads from one stream pause once it buffers this far ahead.
  std::size_t per_conn_buffered_bytes = 1u << 20;
  /// Bytes a connection may accumulate without one complete message.
  std::size_t max_message_bytes = wire::kMaxFrameBytes + 64;
  /// When the global budget is exhausted even after shedding, release
  /// frames past the watermark (sampling: deterministic merge is lost but
  /// memory stays bounded). Disable where byte-identity is asserted.
  bool allow_forced_release = true;

  /// Release gate: hold all frames until this many distinct stream ids
  /// have registered (0 = release against currently known streams only).
  std::uint64_t expect_streams = 0;

  /// Housekeeping cadence (timeout scans, token refill).
  double tick_s = 0.25;

  /// Syscall surface for all connection I/O (nullptr = the real kernel).
  /// The chaos soak passes a faultinject::FaultySysOps here.
  faultinject::SysOps* sys = nullptr;
};

/// Why a connection was closed by the server, with a severity verdict on
/// the conformance ladder: kInfo = operational (shed/finished), kWarn =
/// suspicious (idle, no hello), kHostile = protocol abuse.
struct EvictionRecord {
  std::uint64_t stream_id = 0;  ///< 0 when the peer never identified itself
  std::string remote;
  iec104::Severity severity = iec104::Severity::kInfo;
  std::string reason;
};

struct ServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_busy = 0;
  std::uint64_t rate_deferred_polls = 0;  ///< accept rounds stopped by the bucket
  /// Accept failed with EMFILE/ENFILE: the listener was muted until the
  /// next tick instead of spinning on level-triggered readiness.
  std::uint64_t accept_fd_exhausted = 0;
  std::uint64_t hellos = 0;
  std::uint64_t resumed_hellos = 0;  ///< hellos answered with a nonzero cursor
  std::uint64_t frames_received = 0;
  std::uint64_t frames_released = 0;
  std::uint64_t duplicate_frames_dropped = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t evicted_hostile = 0;
  std::uint64_t evicted_warn = 0;
  std::uint64_t shed_connections = 0;
  std::uint64_t forced_releases = 0;
  std::uint64_t paused_reads = 0;
  std::uint64_t queries_served = 0;
  std::uint64_t streams_finished = 0;
  /// Housekeeping ticks completed — the reactor-liveness heartbeat the
  /// health watchdog consumes.
  std::uint64_t ticks = 0;
  std::size_t connections = 0;       ///< current
  std::size_t peak_connections = 0;
  std::size_t queued_bytes = 0;      ///< current
  std::size_t peak_queued_bytes = 0;
};

class IngestServer {
 public:
  /// Frames released in deterministic global order land here.
  using FrameSink =
      std::function<void(std::uint64_t stream_id, const net::CapturedPacket&)>;
  /// Produces the current report JSON for a query connection. Also used
  /// for kHealth hellos via set_health_handler.
  using QueryHandler = std::function<std::string()>;

  IngestServer(Reactor& reactor, ServerConfig config, FrameSink sink);
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  /// Opens the TCP listener (and the unix query listener if configured).
  Status start();
  /// The actually bound TCP port (resolves port=0).
  std::uint16_t port() const { return bound_port_; }

  void set_query_handler(QueryHandler h) { query_handler_ = std::move(h); }
  /// Serves `health` hellos (wire::HelloKind::kHealth) with supervision
  /// JSON. Unset, a health query is answered kBusy like a report query.
  void set_health_handler(QueryHandler h) { health_handler_ = std::move(h); }

  /// Graceful-drain support: refuse new connections but keep serving the
  /// established ones.
  void stop_accepting();
  /// Closes every connection and both listeners. Buffered-but-unreleased
  /// frames are dropped (clients re-send them on resume).
  void close_all();

  /// Raises/clears external memory pressure (from ResourceBudgets): level
  /// 1 halves the buffered-bytes budget, level 2 quarters it, triggering
  /// earlier shedding.
  void set_pressure_level(int level);

  std::uint64_t streams_registered() const { return streams_.size(); }
  std::uint64_t streams_finished() const { return stats_.streams_finished; }
  /// True when expect_streams > 0 and every expected stream has finished.
  bool all_expected_finished() const;

  /// True once the watermark release gate is open (every expected stream
  /// has said hello, or no expectation was configured). While closed,
  /// queued frames waiting on absent peers are normal, not a merge stall.
  bool release_gate_open() const;

  /// Health-watchdog recovery, first rung of the ladder: the merge has
  /// stopped while traffic is queued, so condemn the stream holding the
  /// minimum watermark bound — evict its connection (kWarn) and finish
  /// the stream so its bound stops gating honest peers. Returns the
  /// condemned stream id, or 0 when no stream is actually gating (empty
  /// bounds, the laggard still has queued frames, or the gate is closed).
  std::uint64_t condemn_watermark_laggard(const std::string& reason);

  /// Serializes per-stream release cursors (the netd half of the daemon's
  /// composed checkpoint). Only durable fields: cursor, released_ts,
  /// finished.
  void save_cursors(ByteWriter& w) const;
  /// Restores cursors into an empty server (call before start()).
  Status load_cursors(ByteReader& r);

  const ServerStats& stats() const { return stats_; }
  const std::vector<EvictionRecord>& evictions() const { return evictions_; }
  /// Renders the volatile operational counters (stderr telemetry; never
  /// part of the report JSON, which must stay run-invariant).
  std::string stats_line() const;

 private:
  /// (capture_ts, stream_id, seq): the deterministic global frame order.
  using Key = std::tuple<Timestamp, std::uint64_t, std::uint64_t>;

  struct Conn {
    int fd = -1;
    bool unix_peer = false;
    std::string remote;
    std::vector<std::uint8_t> in;
    std::size_t in_off = 0;
    std::vector<std::uint8_t> out;
    std::size_t out_off = 0;
    bool got_hello = false;
    bool is_query = false;
    bool close_after_flush = false;
    bool paused = false;
    std::uint64_t stream_id = 0;
    MonoTime last_byte{};
    MonoTime last_message{};
  };

  struct Stream {
    std::uint64_t id = 0;
    // Durable (checkpointed):
    std::uint64_t cursor = 0;    ///< frames released to the sink
    Timestamp released_ts = 0;   ///< ts of the last released frame
    bool finished = false;
    // Volatile:
    int conn_fd = -1;            ///< -1 while disconnected
    std::uint64_t recv_seq = 0;  ///< seq of the next frame to arrive
    Timestamp last_recv_ts = 0;
    std::deque<net::CapturedPacket> q;  ///< received, unreleased
    std::size_t q_bytes = 0;
    bool fin_seen = false;
    std::uint64_t fin_total = 0;
    Key bound{};                 ///< current entry in bounds_
    bool bound_set = false;
  };

  void on_listener_ready();
  void on_unix_listener_ready();
  void accept_loop(int listener_fd, bool unix_peer);
  void on_conn_event(int fd, std::uint32_t events);
  void read_conn(Conn& conn);
  /// Parses complete messages out of conn.in; returns false if the
  /// connection was evicted (and no longer exists).
  bool parse_conn(Conn& conn);
  bool handle_hello(Conn& conn, const wire::Hello& hello);
  bool handle_record(Conn& conn, const wire::RecordHeader& rec,
                     std::span<const std::uint8_t> payload);
  bool handle_fin(Conn& conn, std::uint64_t total);
  void flush_conn(Conn& conn);
  void queue_bytes(Conn& conn, std::span<const std::uint8_t> bytes);
  void close_conn(int fd);
  void evict(int fd, iec104::Severity severity, const std::string& reason);

  void set_stream_bound(Stream& s, Key key);
  void clear_stream_bound(Stream& s);
  /// Detaches a live connection from its stream: drops buffered frames
  /// and rewinds the bound to the release cursor.
  void detach_stream(Stream& s);
  /// The watermark release loop plus backpressure/shedding maintenance.
  void pump();
  void release_front(Stream& s);
  void finish_stream(Stream& s);
  void shed_until(std::size_t target_bytes);
  void force_release(std::size_t target_bytes);
  void update_pauses();
  std::size_t effective_budget() const;

  void on_tick();
  void refill_tokens();

  Reactor& reactor_;
  ServerConfig config_;
  faultinject::SysOps& sys_;
  FrameSink sink_;
  QueryHandler query_handler_;
  QueryHandler health_handler_;

  int listen_fd_ = -1;
  int unix_listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  bool accepting_ = true;
  std::uint64_t tick_timer_ = 0;
  bool tick_armed_ = false;

  double tokens_ = 0.0;
  MonoTime last_refill_{};

  std::map<int, Conn> conns_;
  std::map<std::uint64_t, Stream> streams_;
  /// Lower bounds of all registered, unfinished streams.
  std::multiset<Key> bounds_;
  /// Head (smallest) key of every stream with a nonempty queue.
  std::map<Key, std::uint64_t> heads_;

  int pressure_level_ = 0;
  ServerStats stats_;
  std::vector<EvictionRecord> evictions_;
};

}  // namespace uncharted::netd
