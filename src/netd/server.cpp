#include "netd/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace uncharted::netd {

namespace {

/// Durable-cursor section magic inside the daemon's composed checkpoint.
constexpr std::uint32_t kCursorMagic = 0x4E544443;  // "NTDC"

/// Accounting overhead per queued frame (deque node + vector header).
constexpr std::size_t kPerFrameOverhead = 64;

constexpr int kListenBacklog = 4096;
constexpr std::size_t kReadChunk = 64 * 1024;
/// Per-readiness-event read cap so one flooding peer cannot starve the
/// rest of the loop (level-triggered polling re-fires for the remainder).
constexpr std::size_t kReadBudget = 256 * 1024;

std::string describe_peer(const sockaddr_in& addr) {
  char buf[INET_ADDRSTRLEN] = {0};
  ::inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof buf);
  return std::string(buf) + ":" + std::to_string(ntohs(addr.sin_port));
}

std::size_t frame_cost(const net::CapturedPacket& pkt) {
  return pkt.data.size() + kPerFrameOverhead;
}

}  // namespace

IngestServer::IngestServer(Reactor& reactor, ServerConfig config, FrameSink sink)
    : reactor_(reactor),
      config_(std::move(config)),
      sys_(config_.sys != nullptr ? *config_.sys : faultinject::real_sys_ops()),
      sink_(std::move(sink)),
      tokens_(config_.accept_burst),
      last_refill_(MonoClock::now()) {}

IngestServer::~IngestServer() { close_all(); }

Status IngestServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Error{"netd-socket", std::strerror(errno)};
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (auto st = Reactor::make_nonblocking(listen_fd_); !st) return st;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_addr.c_str(), &addr.sin_addr) != 1) {
    return Error{"netd-bind-addr", "bad bind address " + config_.bind_addr};
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    return Error{"netd-bind", std::string("bind: ") + std::strerror(errno)};
  }
  if (::listen(listen_fd_, kListenBacklog) < 0) {
    return Error{"netd-listen", std::string("listen: ") + std::strerror(errno)};
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    bound_port_ = ntohs(bound.sin_port);
  }
  if (auto st = reactor_.add_fd(listen_fd_, kEventRead,
                                [this](std::uint32_t) { on_listener_ready(); });
      !st) {
    return st;
  }

  if (!config_.query_sock_path.empty()) {
    unix_listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_listen_fd_ < 0) return Error{"netd-socket", std::strerror(errno)};
    if (auto st = Reactor::make_nonblocking(unix_listen_fd_); !st) return st;
    sockaddr_un uaddr{};
    uaddr.sun_family = AF_UNIX;
    if (config_.query_sock_path.size() >= sizeof uaddr.sun_path) {
      return Error{"netd-unix-path", "query socket path too long"};
    }
    std::strncpy(uaddr.sun_path, config_.query_sock_path.c_str(),
                 sizeof uaddr.sun_path - 1);
    ::unlink(config_.query_sock_path.c_str());
    if (::bind(unix_listen_fd_, reinterpret_cast<const sockaddr*>(&uaddr),
               sizeof uaddr) < 0) {
      return Error{"netd-bind", std::string("bind unix: ") + std::strerror(errno)};
    }
    if (::listen(unix_listen_fd_, 64) < 0) {
      return Error{"netd-listen", std::string("listen unix: ") + std::strerror(errno)};
    }
    if (auto st = reactor_.add_fd(unix_listen_fd_, kEventRead, [this](std::uint32_t) {
          on_unix_listener_ready();
        });
        !st) {
      return st;
    }
  }

  tick_timer_ = reactor_.add_timer_after(config_.tick_s, [this] { on_tick(); });
  tick_armed_ = true;
  return Status::Ok();
}

void IngestServer::stop_accepting() {
  accepting_ = false;
  if (listen_fd_ >= 0) {
    reactor_.remove_fd(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (unix_listen_fd_ >= 0) {
    reactor_.remove_fd(unix_listen_fd_);
    ::close(unix_listen_fd_);
    unix_listen_fd_ = -1;
    ::unlink(config_.query_sock_path.c_str());
  }
}

void IngestServer::close_all() {
  stop_accepting();
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) fds.push_back(fd);
  for (int fd : fds) close_conn(fd);
  if (tick_armed_) {
    reactor_.cancel_timer(tick_timer_);
    tick_armed_ = false;
  }
}

void IngestServer::set_pressure_level(int level) {
  pressure_level_ = std::clamp(level, 0, 2);
}

std::size_t IngestServer::effective_budget() const {
  return config_.max_buffered_bytes >> static_cast<unsigned>(pressure_level_);
}

bool IngestServer::all_expected_finished() const {
  return config_.expect_streams > 0 &&
         stats_.streams_finished >= config_.expect_streams;
}

bool IngestServer::release_gate_open() const {
  return config_.expect_streams == 0 || streams_.size() >= config_.expect_streams;
}

std::uint64_t IngestServer::condemn_watermark_laggard(const std::string& reason) {
  if (!release_gate_open() || bounds_.empty() || heads_.empty()) return 0;
  const std::uint64_t id = std::get<1>(*bounds_.begin());
  auto it = streams_.find(id);
  if (it == streams_.end() || it->second.finished) return 0;
  // A gating stream that still has frames queued is about to release them
  // on its own; only an empty-handed laggard can wedge the merge.
  if (!it->second.q.empty()) return 0;
  if (it->second.conn_fd >= 0) {
    evict(it->second.conn_fd, iec104::Severity::kWarn, reason);
  }
  // Condemn the stream as finished (the same shape as hostile eviction):
  // its bound clears, it still counts toward the expect_streams gate, and
  // a later re-register is answered kFinished. Frames it never sent are
  // lost to the report — which is why this is a ladder action recorded in
  // the degradation ledger, never routine housekeeping.
  auto sit = streams_.find(id);
  if (sit == streams_.end() || sit->second.finished) return 0;
  sit->second.fin_seen = false;
  finish_stream(sit->second);
  pump();
  return id;
}

// ---------------------------------------------------------------------------
// Accept path
// ---------------------------------------------------------------------------

void IngestServer::refill_tokens() {
  if (config_.accept_rate <= 0.0) return;
  const MonoTime now = MonoClock::now();
  const double dt = std::chrono::duration<double>(now - last_refill_).count();
  last_refill_ = now;
  tokens_ = std::min(config_.accept_burst, tokens_ + dt * config_.accept_rate);
}

void IngestServer::on_listener_ready() { accept_loop(listen_fd_, false); }

void IngestServer::on_unix_listener_ready() { accept_loop(unix_listen_fd_, true); }

void IngestServer::accept_loop(int listener_fd, bool unix_peer) {
  if (!accepting_ || listener_fd < 0) return;
  refill_tokens();
  while (true) {
    if (!unix_peer && config_.accept_rate > 0.0 && tokens_ < 1.0) {
      // Token bucket dry: stop draining the backlog and mute the listener
      // until the next tick refills (otherwise level-triggered polling
      // would spin on the pending queue).
      stats_.rate_deferred_polls++;
      (void)reactor_.set_interest(listener_fd, 0);
      return;
    }
    sockaddr_in peer{};
    socklen_t len = sizeof peer;
    const faultinject::AcceptResult ar = faultinject::retry_accept(
        sys_, listener_fd,
        unix_peer ? nullptr : reinterpret_cast<sockaddr*>(&peer),
        unix_peer ? nullptr : &len);
    if (ar.status != faultinject::IoStatus::kOk) {
      if (ar.status == faultinject::IoStatus::kError &&
          faultinject::fd_exhausted(ar.err)) {
        // Out of descriptors. With level-triggered polling the pending
        // backlog would re-fire accept readiness forever; mute the
        // listener and let the next tick re-arm it once fds have freed.
        // Pending clients are effectively shed and resume via their
        // cursors — the same admission-control contract as a busy ack.
        stats_.accept_fd_exhausted++;
        (void)reactor_.set_interest(listener_fd, 0);
      }
      return;  // EAGAIN or transient error: wait for readiness
    }
    const int fd = ar.fd;
    if (!unix_peer && config_.accept_rate > 0.0) tokens_ -= 1.0;
    if (auto st = Reactor::make_nonblocking(fd); !st) {
      ::close(fd);
      continue;
    }
    if (conns_.size() >= config_.max_connections) {
      // A drained connection (fin seen, every frame received, waiting only
      // for the watermark to release it) needs nothing more from the
      // network — its client re-syncs from the cursor on reconnect. At the
      // cap, displace one rather than deadlocking the listener against the
      // expect_streams gate: the waiting stream cannot finish until every
      // expected stream has said hello, which needs a free slot.
      int drained_fd = -1;
      for (const auto& [cfd, c] : conns_) {
        if (!c.got_hello || c.is_query) continue;
        auto sit = streams_.find(c.stream_id);
        if (sit == streams_.end()) continue;
        if (sit->second.fin_seen && sit->second.recv_seq == sit->second.fin_total) {
          drained_fd = cfd;
          break;
        }
      }
      if (drained_fd >= 0) {
        evict(drained_fd, iec104::Severity::kInfo,
              "displaced while awaiting release (admission cap)");
      }
    }
    if (conns_.size() >= config_.max_connections) {
      // Admission control: greet with a busy ack (so the client backs off
      // instead of retrying hot) and close. Best effort — 13 bytes fit any
      // fresh socket buffer.
      ByteWriter w;
      wire::encode_hello_ack(w, wire::HelloAck{wire::AckStatus::kBusy, 0});
      (void)faultinject::retry_send(sys_, fd, w.data().data(), w.data().size(),
                                    MSG_NOSIGNAL);
      // Drain the greeting the peer has already sent before closing:
      // closing with unread data in the socket fires an RST, which would
      // destroy the busy ack sitting in the peer's receive buffer.
      std::uint8_t drain[256];
      while (faultinject::retry_recv(sys_, fd, drain, sizeof drain).status ==
             faultinject::IoStatus::kOk) {
      }
      ::close(fd);
      stats_.rejected_busy++;
      continue;
    }
    Conn conn;
    conn.fd = fd;
    conn.unix_peer = unix_peer;
    conn.remote = unix_peer ? "unix" : describe_peer(peer);
    conn.last_byte = MonoClock::now();
    conn.last_message = conn.last_byte;
    if (auto st = reactor_.add_fd(
            fd, kEventRead, [this, fd](std::uint32_t ev) { on_conn_event(fd, ev); });
        !st) {
      ::close(fd);
      continue;
    }
    conns_.emplace(fd, std::move(conn));
    stats_.accepted++;
    stats_.connections = conns_.size();
    stats_.peak_connections = std::max(stats_.peak_connections, stats_.connections);
  }
}

// ---------------------------------------------------------------------------
// Connection I/O
// ---------------------------------------------------------------------------

void IngestServer::on_conn_event(int fd, std::uint32_t events) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  if (events & kEventError) {
    close_conn(fd);
    return;
  }
  if (events & kEventWrite) {
    flush_conn(it->second);
    it = conns_.find(fd);
    if (it == conns_.end()) return;
  }
  if (events & kEventRead) read_conn(it->second);
}

void IngestServer::read_conn(Conn& conn) {
  const int fd = conn.fd;
  std::size_t total = 0;
  bool closed = false;
  while (total < kReadBudget) {
    std::uint8_t buf[kReadChunk];
    const faultinject::IoResult r =
        faultinject::retry_recv(sys_, fd, buf, sizeof buf);
    if (r.status == faultinject::IoStatus::kOk) {
      conn.in.insert(conn.in.end(), buf, buf + r.bytes);
      total += r.bytes;
      stats_.bytes_received += r.bytes;
      continue;
    }
    if (r.status == faultinject::IoStatus::kWouldBlock) break;
    closed = true;  // kEof or kError: the peer is gone either way
    break;
  }
  if (total > 0) {
    conn.last_byte = MonoClock::now();
    if (!parse_conn(conn)) return;  // evicted; conn is gone
    // Per-connection backpressure: a stream buffered too far past the
    // watermark stops being read until the release loop catches up.
    auto sit = streams_.find(conn.stream_id);
    if (conn.got_hello && !conn.is_query && sit != streams_.end() &&
        sit->second.q_bytes > config_.per_conn_buffered_bytes && !conn.paused) {
      conn.paused = true;
      stats_.paused_reads++;
      (void)reactor_.set_interest(fd, conn.out.size() > conn.out_off ? kEventWrite : 0);
    }
    pump();
    if (conns_.find(fd) == conns_.end()) return;  // shed during pump
  }
  if (closed) close_conn(fd);
}

bool IngestServer::parse_conn(Conn& conn) {
  while (true) {
    const std::size_t avail = conn.in.size() - conn.in_off;
    const std::span<const std::uint8_t> view(conn.in.data() + conn.in_off, avail);
    if (!conn.got_hello) {
      if (avail < wire::kHelloSize) break;
      ByteReader r(view.first(wire::kHelloSize));
      auto hello = wire::decode_hello(r);
      if (!hello) {
        evict(conn.fd, iec104::Severity::kHostile,
              "garbage hello: " + hello.error().str());
        return false;
      }
      conn.in_off += wire::kHelloSize;
      conn.got_hello = true;
      conn.last_message = MonoClock::now();
      if (!handle_hello(conn, hello.value())) return false;
      continue;
    }
    if (conn.is_query) break;  // nothing further expected from a query peer
    if (avail < 1) break;
    const auto marker = static_cast<wire::Marker>(view[0]);
    if (marker == wire::Marker::kRecord) {
      if (avail < wire::kRecordHeaderSize) break;
      ByteReader r(view.first(wire::kRecordHeaderSize));
      auto rec = wire::decode_record_header(r);
      if (!rec) {
        evict(conn.fd, iec104::Severity::kHostile,
              "bad record: " + rec.error().str());
        return false;
      }
      const std::size_t need = wire::kRecordHeaderSize + rec.value().cap_len;
      if (avail < need) break;
      if (!handle_record(conn, rec.value(),
                         view.subspan(wire::kRecordHeaderSize, rec.value().cap_len))) {
        return false;
      }
      conn.in_off += need;
      conn.last_message = MonoClock::now();
      // Backpressure must engage mid-batch: one read batch can carry far
      // more than the per-connection budget, and letting it all queue
      // would blow the global budget before pump() ever saw it. Leave the
      // remainder unparsed in conn.in; update_pauses() resumes it.
      auto sit = streams_.find(conn.stream_id);
      if (!conn.paused && sit != streams_.end() &&
          sit->second.q_bytes > config_.per_conn_buffered_bytes) {
        conn.paused = true;
        stats_.paused_reads++;
        (void)reactor_.set_interest(
            conn.fd, conn.out.size() > conn.out_off ? kEventWrite : 0u);
        break;
      }
      continue;
    }
    if (marker == wire::Marker::kFin) {
      if (avail < wire::kFinSize) break;
      ByteReader r(view.first(wire::kFinSize));
      auto total = wire::decode_fin(r);
      if (!total) {
        evict(conn.fd, iec104::Severity::kHostile, "bad fin");
        return false;
      }
      conn.in_off += wire::kFinSize;
      conn.last_message = MonoClock::now();
      if (!handle_fin(conn, total.value())) return false;
      continue;
    }
    evict(conn.fd, iec104::Severity::kHostile,
          "unknown marker " + std::to_string(view[0]));
    return false;
  }
  // A peer accumulating bytes without ever completing a message is abusing
  // the framing (the slow-loris tick handles the time axis). A paused
  // connection is exempt: its backlog is well-framed, just deferred.
  if (!conn.paused && conn.in.size() - conn.in_off > config_.max_message_bytes) {
    evict(conn.fd, iec104::Severity::kHostile, "unframed byte flood");
    return false;
  }
  if (conn.in_off == conn.in.size()) {
    conn.in.clear();
    conn.in_off = 0;
  } else if (conn.in_off > kReadChunk) {
    conn.in.erase(conn.in.begin(),
                  conn.in.begin() + static_cast<std::ptrdiff_t>(conn.in_off));
    conn.in_off = 0;
  }
  return true;
}

bool IngestServer::handle_hello(Conn& conn, const wire::Hello& hello) {
  if (hello.kind == wire::HelloKind::kQuery ||
      hello.kind == wire::HelloKind::kHealth) {
    conn.is_query = true;
    stats_.queries_served++;
    const QueryHandler& handler =
        hello.kind == wire::HelloKind::kHealth ? health_handler_ : query_handler_;
    ByteWriter w;
    if (handler) {
      const std::string json = handler();
      wire::encode_query_reply_header(w, wire::AckStatus::kAccepted,
                                      static_cast<std::uint32_t>(json.size()));
      w.bytes(std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(json.data()), json.size()));
    } else {
      wire::encode_query_reply_header(w, wire::AckStatus::kBusy, 0);
    }
    conn.close_after_flush = true;
    // queue_bytes may close (and free) conn; only the saved fd is safe after.
    const int fd = conn.fd;
    queue_bytes(conn, w.view());
    return conns_.count(fd) > 0;
  }

  stats_.hellos++;
  auto [it, inserted] = streams_.try_emplace(hello.stream_id);
  Stream& s = it->second;
  if (inserted) s.id = hello.stream_id;

  if (s.finished) {
    ByteWriter w;
    wire::encode_hello_ack(w, wire::HelloAck{wire::AckStatus::kFinished, s.cursor});
    conn.close_after_flush = true;
    const int fd = conn.fd;
    queue_bytes(conn, w.view());
    return conns_.count(fd) > 0;
  }

  if (s.conn_fd >= 0 && s.conn_fd != conn.fd) {
    // A reconnect raced the old connection's teardown: the new hello wins.
    const int old_fd = s.conn_fd;
    evict(old_fd, iec104::Severity::kWarn, "superseded by reconnect");
  }
  s.conn_fd = conn.fd;
  s.recv_seq = s.cursor;
  // Never rewind the resume floor detach_stream tightened: re-sent frames
  // below it are timestamp regressions, not legitimate replays.
  s.last_recv_ts = std::max(s.last_recv_ts, s.released_ts);
  s.fin_seen = false;
  set_stream_bound(s, Key{s.last_recv_ts, s.id, s.cursor});
  conn.stream_id = s.id;
  if (s.cursor > 0) stats_.resumed_hellos++;

  ByteWriter w;
  wire::encode_hello_ack(w, wire::HelloAck{wire::AckStatus::kAccepted, s.cursor});
  const int fd = conn.fd;
  queue_bytes(conn, w.view());
  return conns_.count(fd) > 0;
}

bool IngestServer::handle_record(Conn& conn, const wire::RecordHeader& rec,
                                 std::span<const std::uint8_t> payload) {
  auto it = streams_.find(conn.stream_id);
  if (it == streams_.end()) {
    evict(conn.fd, iec104::Severity::kHostile, "record without stream");
    return false;
  }
  Stream& s = it->second;
  if (rec.ts < s.last_recv_ts) {
    // Streams replay a time-sorted capture slice; a regressing timestamp
    // would poison the deterministic merge.
    evict(conn.fd, iec104::Severity::kHostile, "timestamp regression");
    return false;
  }
  net::CapturedPacket pkt;
  pkt.ts = rec.ts;
  pkt.original_length = rec.original_length;
  pkt.data.assign(payload.begin(), payload.end());

  const std::size_t cost = frame_cost(pkt);
  if (s.q.empty()) {
    heads_.emplace(Key{pkt.ts, s.id, s.cursor}, s.id);
  }
  s.q.push_back(std::move(pkt));
  s.q_bytes += cost;
  stats_.queued_bytes += cost;
  stats_.peak_queued_bytes = std::max(stats_.peak_queued_bytes, stats_.queued_bytes);
  stats_.frames_received++;
  s.last_recv_ts = rec.ts;
  s.recv_seq++;
  set_stream_bound(s, Key{s.last_recv_ts, s.id, s.recv_seq});
  return true;
}

bool IngestServer::handle_fin(Conn& conn, std::uint64_t total) {
  auto it = streams_.find(conn.stream_id);
  if (it == streams_.end()) {
    evict(conn.fd, iec104::Severity::kHostile, "fin without stream");
    return false;
  }
  Stream& s = it->second;
  if (total != s.recv_seq) {
    evict(conn.fd, iec104::Severity::kHostile,
          "fin count mismatch (declared " + std::to_string(total) + ", received " +
              std::to_string(s.recv_seq) + ")");
    return false;
  }
  s.fin_seen = true;
  s.fin_total = total;
  // finish_stream acks and then closes (frees) conn even on the healthy
  // path; only the saved fd is safe to consult afterwards.
  const int fd = conn.fd;
  if (s.cursor == s.fin_total && s.q.empty()) finish_stream(s);
  return conns_.count(fd) > 0;
}

void IngestServer::queue_bytes(Conn& conn, std::span<const std::uint8_t> bytes) {
  conn.out.insert(conn.out.end(), bytes.begin(), bytes.end());
  flush_conn(conn);
}

void IngestServer::flush_conn(Conn& conn) {
  const int fd = conn.fd;
  while (conn.out_off < conn.out.size()) {
    const faultinject::IoResult r =
        faultinject::retry_send(sys_, fd, conn.out.data() + conn.out_off,
                                conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (r.status == faultinject::IoStatus::kOk) {
      conn.out_off += r.bytes;
      continue;
    }
    if (r.status == faultinject::IoStatus::kWouldBlock) {
      (void)reactor_.set_interest(fd,
                                  kEventWrite | (conn.paused ? 0u : kEventRead));
      return;
    }
    close_conn(fd);
    return;
  }
  conn.out.clear();
  conn.out_off = 0;
  if (conn.close_after_flush) {
    close_conn(fd);
    return;
  }
  (void)reactor_.set_interest(fd, conn.paused ? 0u : kEventRead);
}

void IngestServer::close_conn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  const std::uint64_t stream_id = it->second.stream_id;
  const bool had_hello = it->second.got_hello && !it->second.is_query;
  reactor_.remove_fd(fd);
  ::close(fd);
  conns_.erase(it);
  stats_.connections = conns_.size();
  if (had_hello) {
    auto sit = streams_.find(stream_id);
    if (sit != streams_.end() && sit->second.conn_fd == fd) {
      sit->second.conn_fd = -1;
      if (!sit->second.finished) detach_stream(sit->second);
    }
  }
}

void IngestServer::evict(int fd, iec104::Severity severity,
                         const std::string& reason) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  const bool had_stream = it->second.got_hello && !it->second.is_query;
  const std::uint64_t stream_id = it->second.stream_id;
  evictions_.push_back(
      EvictionRecord{it->second.is_query ? 0 : it->second.stream_id,
                     it->second.remote, severity, reason});
  if (severity == iec104::Severity::kHostile) {
    stats_.evicted_hostile++;
  } else if (severity == iec104::Severity::kWarn) {
    stats_.evicted_warn++;
  }
  close_conn(fd);
  if (severity == iec104::Severity::kHostile && had_stream) {
    // A hostile peer never comes back to make progress, so its rewound
    // bound would gate the watermark merge forever. Condemn the stream as
    // finished: its bound is cleared, it still counts toward the
    // expect_streams gate and the drain accounting (erasing it would
    // re-close the gate for everyone else), frames it already released
    // stay released in deterministic order, everything still queued was
    // discarded by close_conn, and a re-register under the same id is
    // answered with a kFinished ack.
    auto sit = streams_.find(stream_id);
    if (sit != streams_.end() && !sit->second.finished) {
      sit->second.fin_seen = false;
      finish_stream(sit->second);
    }
  }
}

// ---------------------------------------------------------------------------
// Watermark release, shedding, forced release
// ---------------------------------------------------------------------------

void IngestServer::set_stream_bound(Stream& s, Key key) {
  if (s.bound_set) {
    auto it = bounds_.find(s.bound);
    if (it != bounds_.end()) bounds_.erase(it);
  }
  s.bound = key;
  s.bound_set = true;
  bounds_.insert(key);
}

void IngestServer::clear_stream_bound(Stream& s) {
  if (!s.bound_set) return;
  auto it = bounds_.find(s.bound);
  if (it != bounds_.end()) bounds_.erase(it);
  s.bound_set = false;
}

void IngestServer::detach_stream(Stream& s) {
  // The resume floor: the client re-sends from the cursor, and the frame
  // at the cursor — if we ever saw it — cannot legally change timestamp
  // (the regression check on reconnect enforces that). Keeping the bound
  // at the dropped queue head instead of rewinding all the way to the
  // released watermark lets OTHER streams keep releasing while this one
  // is offline, which is what makes cap displacement converge.
  Timestamp resume_ts = s.released_ts;
  if (!s.q.empty()) {
    resume_ts = s.q.front().ts;
    heads_.erase(Key{s.q.front().ts, s.id, s.cursor});
    stats_.queued_bytes -= s.q_bytes;
    s.q.clear();
    s.q_bytes = 0;
  }
  s.recv_seq = s.cursor;
  s.last_recv_ts = resume_ts;
  s.fin_seen = false;
  set_stream_bound(s, Key{resume_ts, s.id, s.cursor});
}

void IngestServer::release_front(Stream& s) {
  heads_.erase(Key{s.q.front().ts, s.id, s.cursor});
  net::CapturedPacket pkt = std::move(s.q.front());
  s.q.pop_front();
  const std::size_t cost = frame_cost(pkt);
  s.q_bytes -= cost;
  stats_.queued_bytes -= cost;
  s.cursor++;
  s.released_ts = pkt.ts;
  stats_.frames_released++;
  if (!s.q.empty()) heads_.emplace(Key{s.q.front().ts, s.id, s.cursor}, s.id);
  // Sink runs synchronously: when it checkpoints, save_cursors() already
  // counts this frame, matching the analyzer state exactly.
  if (sink_) sink_(s.id, pkt);
  if (s.fin_seen && s.cursor == s.fin_total && s.q.empty()) finish_stream(s);
}

void IngestServer::finish_stream(Stream& s) {
  s.finished = true;
  clear_stream_bound(s);
  stats_.streams_finished++;
  if (s.conn_fd >= 0) {
    auto it = conns_.find(s.conn_fd);
    if (it != conns_.end()) {
      ByteWriter w;
      wire::encode_fin_ack(w, s.fin_total);
      it->second.close_after_flush = true;
      queue_bytes(it->second, w.view());
    }
  }
}

void IngestServer::pump() {
  const bool gated =
      config_.expect_streams > 0 && streams_.size() < config_.expect_streams;
  if (!gated) {
    while (!heads_.empty()) {
      auto head = heads_.begin();
      if (!bounds_.empty() && !(head->first < *bounds_.begin())) break;
      auto sit = streams_.find(head->second);
      if (sit == streams_.end()) {  // should not happen; drop the orphan
        heads_.erase(head);
        continue;
      }
      release_front(sit->second);
    }
  }
  const std::size_t budget = effective_budget();
  if (stats_.queued_bytes > budget) shed_until(budget - budget / 4);
  if (stats_.queued_bytes > budget && config_.allow_forced_release) {
    force_release(budget / 2);
  }
}

void IngestServer::shed_until(std::size_t target_bytes) {
  // Shed the cheapest connections first: the fattest buffers belong to the
  // streams furthest ahead of the watermark, so closing them reclaims the
  // most memory at the least loss of forward progress — and costs no data,
  // because cursor-based resume re-sends everything dropped here.
  while (stats_.queued_bytes > target_bytes) {
    Stream* victim = nullptr;
    for (auto& [id, s] : streams_) {
      if (s.q_bytes == 0 || s.conn_fd < 0) continue;
      // A drained stream's buffer is its complete tail waiting on the
      // watermark: evicting it would only make the client re-send the
      // same bytes into the same gate. force_release is the backstop
      // for that shape, not shedding.
      if (s.fin_seen && s.recv_seq == s.fin_total) continue;
      if (victim == nullptr || s.q_bytes > victim->q_bytes) victim = &s;
    }
    if (victim == nullptr) break;
    stats_.shed_connections++;
    evict(victim->conn_fd, iec104::Severity::kInfo,
          "shed under memory pressure (" + std::to_string(victim->q_bytes) +
              " bytes buffered)");
  }
}

void IngestServer::force_release(std::size_t target_bytes) {
  // Last resort: budget exhausted even with every connection shed (e.g. a
  // single stream larger than the budget while the watermark waits on a
  // disconnected peer). Releasing past the watermark degrades the
  // deterministic merge to sampling — counted, and surfaced as a
  // degradation warning by the daemon — but the process stays bounded.
  while (stats_.queued_bytes > target_bytes && !heads_.empty()) {
    auto head = heads_.begin();
    auto sit = streams_.find(head->second);
    if (sit == streams_.end()) {
      heads_.erase(head);
      continue;
    }
    stats_.forced_releases++;
    release_front(sit->second);
  }
}

void IngestServer::update_pauses() {
  const std::size_t budget = effective_budget();
  if (stats_.queued_bytes > budget - budget / 4) return;
  std::vector<int> resumable;
  for (auto& [fd, conn] : conns_) {
    if (!conn.paused) continue;
    auto sit = streams_.find(conn.stream_id);
    const std::size_t q_bytes =
        sit == streams_.end() ? 0 : sit->second.q_bytes;
    if (q_bytes <= config_.per_conn_buffered_bytes / 2) resumable.push_back(fd);
  }
  for (int fd : resumable) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    it->second.paused = false;
    // Messages left unparsed by a mid-batch pause sit in conn.in and will
    // never raise another read event: resume parsing them here. This can
    // re-pause or even evict the connection.
    if (it->second.in.size() > it->second.in_off && !parse_conn(it->second)) {
      continue;
    }
    it = conns_.find(fd);
    if (it == conns_.end() || it->second.paused) continue;
    (void)reactor_.set_interest(
        fd, kEventRead |
                (it->second.out.size() > it->second.out_off ? kEventWrite : 0u));
  }
}

// ---------------------------------------------------------------------------
// Housekeeping tick
// ---------------------------------------------------------------------------

void IngestServer::on_tick() {
  tick_armed_ = false;
  refill_tokens();
  if (accepting_ && listen_fd_ >= 0) {
    // Un-mute a rate-deferred or fd-exhausted listener once tokens are
    // back. If descriptors are still exhausted the next accept re-mutes
    // it, so recovery polls at tick cadence instead of busy-looping.
    if (config_.accept_rate <= 0.0 || tokens_ >= 1.0) {
      (void)reactor_.set_interest(listen_fd_, kEventRead);
    }
  }
  if (accepting_ && unix_listen_fd_ >= 0) {
    (void)reactor_.set_interest(unix_listen_fd_, kEventRead);
  }

  const MonoTime now = MonoClock::now();
  std::vector<std::tuple<int, iec104::Severity, std::string>> to_evict;
  for (const auto& [fd, conn] : conns_) {
    const double since_byte =
        std::chrono::duration<double>(now - conn.last_byte).count();
    const double since_message =
        std::chrono::duration<double>(now - conn.last_message).count();
    if (!conn.got_hello) {
      if (since_message > config_.handshake_timeout_s) {
        to_evict.emplace_back(fd, iec104::Severity::kWarn, "no hello");
      }
      continue;
    }
    const bool partial = conn.in.size() > conn.in_off;
    if (partial && !conn.paused && since_message > config_.read_timeout_s) {
      // The PR-4 kSlowlorisDribble scenario, at the transport layer: bytes
      // may still trickle in, but no complete message has formed.
      to_evict.emplace_back(fd, iec104::Severity::kHostile, "slow-loris dribble");
      continue;
    }
    if (!partial && !conn.paused && since_byte > config_.idle_timeout_s) {
      to_evict.emplace_back(fd, iec104::Severity::kInfo, "idle timeout");
    }
  }
  for (const auto& [fd, severity, reason] : to_evict) evict(fd, severity, reason);

  update_pauses();
  pump();
  stats_.ticks++;
  tick_timer_ = reactor_.add_timer_after(config_.tick_s, [this] { on_tick(); });
  tick_armed_ = true;
}

// ---------------------------------------------------------------------------
// Durable cursors (the netd half of the composed checkpoint)
// ---------------------------------------------------------------------------

void IngestServer::save_cursors(ByteWriter& w) const {
  w.u32le(kCursorMagic);
  w.u64le(streams_.size());
  for (const auto& [id, s] : streams_) {
    w.u64le(id);
    w.u64le(s.cursor);
    w.u64le(s.released_ts);
    w.u8(s.finished ? 1 : 0);
  }
}

Status IngestServer::load_cursors(ByteReader& r) {
  auto magic = r.u32le();
  if (!magic || magic.value() != kCursorMagic) {
    return Error{"netd-cursors", "cursor section magic mismatch"};
  }
  auto count = r.u64le();
  if (!count) return Error{"netd-cursors", "cursor section truncated"};
  for (std::uint64_t i = 0; i < count.value(); ++i) {
    auto id = r.u64le();
    auto cursor = r.u64le();
    auto released_ts = r.u64le();
    auto finished = r.u8();
    if (!finished) return Error{"netd-cursors", "cursor entry truncated"};
    Stream s;
    s.id = id.value();
    s.cursor = cursor.value();
    s.released_ts = released_ts.value();
    s.finished = finished.value() != 0;
    s.recv_seq = s.cursor;
    s.last_recv_ts = s.released_ts;
    auto [it, inserted] = streams_.emplace(s.id, std::move(s));
    if (!inserted) return Error{"netd-cursors", "duplicate stream id"};
    if (it->second.finished) {
      stats_.streams_finished++;
    } else {
      set_stream_bound(it->second,
                       Key{it->second.released_ts, it->second.id, it->second.cursor});
    }
  }
  return Status::Ok();
}

std::string IngestServer::stats_line() const {
  return "conns=" + std::to_string(stats_.connections) + "/" +
         std::to_string(stats_.peak_connections) +
         " streams=" + std::to_string(streams_.size()) +
         " finished=" + std::to_string(stats_.streams_finished) +
         " frames=" + std::to_string(stats_.frames_released) + "/" +
         std::to_string(stats_.frames_received) +
         " queued=" + std::to_string(stats_.queued_bytes) + "B(peak " +
         std::to_string(stats_.peak_queued_bytes) +
         "B) busy=" + std::to_string(stats_.rejected_busy) +
         " fdexh=" + std::to_string(stats_.accept_fd_exhausted) +
         " shed=" + std::to_string(stats_.shed_connections) +
         " hostile=" + std::to_string(stats_.evicted_hostile) +
         " warn=" + std::to_string(stats_.evicted_warn) +
         " forced=" + std::to_string(stats_.forced_releases);
}

}  // namespace uncharted::netd
