#include "net/reassembly.hpp"

#include <array>

namespace uncharted::net {

namespace {
/// Serial-number comparison (RFC 1982 style) for 32-bit sequence numbers.
bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
}  // namespace

void StreamStats::accumulate(const StreamStats& o) {
  retransmissions += o.retransmissions;
  overlapping_segments += o.overlapping_segments;
  out_of_order += o.out_of_order;
  delivered_bytes += o.delivered_bytes;
  gaps_skipped += o.gaps_skipped;
  lost_bytes += o.lost_bytes;
  resets += o.resets;
  aborted_with_pending += o.aborted_with_pending;
  wild_segments += o.wild_segments;
}

void TcpStreamDirection::drain_contiguous(StreamChunk& chunk) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    std::uint32_t start = it->first;
    std::uint32_t end = start + static_cast<std::uint32_t>(it->second.size());
    if (!seq_lt(next_seq_, end)) {
      // Fully stale buffered segment.
      pending_bytes_ -= it->second.size();
      it = pending_.erase(it);
      continue;
    }
    if (seq_lt(next_seq_, start)) break;  // gap remains
    std::uint32_t skip = next_seq_ - start;
    chunk.data.insert(chunk.data.end(), it->second.begin() + skip, it->second.end());
    stats_.delivered_bytes += it->second.size() - skip;
    next_seq_ = end;
    pending_bytes_ -= it->second.size();
    it = pending_.erase(it);
  }
  // The slab is monotonic: an empty buffer is the one moment every byte in
  // it (drained entries and overwrite waste alike) is reclaimable at once.
  if (pending_.empty()) slab_.reset();
}

StreamChunk TcpStreamDirection::skip_hole(Timestamp ts) {
  StreamChunk chunk;
  chunk.ts = ts;
  if (pending_.empty()) return chunk;
  std::uint32_t start = pending_.begin()->first;
  ++stats_.gaps_skipped;
  stats_.lost_bytes += start - next_seq_;
  next_seq_ = start;
  drain_contiguous(chunk);
  return chunk;
}

std::vector<StreamChunk> TcpStreamDirection::on_segment(
    Timestamp ts, const TcpHeader& tcp, std::span<const std::uint8_t> payload) {
  std::vector<StreamChunk> out;

  if (!initialized_) {
    // First segment seen in this direction anchors the stream. A SYN
    // consumes one sequence number.
    next_seq_ = tcp.seq + (tcp.syn() ? 1 : 0);
    initialized_ = true;
    if (tcp.syn()) {
      if (payload.empty()) return out;
    }
  }

  if (payload.empty()) return out;

  std::uint32_t seg_start = tcp.seq;
  std::uint32_t seg_end = seg_start + static_cast<std::uint32_t>(payload.size());

  if (!seq_lt(next_seq_, seg_end)) {
    // Entire segment is at or before next_seq_: a pure retransmission.
    ++stats_.retransmissions;
    return out;
  }

  if (seq_lt(seg_start, next_seq_)) {
    // Partial overlap: the head was already delivered, keep only the
    // unseen suffix so no byte is ever delivered twice.
    ++stats_.overlapping_segments;
    std::uint32_t skip = next_seq_ - seg_start;
    payload = payload.subspan(skip);
    seg_start = next_seq_;
  }

  if (seg_start != next_seq_) {
    if (seg_start - next_seq_ > limits_.max_window_bytes) {
      // Far outside any receive window: a corrupted sequence number, not
      // a reorder. Buffering it would fake an enormous hole.
      ++stats_.wild_segments;
      return out;
    }
    // Out of order: copy into the slab (the only place the zero-copy path
    // ever copies payload bytes) and buffer for later. Overwrite-same-start
    // keeps the longest; the superseded copy becomes slab waste until the
    // buffer next drains empty.
    ++stats_.out_of_order;
    auto it = pending_.find(seg_start);
    if (it == pending_.end()) {
      pending_bytes_ += payload.size();
      pending_[seg_start] = slab_.store(payload);
    } else if (it->second.size() < payload.size()) {
      pending_bytes_ += payload.size() - it->second.size();
      it->second = slab_.store(payload);
    }
    // Past the cap the hole in front can no longer be waited out: abandon
    // it, deliver the buffered data, and keep memory bounded. The slab's
    // full footprint (waste included) counts against the byte cap — the
    // budget bounds memory actually held, not just live bytes.
    while (pending_bytes_ > limits_.max_pending_bytes ||
           slab_.bytes_used() > limits_.max_pending_bytes ||
           pending_.size() > limits_.max_pending_segments) {
      auto chunk = skip_hole(ts);
      if (!chunk.data.empty()) out.push_back(std::move(chunk));
    }
    return out;
  }

  // In-order: deliver this segment, then drain any now-contiguous buffers.
  StreamChunk chunk;
  chunk.ts = ts;
  chunk.data.assign(payload.begin(), payload.end());
  next_seq_ = seg_end;
  stats_.delivered_bytes += chunk.data.size();
  drain_contiguous(chunk);
  out.push_back(std::move(chunk));
  return out;
}

void TcpStreamDirection::on_reset(Timestamp ts) {
  (void)ts;
  ++stats_.resets;
  if (!pending_.empty()) {
    // The connection died with a hole outstanding: whatever was buffered
    // behind it can never be framed reliably, count it all as lost.
    ++stats_.aborted_with_pending;
    ++stats_.gaps_skipped;
    stats_.lost_bytes += pending_bytes_;
    pending_.clear();
    pending_bytes_ = 0;
    slab_.reset();
  }
  // Re-anchor on the next segment (a reused tuple starts a fresh stream;
  // an injected RST in the middle of a live stream resumes where the
  // peer's data continues).
  initialized_ = false;
}

std::vector<StreamChunk> TcpStreamDirection::flush(Timestamp ts) {
  std::vector<StreamChunk> out;
  while (!pending_.empty()) {
    auto chunk = skip_hole(ts);
    if (!chunk.data.empty()) out.push_back(std::move(chunk));
  }
  return out;
}

void TcpStreamDirection::save(ByteWriter& w) const {
  w.u8(initialized_ ? 1 : 0);
  w.u32le(next_seq_);
  w.u32le(static_cast<std::uint32_t>(pending_.size()));
  for (const auto& [seq, data] : pending_) {
    w.u32le(seq);
    w.u32le(static_cast<std::uint32_t>(data.size()));
    w.bytes(data);
  }
  w.u64le(stats_.retransmissions);
  w.u64le(stats_.overlapping_segments);
  w.u64le(stats_.out_of_order);
  w.u64le(stats_.delivered_bytes);
  w.u64le(stats_.gaps_skipped);
  w.u64le(stats_.lost_bytes);
  w.u64le(stats_.resets);
  w.u64le(stats_.aborted_with_pending);
  w.u64le(stats_.wild_segments);
}

Result<TcpStreamDirection> TcpStreamDirection::load(ByteReader& r,
                                                    ReassemblyLimits limits) {
  TcpStreamDirection dir(limits);
  auto initialized = r.u8();
  auto next_seq = r.u32le();
  auto count = r.u32le();
  if (!count) return count.error();
  dir.initialized_ = initialized.value() != 0;
  dir.next_seq_ = next_seq.value();
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto seq = r.u32le();
    auto len = r.u32le();
    if (!len) return len.error();
    auto data = r.bytes(len.value());
    if (!data) return data.error();
    dir.pending_bytes_ += data->size();
    dir.pending_[seq.value()] = dir.slab_.store(*data);
  }
  std::array<std::uint64_t*, 9> fields = {
      &dir.stats_.retransmissions, &dir.stats_.overlapping_segments,
      &dir.stats_.out_of_order,    &dir.stats_.delivered_bytes,
      &dir.stats_.gaps_skipped,    &dir.stats_.lost_bytes,
      &dir.stats_.resets,          &dir.stats_.aborted_with_pending,
      &dir.stats_.wild_segments};
  for (auto* field : fields) {
    auto v = r.u64le();
    if (!v) return v.error();
    *field = v.value();
  }
  return dir;
}

void TcpReassembler::add(Timestamp ts, const DecodedFrame& frame) {
  FlowKey key{frame.ip.src, frame.tcp.src_port, frame.ip.dst, frame.tcp.dst_port};
  auto it = directions_.find(key);
  if (it == directions_.end()) {
    it = directions_.emplace(key, TcpStreamDirection(limits_)).first;
  }
  auto& dir = it->second;
  if (sink_) {
    dir.deliver_segment(ts, frame.tcp, frame.payload,
                        [&](Timestamp cts, std::span<const std::uint8_t> data) {
                          sink_(key, cts, data);
                        });
  } else {
    dir.deliver_segment(ts, frame.tcp, frame.payload,
                        [](Timestamp, std::span<const std::uint8_t>) {});
  }
  if (frame.tcp.rst()) {
    // A reset kills both directions of the connection.
    dir.on_reset(ts);
    auto rev = directions_.find(key.reversed());
    if (rev != directions_.end()) rev->second.on_reset(ts);
  }
}

void TcpReassembler::flush(Timestamp ts) {
  for (auto& [key, dir] : directions_) {
    for (auto& chunk : dir.flush(ts)) {
      if (sink_) sink_(key, chunk.ts, chunk.data);
    }
  }
}

std::uint64_t TcpReassembler::retransmitted_segments() const {
  std::uint64_t total = 0;
  for (const auto& [key, dir] : directions_) total += dir.retransmitted_segments();
  return total;
}

std::uint64_t TcpReassembler::retransmissions_for(const FlowKey& key) const {
  auto it = directions_.find(key);
  return it == directions_.end() ? 0 : it->second.retransmitted_segments();
}

StreamStats TcpReassembler::totals() const {
  StreamStats total;
  for (const auto& [key, dir] : directions_) total.accumulate(dir.stats());
  return total;
}

std::size_t TcpReassembler::pending_bytes() const {
  // Slab footprint, not live bytes: budgets govern memory actually held,
  // and the arena only reclaims when a direction drains empty.
  std::size_t total = 0;
  for (const auto& [key, dir] : directions_) total += dir.slab_bytes();
  return total;
}

std::size_t TcpReassembler::evict_pending(Timestamp ts, std::size_t max_bytes) {
  std::size_t flushed = 0;
  while (pending_bytes() > max_bytes) {
    auto victim = directions_.end();
    for (auto it = directions_.begin(); it != directions_.end(); ++it) {
      if (it->second.slab_bytes() == 0) continue;
      if (victim == directions_.end() ||
          it->second.slab_bytes() > victim->second.slab_bytes()) {
        victim = it;
      }
    }
    if (victim == directions_.end()) break;
    for (auto& chunk : victim->second.flush(ts)) {
      if (sink_) sink_(victim->first, chunk.ts, chunk.data);
    }
    ++flushed;
  }
  return flushed;
}

void TcpReassembler::save(ByteWriter& w) const {
  w.u32le(static_cast<std::uint32_t>(directions_.size()));
  for (const auto& [key, dir] : directions_) {
    key.save(w);
    dir.save(w);
  }
}

Status TcpReassembler::load(ByteReader& r) {
  auto count = r.u32le();
  if (!count) return count.error();
  directions_.clear();
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto key = FlowKey::load(r);
    if (!key) return key.error();
    auto dir = TcpStreamDirection::load(r, limits_);
    if (!dir) return dir.error();
    directions_.emplace(key.value(), std::move(dir).take());
  }
  return Status::Ok();
}

}  // namespace uncharted::net
