#include "net/reassembly.hpp"

namespace uncharted::net {

namespace {
/// Serial-number comparison (RFC 1982 style) for 32-bit sequence numbers.
bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
}  // namespace

std::vector<StreamChunk> TcpStreamDirection::on_segment(
    Timestamp ts, const TcpHeader& tcp, std::span<const std::uint8_t> payload) {
  std::vector<StreamChunk> out;

  if (!initialized_) {
    // First segment seen in this direction anchors the stream. A SYN
    // consumes one sequence number.
    next_seq_ = tcp.seq + (tcp.syn() ? 1 : 0);
    initialized_ = true;
    if (tcp.syn()) {
      if (payload.empty()) return out;
    }
  }

  if (payload.empty()) return out;

  std::uint32_t seg_start = tcp.seq;
  std::uint32_t seg_end = seg_start + static_cast<std::uint32_t>(payload.size());

  if (!seq_lt(next_seq_, seg_end)) {
    // Entire segment is at or before next_seq_: a pure retransmission.
    ++retransmissions_;
    return out;
  }

  if (seq_lt(seg_start, next_seq_)) {
    // Partial overlap: the head is retransmitted, keep only the new tail.
    ++retransmissions_;
    std::uint32_t skip = next_seq_ - seg_start;
    payload = payload.subspan(skip);
    seg_start = next_seq_;
  }

  if (seg_start != next_seq_) {
    // Out of order: buffer for later (overwrite-same-start keeps longest).
    ++out_of_order_;
    auto it = pending_.find(seg_start);
    if (it == pending_.end() || it->second.size() < payload.size()) {
      pending_[seg_start] = {payload.begin(), payload.end()};
    }
    return out;
  }

  // In-order: deliver this segment, then drain any now-contiguous buffers.
  StreamChunk chunk;
  chunk.ts = ts;
  chunk.data.assign(payload.begin(), payload.end());
  next_seq_ = seg_end;
  delivered_ += chunk.data.size();

  for (auto it = pending_.begin(); it != pending_.end();) {
    std::uint32_t start = it->first;
    std::uint32_t end = start + static_cast<std::uint32_t>(it->second.size());
    if (!seq_lt(next_seq_, end)) {
      // Fully stale buffered segment.
      it = pending_.erase(it);
      continue;
    }
    if (seq_lt(next_seq_, start)) break;  // gap remains
    std::uint32_t skip = next_seq_ - start;
    chunk.data.insert(chunk.data.end(), it->second.begin() + skip, it->second.end());
    delivered_ += it->second.size() - skip;
    next_seq_ = end;
    it = pending_.erase(it);
  }

  out.push_back(std::move(chunk));
  return out;
}

void TcpReassembler::add(Timestamp ts, const DecodedFrame& frame) {
  FlowKey key{frame.ip.src, frame.tcp.src_port, frame.ip.dst, frame.tcp.dst_port};
  auto& dir = directions_[key];
  for (auto& chunk : dir.on_segment(ts, frame.tcp, frame.payload)) {
    if (sink_) sink_(key, chunk);
  }
}

std::uint64_t TcpReassembler::retransmitted_segments() const {
  std::uint64_t total = 0;
  for (const auto& [key, dir] : directions_) total += dir.retransmitted_segments();
  return total;
}

std::uint64_t TcpReassembler::retransmissions_for(const FlowKey& key) const {
  auto it = directions_.find(key);
  return it == directions_.end() ? 0 : it->second.retransmitted_segments();
}

}  // namespace uncharted::net
