#include "net/mapping.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <utility>

namespace uncharted::net {

int RealFileOps::open_ro(const char* path) { return ::open(path, O_RDONLY); }

long long RealFileOps::size(int fd) {
  struct stat st{};
  if (::fstat(fd, &st) != 0) return -1;
  if (!S_ISREG(st.st_mode)) return -1;  // pipes etc: size is meaningless
  return static_cast<long long>(st.st_size);
}

void* RealFileOps::map_ro(std::size_t len, int fd) {
  void* addr = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  return addr == MAP_FAILED ? nullptr : addr;
}

int RealFileOps::unmap(void* addr, std::size_t len) {
  return ::munmap(addr, len);
}

ssize_t RealFileOps::read(int fd, void* buf, std::size_t n) {
  // RealFileOps is the FileOps seam's one passthrough to the kernel, the
  // mmap-layer twin of RealSysOps; every other caller goes through the
  // interface.
  return ::read(fd, buf, n);
}

int RealFileOps::close(int fd) { return ::close(fd); }

FileOps& real_file_ops() {
  static RealFileOps ops;
  return ops;
}

PcapMapping& PcapMapping::operator=(PcapMapping&& other) noexcept {
  if (this != &other) {
    if (mapped_ && ops_ != nullptr) {
      ops_->unmap(const_cast<std::uint8_t*>(addr_), len_);
    }
    ops_ = std::exchange(other.ops_, nullptr);
    addr_ = std::exchange(other.addr_, nullptr);
    len_ = std::exchange(other.len_, 0);
    mapped_ = std::exchange(other.mapped_, false);
    owned_ = std::move(other.owned_);
  }
  return *this;
}

PcapMapping::~PcapMapping() {
  if (mapped_ && ops_ != nullptr) {
    ops_->unmap(const_cast<std::uint8_t*>(addr_), len_);
  }
}

Result<PcapMapping> PcapMapping::open(const std::string& path, FileOps* ops) {
  FileOps& io = ops != nullptr ? *ops : real_file_ops();
  int fd = io.open_ro(path.c_str());
  if (fd < 0) return Err("open-failed", path);

  PcapMapping out;
  long long size = io.size(fd);
  if (size > 0) {
    void* addr = io.map_ro(static_cast<std::size_t>(size), fd);
    if (addr != nullptr) {
      out.ops_ = &io;
      out.addr_ = static_cast<const std::uint8_t*>(addr);
      out.len_ = static_cast<std::size_t>(size);
      out.mapped_ = true;
      // The mapping pins the inode; the descriptor is no longer needed.
      io.close(fd);
      return out;
    }
  } else if (size == 0) {
    io.close(fd);
    return out;  // empty file: empty bytes, nothing to map
  }

  // Fallback: unmappable (or unsizable) input is read into an owned
  // buffer. Chunked so pipes work even though size() failed.
  constexpr std::size_t kChunk = 1 << 20;
  if (size > 0) out.owned_.reserve(static_cast<std::size_t>(size));
  for (;;) {
    std::size_t base = out.owned_.size();
    out.owned_.resize(base + kChunk);
    ssize_t got = io.read(fd, out.owned_.data() + base, kChunk);
    if (got < 0) {
      io.close(fd);
      return Err("read-failed", path);
    }
    out.owned_.resize(base + static_cast<std::size_t>(got));
    if (got == 0) break;
  }
  io.close(fd);
  return out;
}

}  // namespace uncharted::net
