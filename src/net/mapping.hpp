// Memory-mapped pcap access: the zero-copy substrate under analyze_file.
//
// A capture file is mapped read-only and every FrameView the PcapCursor
// yields is a span straight into the mapping — decode, flow tracking,
// reassembly and APDU parsing all run over file-backed pages without one
// payload copy. When the input cannot be mapped (a pipe, an exotic
// filesystem, or an injected fault), open() silently falls back to
// reading the bytes into an owned buffer: same span API, same results,
// one copy instead of zero.
//
// The `FileOps` seam mirrors the daemon's SysOps pattern one layer down:
// net cannot depend on faultinject (include-layering DAG — faultinject
// depends on net), so the seam lives here and the fault injector adapts
// onto it from its own side. Production passes nullptr and gets the real
// kernel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <sys/types.h>
#include <vector>

#include "util/expected.hpp"

namespace uncharted::net {

/// The mmap reader's OS surface. Methods keep the libc contract (-1 or
/// nullptr + errno on failure) so a fault injector can impersonate the
/// kernel faithfully.
class FileOps {
 public:
  virtual ~FileOps() = default;

  virtual int open_ro(const char* path) = 0;
  /// Size via fstat; -1 on failure (including unsizable fds like pipes).
  virtual long long size(int fd) = 0;
  /// PROT_READ/MAP_PRIVATE mapping of [0, len); nullptr on failure.
  virtual void* map_ro(std::size_t len, int fd) = 0;
  virtual int unmap(void* addr, std::size_t len) = 0;
  virtual ssize_t read(int fd, void* buf, std::size_t n) = 0;
  virtual int close(int fd) = 0;
};

/// Passthrough to the real kernel.
class RealFileOps final : public FileOps {
 public:
  int open_ro(const char* path) override;
  long long size(int fd) override;
  void* map_ro(std::size_t len, int fd) override;
  int unmap(void* addr, std::size_t len) override;
  ssize_t read(int fd, void* buf, std::size_t n) override;
  int close(int fd) override;
};

/// Shared process-wide passthrough (the default wherever FileOps* is null).
FileOps& real_file_ops();

/// A pcap file's bytes, mmap'd when possible, read into an owned buffer
/// otherwise. Move-only; the destructor unmaps. Spans returned by bytes()
/// — and every FrameView cut from them — are valid for the mapping's
/// lifetime, so keep it alive for the whole analysis.
class PcapMapping {
 public:
  static Result<PcapMapping> open(const std::string& path,
                                  FileOps* ops = nullptr);

  PcapMapping(PcapMapping&& other) noexcept { *this = std::move(other); }
  PcapMapping& operator=(PcapMapping&& other) noexcept;
  PcapMapping(const PcapMapping&) = delete;
  PcapMapping& operator=(const PcapMapping&) = delete;
  ~PcapMapping();

  std::span<const std::uint8_t> bytes() const {
    return mapped_ ? std::span<const std::uint8_t>(addr_, len_)
                   : std::span<const std::uint8_t>(owned_);
  }
  /// False means the read fallback populated an owned buffer instead.
  bool mapped() const { return mapped_; }

 private:
  PcapMapping() = default;

  FileOps* ops_ = nullptr;  ///< only set while a live mapping needs unmap
  const std::uint8_t* addr_ = nullptr;
  std::size_t len_ = 0;
  bool mapped_ = false;
  std::vector<std::uint8_t> owned_;
};

}  // namespace uncharted::net
