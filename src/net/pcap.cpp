#include "net/pcap.hpp"

#include <cstring>

#include "util/bytes.hpp"

namespace uncharted::net {

Result<PcapWriter> PcapWriter::open(const std::string& path, std::uint32_t snaplen) {
  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "wb"));
  if (!f) return Err("open-failed", path);

  ByteWriter hdr(24);
  hdr.u32le(kPcapMagic);
  hdr.u16le(2);  // version major
  hdr.u16le(4);  // version minor
  hdr.u32le(0);  // thiszone
  hdr.u32le(0);  // sigfigs
  hdr.u32le(snaplen);
  hdr.u32le(kLinkTypeEthernet);
  if (std::fwrite(hdr.view().data(), 1, hdr.size(), f.get()) != hdr.size()) {
    return Err("write-failed", path);
  }
  return PcapWriter(std::move(f), snaplen);
}

Status PcapWriter::write(Timestamp ts, std::span<const std::uint8_t> frame) {
  if (!file_) return Err("closed");
  std::uint32_t incl = static_cast<std::uint32_t>(frame.size());
  if (incl > snaplen_) incl = snaplen_;

  ByteWriter rec(16);
  rec.u32le(timestamp_sec(ts));
  rec.u32le(timestamp_usec(ts));
  rec.u32le(incl);
  rec.u32le(static_cast<std::uint32_t>(frame.size()));
  if (std::fwrite(rec.view().data(), 1, rec.size(), file_.get()) != rec.size() ||
      std::fwrite(frame.data(), 1, incl, file_.get()) != incl) {
    return Err("write-failed");
  }
  ++packets_;
  return Status::Ok();
}

Status PcapWriter::close() {
  if (!file_) return Status::Ok();
  std::FILE* raw = file_.release();
  if (std::fclose(raw) != 0) return Err("close-failed");
  return Status::Ok();
}

namespace {

Result<std::vector<std::uint8_t>> slurp(const std::string& path) {
  std::unique_ptr<std::FILE, decltype([](std::FILE* f) {
                    if (f) std::fclose(f);
                  })>
      f(std::fopen(path.c_str(), "rb"));
  if (!f) return Err("open-failed", path);
  std::fseek(f.get(), 0, SEEK_END);
  long size = std::ftell(f.get());
  std::fseek(f.get(), 0, SEEK_SET);
  if (size < 0) return Err("stat-failed", path);
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(size));
  if (!buf.empty() && std::fread(buf.data(), 1, buf.size(), f.get()) != buf.size()) {
    return Err("read-failed", path);
  }
  return buf;
}

}  // namespace

Result<std::vector<CapturedPacket>> PcapReader::read_file(const std::string& path) {
  auto buf = slurp(path);
  if (!buf) return buf.error();
  return read_buffer(buf.value());
}

Result<PcapReader::TolerantRead> PcapReader::read_file_tolerant(const std::string& path) {
  auto buf = slurp(path);
  if (!buf) return buf.error();
  return read_buffer_tolerant(buf.value());
}

Result<std::vector<CapturedPacket>> PcapReader::read_buffer(
    std::span<const std::uint8_t> data) {
  auto read = read_buffer_tolerant(data);
  if (!read) return read.error();
  if (read->truncated_tail) return Err("truncated", read->warning);
  return std::move(read->packets);
}

Result<PcapReader::TolerantRead> PcapReader::read_buffer_tolerant(
    std::span<const std::uint8_t> data) {
  ByteReader r(data);
  auto magic = r.u32le();
  if (!magic) return Err("truncated", "pcap global header");
  bool swapped;
  if (magic.value() == kPcapMagic) {
    swapped = false;
  } else if (magic.value() == kPcapMagicSwapped) {
    swapped = true;
  } else {
    return Err("bad-magic", "not a classic pcap file");
  }
  auto u16 = [&]() { return swapped ? r.u16be() : r.u16le(); };
  auto u32 = [&]() { return swapped ? r.u32be() : r.u32le(); };

  auto vmaj = u16();
  auto vmin = u16();
  if (!vmin) return Err("truncated", "pcap version");
  (void)vmaj;
  if (!r.skip(8).ok()) return Err("truncated", "pcap tz/sigfigs");
  auto snaplen = u32();
  auto linktype = u32();
  if (!linktype) return Err("truncated", "pcap linktype");
  (void)snaplen;
  if (linktype.value() != kLinkTypeEthernet) {
    return Err("bad-linktype", std::to_string(linktype.value()));
  }

  TolerantRead out;
  while (!r.empty()) {
    auto sec = u32();
    auto usec = u32();
    auto incl = u32();
    auto orig = u32();
    if (!orig) {
      out.truncated_tail = true;
      out.warning = "pcap record header cut short after " +
                    std::to_string(out.packets.size()) + " packets";
      break;
    }
    auto payload = r.bytes(incl.value());
    if (!payload) {
      out.truncated_tail = true;
      out.warning = "pcap record body cut short after " +
                    std::to_string(out.packets.size()) + " packets";
      break;
    }
    CapturedPacket pkt;
    pkt.ts = make_timestamp(sec.value(), usec.value());
    pkt.original_length = orig.value();
    pkt.data.assign(payload->begin(), payload->end());
    out.packets.push_back(std::move(pkt));
  }
  return out;
}

}  // namespace uncharted::net
