#include "net/pcap.hpp"

#include <cstring>

#include "util/bytes.hpp"

namespace uncharted::net {

Result<PcapWriter> PcapWriter::open(const std::string& path, std::uint32_t snaplen) {
  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "wb"));
  if (!f) return Err("open-failed", path);

  ByteWriter hdr(24);
  hdr.u32le(kPcapMagic);
  hdr.u16le(2);  // version major
  hdr.u16le(4);  // version minor
  hdr.u32le(0);  // thiszone
  hdr.u32le(0);  // sigfigs
  hdr.u32le(snaplen);
  hdr.u32le(kLinkTypeEthernet);
  if (std::fwrite(hdr.view().data(), 1, hdr.size(), f.get()) != hdr.size()) {
    return Err("write-failed", path);
  }
  return PcapWriter(std::move(f), snaplen);
}

Status PcapWriter::write(Timestamp ts, std::span<const std::uint8_t> frame) {
  if (!file_) return Err("closed");
  std::uint32_t incl = static_cast<std::uint32_t>(frame.size());
  if (incl > snaplen_) incl = snaplen_;

  ByteWriter rec(16);
  rec.u32le(timestamp_sec(ts));
  rec.u32le(timestamp_usec(ts));
  rec.u32le(incl);
  rec.u32le(static_cast<std::uint32_t>(frame.size()));
  if (std::fwrite(rec.view().data(), 1, rec.size(), file_.get()) != rec.size() ||
      std::fwrite(frame.data(), 1, incl, file_.get()) != incl) {
    return Err("write-failed");
  }
  ++packets_;
  return Status::Ok();
}

Status PcapWriter::close() {
  if (!file_) return Status::Ok();
  std::FILE* raw = file_.release();
  if (std::fclose(raw) != 0) return Err("close-failed");
  return Status::Ok();
}

std::vector<FrameView> as_frame_views(const std::vector<CapturedPacket>& packets) {
  std::vector<FrameView> views;
  views.reserve(packets.size());
  for (const auto& pkt : packets) {
    views.push_back(FrameView{pkt.ts, pkt.original_length, pkt.data});
  }
  return views;
}

Result<PcapCursor> PcapCursor::open(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  auto magic = r.u32le();
  if (!magic) return Err("truncated", "pcap global header");
  bool swapped;
  if (magic.value() == kPcapMagic) {
    swapped = false;
  } else if (magic.value() == kPcapMagicSwapped) {
    swapped = true;
  } else {
    return Err("bad-magic", "not a classic pcap file");
  }
  auto u16 = [&]() { return swapped ? r.u16be() : r.u16le(); };
  auto u32 = [&]() { return swapped ? r.u32be() : r.u32le(); };

  auto vmaj = u16();
  auto vmin = u16();
  if (!vmin) return Err("truncated", "pcap version");
  (void)vmaj;
  if (!r.skip(8).ok()) return Err("truncated", "pcap tz/sigfigs");
  auto snaplen = u32();
  auto linktype = u32();
  if (!linktype) return Err("truncated", "pcap linktype");
  (void)snaplen;
  if (linktype.value() != kLinkTypeEthernet) {
    return Err("bad-linktype", std::to_string(linktype.value()));
  }
  return PcapCursor(data, r.position(), swapped);
}

bool PcapCursor::next(FrameView& out) {
  if (done_ || offset_ >= data_.size()) return false;
  ByteReader r(data_.subspan(offset_));
  auto u32 = [&]() { return swapped_ ? r.u32be() : r.u32le(); };
  auto sec = u32();
  auto usec = u32();
  auto incl = u32();
  auto orig = u32();
  if (!orig) {
    done_ = true;
    truncated_tail_ = true;
    warning_ = "pcap record header cut short after " + std::to_string(records_) +
               " packets";
    return false;
  }
  auto payload = r.bytes(incl.value());
  if (!payload) {
    done_ = true;
    truncated_tail_ = true;
    warning_ = "pcap record body cut short after " + std::to_string(records_) +
               " packets";
    return false;
  }
  out.ts = make_timestamp(sec.value(), usec.value());
  out.original_length = orig.value();
  out.data = payload.value();
  offset_ += r.position();
  ++records_;
  return true;
}

Result<std::vector<CapturedPacket>> PcapReader::read_file(const std::string& path) {
  auto read = read_file_tolerant(path);
  if (!read) return read.error();
  if (read->truncated_tail) return Err("truncated", read->warning);
  return std::move(read->packets);
}

Result<PcapReader::TolerantRead> PcapReader::read_file_tolerant(const std::string& path) {
  std::unique_ptr<std::FILE, decltype([](std::FILE* f) {
                    if (f) std::fclose(f);
                  })>
      f(std::fopen(path.c_str(), "rb"));
  if (!f) return Err("open-failed", path);

  // File size bounds every record's claimed length, so a corrupt header
  // cannot demand a multi-gigabyte allocation the file could never back.
  std::fseek(f.get(), 0, SEEK_END);
  long file_size = std::ftell(f.get());
  std::fseek(f.get(), 0, SEEK_SET);
  if (file_size < 0) return Err("stat-failed", path);
  std::size_t remaining = static_cast<std::size_t>(file_size);

  // Global header, strict: nothing after a damaged one can be interpreted.
  std::uint8_t hdr[24];
  if (std::fread(hdr, 1, sizeof hdr, f.get()) != sizeof hdr) {
    return Err("truncated", "pcap global header");
  }
  remaining -= sizeof hdr;
  auto cursor = PcapCursor::open(std::span<const std::uint8_t>(hdr, sizeof hdr));
  if (!cursor) return cursor.error();
  bool swapped = false;
  {
    std::uint32_t magic = static_cast<std::uint32_t>(hdr[0]) |
                          static_cast<std::uint32_t>(hdr[1]) << 8 |
                          static_cast<std::uint32_t>(hdr[2]) << 16 |
                          static_cast<std::uint32_t>(hdr[3]) << 24;
    swapped = magic == kPcapMagicSwapped;
  }

  // Records stream straight from the file into each packet's own buffer —
  // no whole-file intermediate copy (the old path slurped the file and
  // then duplicated every payload out of the slurp buffer).
  TolerantRead out;
  for (;;) {
    std::uint8_t rec[16];
    std::size_t got = std::fread(rec, 1, sizeof rec, f.get());
    if (got == 0) break;  // clean end of file
    if (got < sizeof rec) {
      out.truncated_tail = true;
      out.warning = "pcap record header cut short after " +
                    std::to_string(out.packets.size()) + " packets";
      break;
    }
    remaining -= sizeof rec;
    ByteReader r(rec);
    auto u32 = [&]() { return swapped ? r.u32be() : r.u32le(); };
    std::uint32_t sec = u32().value();
    std::uint32_t usec = u32().value();
    std::uint32_t incl = u32().value();
    std::uint32_t orig = u32().value();

    if (incl > remaining) {
      out.truncated_tail = true;
      out.warning = "pcap record body cut short after " +
                    std::to_string(out.packets.size()) + " packets";
      break;
    }
    CapturedPacket pkt;
    pkt.ts = make_timestamp(sec, usec);
    pkt.original_length = orig;
    pkt.data.resize(incl);
    if (incl > 0 && std::fread(pkt.data.data(), 1, incl, f.get()) != incl) {
      out.truncated_tail = true;
      out.warning = "pcap record body cut short after " +
                    std::to_string(out.packets.size()) + " packets";
      break;
    }
    remaining -= incl;
    out.packets.push_back(std::move(pkt));
  }
  return out;
}

Result<std::vector<CapturedPacket>> PcapReader::read_buffer(
    std::span<const std::uint8_t> data) {
  auto read = read_buffer_tolerant(data);
  if (!read) return read.error();
  if (read->truncated_tail) return Err("truncated", read->warning);
  return std::move(read->packets);
}

Result<PcapReader::TolerantRead> PcapReader::read_buffer_tolerant(
    std::span<const std::uint8_t> data) {
  auto cursor = PcapCursor::open(data);
  if (!cursor) return cursor.error();

  TolerantRead out;
  FrameView view;
  while (cursor->next(view)) {
    CapturedPacket pkt;
    pkt.ts = view.ts;
    pkt.original_length = view.original_length;
    pkt.data.assign(view.data.begin(), view.data.end());
    out.packets.push_back(std::move(pkt));
  }
  out.truncated_tail = cursor->truncated_tail();
  out.warning = cursor->warning();
  return out;
}

}  // namespace uncharted::net
