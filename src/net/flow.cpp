#include "net/flow.hpp"

#include <algorithm>
#include <iterator>

namespace uncharted::net {

std::string FlowKey::str() const {
  return src_ip.str() + ":" + std::to_string(src_port) + " -> " + dst_ip.str() + ":" +
         std::to_string(dst_port);
}

void FlowKey::save(ByteWriter& w) const {
  w.u32le(src_ip.value);
  w.u16le(src_port);
  w.u32le(dst_ip.value);
  w.u16le(dst_port);
}

Result<FlowKey> FlowKey::load(ByteReader& r) {
  FlowKey k;
  auto sip = r.u32le();
  auto sport = r.u16le();
  auto dip = r.u32le();
  auto dport = r.u16le();
  if (!dport) return dport.error();
  k.src_ip.value = sip.value();
  k.src_port = sport.value();
  k.dst_ip.value = dip.value();
  k.dst_port = dport.value();
  return k;
}

void FlowTable::add(Timestamp ts, const DecodedFrame& frame) {
  FlowKey dir{frame.ip.src, frame.tcp.src_port, frame.ip.dst, frame.tcp.dst_port};
  FlowKey canon = dir.canonical();

  std::uint64_t hash = flow_key_hash(canon);
  State* stp = cache_.find(canon, hash);
  bool inserted = false;
  if (stp == nullptr) {
    auto [it, fresh] = table_.try_emplace(canon);
    stp = &it->second;
    inserted = fresh;
    cache_.put(canon, hash, stp);
  }
  State& st = *stp;
  FlowRecord& rec = st.record;

  if (inserted) {
    rec.key = dir;  // provisional orientation: first packet's direction
    rec.first_ts = ts;
  }
  rec.last_ts = std::max(rec.last_ts, ts);
  rec.first_ts = std::min(rec.first_ts, ts);
  ++rec.packets;
  rec.bytes += frame.payload.size();

  bool is_initial_syn = frame.tcp.syn() && !frame.tcp.ack_set();
  if (is_initial_syn && !st.oriented) {
    // The SYN fixes the initiator; re-orient the record.
    if (!(rec.key == dir)) std::swap(rec.packets_fwd, rec.packets_rev);
    rec.key = dir;
    st.oriented = true;
    st.syn_seq = frame.tcp.seq;
  }
  if (rec.key == dir) {
    ++rec.packets_fwd;
  } else {
    ++rec.packets_rev;
  }

  if (is_initial_syn) rec.saw_syn = true;
  if (frame.tcp.syn() && frame.tcp.ack_set()) rec.saw_synack = true;
  if (frame.tcp.fin()) rec.saw_fin = true;
  if (frame.tcp.rst()) {
    rec.saw_rst = true;
    // RST from the responder before any SYN-ACK => connection refused.
    if (rec.saw_syn && !rec.saw_synack && !(rec.key == dir)) {
      rec.syn_rejected_with_rst = true;
    }
  }
}

std::size_t FlowTable::evict_lru(std::size_t max_entries) {
  cache_.invalidate();  // eviction erases nodes; cached pointers may die
  std::size_t evicted = 0;
  while (table_.size() > max_entries) {
    auto victim = table_.begin();
    for (auto it = std::next(table_.begin()); it != table_.end(); ++it) {
      if (it->second.record.last_ts < victim->second.record.last_ts) victim = it;
    }
    table_.erase(victim);
    ++evicted;
  }
  return evicted;
}

void FlowTable::merge(FlowTable&& other) {
  cache_.invalidate();
  other.cache_.invalidate();
  for (auto& [key, theirs] : other.table_) {
    auto [it, inserted] = table_.try_emplace(key, std::move(theirs));
    if (inserted) continue;
    State& ours = it->second;
    FlowRecord& a = ours.record;
    const FlowRecord& b = theirs.record;
    // Same connection seen by both sides: prefer the SYN-oriented key.
    bool same_dir = a.key == b.key;
    if (!ours.oriented && theirs.oriented) {
      if (!same_dir) std::swap(a.packets_fwd, a.packets_rev);
      a.key = b.key;
      ours.oriented = true;
      ours.syn_seq = theirs.syn_seq;
      same_dir = true;
    }
    a.first_ts = std::min(a.first_ts, b.first_ts);
    a.last_ts = std::max(a.last_ts, b.last_ts);
    a.packets += b.packets;
    a.bytes += b.bytes;
    a.packets_fwd += same_dir ? b.packets_fwd : b.packets_rev;
    a.packets_rev += same_dir ? b.packets_rev : b.packets_fwd;
    a.saw_syn |= b.saw_syn;
    a.saw_synack |= b.saw_synack;
    a.saw_fin |= b.saw_fin;
    a.saw_rst |= b.saw_rst;
    a.syn_rejected_with_rst |= b.syn_rejected_with_rst;
  }
  other.table_.clear();
}

namespace {

void save_record(ByteWriter& w, const FlowRecord& rec) {
  rec.key.save(w);
  w.u64le(rec.first_ts);
  w.u64le(rec.last_ts);
  w.u64le(rec.packets);
  w.u64le(rec.bytes);
  w.u64le(rec.packets_fwd);
  w.u64le(rec.packets_rev);
  std::uint8_t flags = 0;
  if (rec.saw_syn) flags |= 0x01;
  if (rec.saw_synack) flags |= 0x02;
  if (rec.saw_fin) flags |= 0x04;
  if (rec.saw_rst) flags |= 0x08;
  if (rec.syn_rejected_with_rst) flags |= 0x10;
  w.u8(flags);
}

Result<FlowRecord> load_record(ByteReader& r) {
  FlowRecord rec;
  auto key = FlowKey::load(r);
  if (!key) return key.error();
  rec.key = key.value();
  auto first_ts = r.u64le();
  auto last_ts = r.u64le();
  auto packets = r.u64le();
  auto bytes = r.u64le();
  auto fwd = r.u64le();
  auto rev = r.u64le();
  auto flags = r.u8();
  if (!flags) return flags.error();
  rec.first_ts = first_ts.value();
  rec.last_ts = last_ts.value();
  rec.packets = packets.value();
  rec.bytes = bytes.value();
  rec.packets_fwd = fwd.value();
  rec.packets_rev = rev.value();
  rec.saw_syn = (flags.value() & 0x01) != 0;
  rec.saw_synack = (flags.value() & 0x02) != 0;
  rec.saw_fin = (flags.value() & 0x04) != 0;
  rec.saw_rst = (flags.value() & 0x08) != 0;
  rec.syn_rejected_with_rst = (flags.value() & 0x10) != 0;
  return rec;
}

}  // namespace

void FlowTable::save(ByteWriter& w) const {
  w.u32le(static_cast<std::uint32_t>(table_.size()));
  for (const auto& [key, st] : table_) {
    save_record(w, st.record);
    w.u8(st.oriented ? 1 : 0);
    w.u8(st.syn_seq.has_value() ? 1 : 0);
    if (st.syn_seq) w.u32le(*st.syn_seq);
  }
}

Status FlowTable::load(ByteReader& r) {
  auto count = r.u32le();
  if (!count) return count.error();
  cache_.invalidate();
  table_.clear();
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto rec = load_record(r);
    if (!rec) return rec.error();
    State st;
    st.record = rec.value();
    auto oriented = r.u8();
    auto has_syn = r.u8();
    if (!has_syn) return has_syn.error();
    st.oriented = oriented.value() != 0;
    if (has_syn.value()) {
      auto seq = r.u32le();
      if (!seq) return seq.error();
      st.syn_seq = seq.value();
    }
    table_[st.record.key.canonical()] = std::move(st);
  }
  return Status::Ok();
}

std::vector<FlowRecord> FlowTable::flows() const {
  std::vector<FlowRecord> out;
  out.reserve(table_.size());
  for (const auto& [key, st] : table_) out.push_back(st.record);
  std::sort(out.begin(), out.end(), [](const FlowRecord& a, const FlowRecord& b) {
    return a.first_ts < b.first_ts;
  });
  return out;
}

}  // namespace uncharted::net
