#include "net/flow.hpp"

#include <algorithm>

namespace uncharted::net {

FlowKey FlowKey::canonical() const {
  FlowKey rev = reversed();
  return (*this <= rev) ? *this : rev;
}

std::string FlowKey::str() const {
  return src_ip.str() + ":" + std::to_string(src_port) + " -> " + dst_ip.str() + ":" +
         std::to_string(dst_port);
}

void FlowTable::add(Timestamp ts, const DecodedFrame& frame) {
  FlowKey dir{frame.ip.src, frame.tcp.src_port, frame.ip.dst, frame.tcp.dst_port};
  FlowKey canon = dir.canonical();

  auto [it, inserted] = table_.try_emplace(canon);
  State& st = it->second;
  FlowRecord& rec = st.record;

  if (inserted) {
    rec.key = dir;  // provisional orientation: first packet's direction
    rec.first_ts = ts;
  }
  rec.last_ts = std::max(rec.last_ts, ts);
  rec.first_ts = std::min(rec.first_ts, ts);
  ++rec.packets;
  rec.bytes += frame.payload.size();

  bool is_initial_syn = frame.tcp.syn() && !frame.tcp.ack_set();
  if (is_initial_syn && !st.oriented) {
    // The SYN fixes the initiator; re-orient the record.
    if (!(rec.key == dir)) std::swap(rec.packets_fwd, rec.packets_rev);
    rec.key = dir;
    st.oriented = true;
    st.syn_seq = frame.tcp.seq;
  }
  if (rec.key == dir) {
    ++rec.packets_fwd;
  } else {
    ++rec.packets_rev;
  }

  if (is_initial_syn) rec.saw_syn = true;
  if (frame.tcp.syn() && frame.tcp.ack_set()) rec.saw_synack = true;
  if (frame.tcp.fin()) rec.saw_fin = true;
  if (frame.tcp.rst()) {
    rec.saw_rst = true;
    // RST from the responder before any SYN-ACK => connection refused.
    if (rec.saw_syn && !rec.saw_synack && !(rec.key == dir)) {
      rec.syn_rejected_with_rst = true;
    }
  }
}

std::vector<FlowRecord> FlowTable::flows() const {
  std::vector<FlowRecord> out;
  out.reserve(table_.size());
  for (const auto& [key, st] : table_) out.push_back(st.record);
  std::sort(out.begin(), out.end(), [](const FlowRecord& a, const FlowRecord& b) {
    return a.first_ts < b.first_ts;
  });
  return out;
}

}  // namespace uncharted::net
