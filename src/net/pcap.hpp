// Classic pcap (tcpdump) file format reader and writer.
//
// Implemented from scratch: magic 0xa1b2c3d4 (microsecond timestamps),
// version 2.4, link type Ethernet (1). Both native and byte-swapped files
// are readable. No libpcap dependency.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/expected.hpp"
#include "util/timebase.hpp"

namespace uncharted::net {

constexpr std::uint32_t kPcapMagic = 0xa1b2c3d4;
constexpr std::uint32_t kPcapMagicSwapped = 0xd4c3b2a1;
constexpr std::uint32_t kLinkTypeEthernet = 1;
constexpr std::uint32_t kDefaultSnapLen = 65535;

/// One captured record: timestamp plus raw link-layer bytes.
struct CapturedPacket {
  Timestamp ts = 0;
  std::uint32_t original_length = 0;  ///< length on the wire (>= data.size())
  std::vector<std::uint8_t> data;     ///< possibly truncated to snaplen
};

/// Zero-copy view of one captured record: the span references the pcap
/// buffer it was cut from (an mmap'd file or an owned byte vector), which
/// must outlive the view. The ingest hot path runs on these; CapturedPacket
/// remains the owning form for callers that must hold packets past the
/// buffer (streaming deferral queues, fault-injection rewrites).
struct FrameView {
  Timestamp ts = 0;
  std::uint32_t original_length = 0;
  std::span<const std::uint8_t> data;
};

/// Borrows owning packets as views (spans into each packet's buffer).
std::vector<FrameView> as_frame_views(const std::vector<CapturedPacket>& packets);

/// Forward cursor over pcap bytes yielding FrameViews without copying a
/// single payload byte. Parses the global header at open; next() walks
/// records until the end or a truncated tail (which is reported, not
/// fatal — a crashed or still-writing tcpdump leaves exactly that).
class PcapCursor {
 public:
  /// Validates the global header. Errors: truncation, bad magic, non-
  /// Ethernet link type. Byte-swapped files are readable.
  static Result<PcapCursor> open(std::span<const std::uint8_t> data);

  /// True and fills `out` while complete records remain.
  bool next(FrameView& out);

  /// The file ended mid-record (only meaningful once next() returned false).
  bool truncated_tail() const { return truncated_tail_; }
  /// Human-readable tail diagnosis; empty unless truncated_tail().
  const std::string& warning() const { return warning_; }

  std::uint64_t records() const { return records_; }
  /// Byte offset of the next unread record — a resume cursor over the
  /// mapped file.
  std::size_t offset() const { return offset_; }

 private:
  PcapCursor(std::span<const std::uint8_t> data, std::size_t offset, bool swapped)
      : data_(data), offset_(offset), swapped_(swapped) {}

  std::span<const std::uint8_t> data_;
  std::size_t offset_ = 0;
  bool swapped_ = false;
  bool done_ = false;
  bool truncated_tail_ = false;
  std::uint64_t records_ = 0;
  std::string warning_;
};

/// Streams packets into a pcap file.
class PcapWriter {
 public:
  /// Creates/truncates `path` and writes the global header.
  static Result<PcapWriter> open(const std::string& path,
                                 std::uint32_t snaplen = kDefaultSnapLen);

  PcapWriter(PcapWriter&&) noexcept = default;
  PcapWriter& operator=(PcapWriter&&) noexcept = default;
  ~PcapWriter() = default;

  /// Appends one record; frames longer than snaplen are truncated.
  Status write(Timestamp ts, std::span<const std::uint8_t> frame);

  std::uint64_t packets_written() const { return packets_; }

  /// Flushes and closes; further writes are invalid.
  Status close();

 private:
  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f) std::fclose(f);
    }
  };

  PcapWriter(std::unique_ptr<std::FILE, FileCloser> file, std::uint32_t snaplen)
      : file_(std::move(file)), snaplen_(snaplen) {}

  std::unique_ptr<std::FILE, FileCloser> file_;
  std::uint32_t snaplen_;
  std::uint64_t packets_ = 0;
};

/// Reads a whole pcap file into memory (captures here are small: hours of
/// SCADA traffic is a few hundred MB at most; the paper's are far smaller).
class PcapReader {
 public:
  /// A tolerant read: every complete record, plus whether the file ended
  /// mid-record (a crashed or still-writing tcpdump leaves exactly this).
  struct TolerantRead {
    std::vector<CapturedPacket> packets;
    bool truncated_tail = false;
    std::string warning;  ///< non-empty iff truncated_tail
  };

  /// Parses the file; returns all records in capture order. A truncated
  /// final record is an error (strict mode).
  static Result<std::vector<CapturedPacket>> read_file(const std::string& path);

  /// Parses pcap bytes already in memory (used by tests).
  static Result<std::vector<CapturedPacket>> read_buffer(
      std::span<const std::uint8_t> data);

  /// Like read_file, but a truncated tail yields the complete prefix with
  /// a warning instead of an error. Header-level damage (bad magic, wrong
  /// link type) is still an error: nothing after it can be interpreted.
  static Result<TolerantRead> read_file_tolerant(const std::string& path);

  /// Tolerant parse of in-memory pcap bytes.
  static Result<TolerantRead> read_buffer_tolerant(std::span<const std::uint8_t> data);
};

}  // namespace uncharted::net
