// Decoded frame view: Ethernet + IPv4 + TCP + payload, with helpers to
// build frames (used by the simulator) and decode them (used by analysis).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "net/headers.hpp"
#include "util/expected.hpp"
#include "util/timebase.hpp"

namespace uncharted::net {

/// Fully decoded TCP/IPv4/Ethernet frame. Payload references the caller's
/// frame buffer; the buffer must outlive the DecodedFrame.
struct DecodedFrame {
  EthernetHeader eth;
  Ipv4Header ip;
  TcpHeader tcp;
  std::span<const std::uint8_t> payload;
};

/// Decodes an Ethernet frame expected to carry IPv4+TCP.
/// Errors: non-IPv4 ethertype, non-TCP protocol, truncation, bad checksum.
Result<DecodedFrame> decode_frame(std::span<const std::uint8_t> frame);

/// Fast-path decode: fills `out` and returns true, or returns false leaving
/// `out` unspecified. Accepts exactly the frames decode_frame() accepts —
/// decode_frame() routes its success path through this — but materializes
/// no Result (and no error detail), which matters at one call per captured
/// packet. Per-packet ingest loops that only branch on success use this.
inline bool decode_frame_into(std::span<const std::uint8_t> frame,
                              DecodedFrame& out) {
  ByteReader r(frame);
  auto eth = EthernetHeader::decode(r);
  if (!eth || eth->ether_type != kEtherTypeIpv4) return false;
  std::size_t ip_start = r.position();
  auto ip = Ipv4Header::decode(r);
  if (!ip || ip->protocol != kIpProtoTcp) return false;

  // The IP total length bounds the TCP segment; captures may carry Ethernet
  // padding beyond it which must not leak into the payload.
  std::size_t ip_total = ip->total_length;
  if (ip_total < Ipv4Header::kSize || ip_start + ip_total > frame.size()) {
    return false;
  }
  auto tcp = TcpHeader::decode(r);
  if (!tcp) return false;

  std::size_t payload_start = r.position();
  std::size_t segment_end = ip_start + ip_total;
  if (payload_start > segment_end) return false;

  out.eth = eth.value();
  out.ip = ip.value();
  out.tcp = tcp.value();
  out.payload = frame.subspan(payload_start, segment_end - payload_start);
  return true;
}

/// Cheapest possible look at a raw frame: the IPv4 source/destination
/// addresses, if the buffer is long enough to carry an IPv4 header after
/// Ethernet. No checksum validation, no TCP decode — this exists so the
/// shard dispatcher can route a packet by endpoint pair without paying for
/// (or depending on the success of) the full decode.
std::optional<std::pair<Ipv4Addr, Ipv4Addr>> peek_ipv4_pair(
    std::span<const std::uint8_t> frame);

/// Parameters for building one TCP segment as a full Ethernet frame.
struct TcpSegmentSpec {
  MacAddr src_mac;
  MacAddr dst_mac;
  Ipv4Addr src_ip;
  Ipv4Addr dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;
  std::uint16_t ip_id = 0;
  std::span<const std::uint8_t> payload;
};

/// Builds a complete frame with valid lengths and checksums.
std::vector<std::uint8_t> build_tcp_frame(const TcpSegmentSpec& spec);

}  // namespace uncharted::net
