#include "net/frame.hpp"

namespace uncharted::net {

Result<DecodedFrame> decode_frame(std::span<const std::uint8_t> frame) {
  // Success path: one fast decode, no intermediate Results. The slow path
  // below re-runs the per-layer decoders only to produce the error detail.
  {
    DecodedFrame out;
    if (decode_frame_into(frame, out)) return out;
  }
  ByteReader r(frame);
  auto eth = EthernetHeader::decode(r);
  if (!eth) return eth.error();
  if (eth->ether_type != kEtherTypeIpv4) {
    return Err("not-ipv4-ethertype", std::to_string(eth->ether_type));
  }
  std::size_t ip_start = r.position();
  auto ip = Ipv4Header::decode(r);
  if (!ip) return ip.error();
  if (ip->protocol != kIpProtoTcp) return Err("not-tcp", std::to_string(ip->protocol));

  // The IP total length bounds the TCP segment; captures may carry Ethernet
  // padding beyond it which must not leak into the payload.
  std::size_t ip_total = ip->total_length;
  if (ip_total < Ipv4Header::kSize || ip_start + ip_total > frame.size()) {
    return Err("bad-ip-length", std::to_string(ip_total));
  }
  std::size_t tcp_start = r.position();
  auto tcp = TcpHeader::decode(r);
  if (!tcp) return tcp.error();

  std::size_t payload_start = r.position();
  std::size_t segment_end = ip_start + ip_total;
  if (payload_start > segment_end) return Err("bad-tcp-length");

  DecodedFrame out;
  out.eth = eth.value();
  out.ip = ip.value();
  out.tcp = tcp.value();
  out.payload = frame.subspan(payload_start, segment_end - payload_start);
  (void)tcp_start;
  return out;
}

std::optional<std::pair<Ipv4Addr, Ipv4Addr>> peek_ipv4_pair(
    std::span<const std::uint8_t> frame) {
  // Ethernet (14) + IPv4 fixed header (20): src at 26, dst at 30.
  constexpr std::size_t kSrcOffset = EthernetHeader::kSize + 12;
  if (frame.size() < kSrcOffset + 8) return std::nullopt;
  std::uint16_t ether_type = static_cast<std::uint16_t>(frame[12] << 8 | frame[13]);
  if (ether_type != kEtherTypeIpv4) return std::nullopt;
  auto read_u32 = [&](std::size_t off) {
    return static_cast<std::uint32_t>(frame[off]) << 24 |
           static_cast<std::uint32_t>(frame[off + 1]) << 16 |
           static_cast<std::uint32_t>(frame[off + 2]) << 8 |
           static_cast<std::uint32_t>(frame[off + 3]);
  };
  Ipv4Addr src{read_u32(kSrcOffset)};
  Ipv4Addr dst{read_u32(kSrcOffset + 4)};
  return std::make_pair(src, dst);
}

std::vector<std::uint8_t> build_tcp_frame(const TcpSegmentSpec& spec) {
  Ipv4Header ip;
  ip.src = spec.src_ip;
  ip.dst = spec.dst_ip;
  ip.identification = spec.ip_id;
  ip.total_length = static_cast<std::uint16_t>(Ipv4Header::kSize + TcpHeader::kSize +
                                               spec.payload.size());

  TcpHeader tcp;
  tcp.src_port = spec.src_port;
  tcp.dst_port = spec.dst_port;
  tcp.seq = spec.seq;
  tcp.ack = spec.ack;
  tcp.flags = spec.flags;
  tcp.window = spec.window;

  EthernetHeader eth;
  eth.src = spec.src_mac;
  eth.dst = spec.dst_mac;

  ByteWriter w(EthernetHeader::kSize + ip.total_length);
  eth.encode(w);
  ip.encode(w);
  tcp.encode(w, ip, spec.payload);
  w.bytes(spec.payload);
  return w.take();
}

}  // namespace uncharted::net
