#include "net/headers.hpp"

#include <cstdio>

namespace uncharted::net {

MacAddr MacAddr::from_u64(std::uint64_t v) {
  MacAddr m;
  for (int i = 5; i >= 0; --i) {
    m.octets[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v & 0xff);
    v >>= 8;
  }
  return m;
}

std::string MacAddr::str() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", octets[0], octets[1],
                octets[2], octets[3], octets[4], octets[5]);
  return buf;
}

Ipv4Addr Ipv4Addr::from_octets(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                               std::uint8_t d) {
  return Ipv4Addr{(static_cast<std::uint32_t>(a) << 24) | (static_cast<std::uint32_t>(b) << 16) |
                  (static_cast<std::uint32_t>(c) << 8) | d};
}

Result<Ipv4Addr> Ipv4Addr::parse(const std::string& s) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char extra = 0;
  if (std::sscanf(s.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &extra) != 4 || a > 255 ||
      b > 255 || c > 255 || d > 255) {
    return Err("bad-ipv4", s);
  }
  return from_octets(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
                     static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
}

std::string Ipv4Addr::str() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value >> 24) & 0xff, (value >> 16) & 0xff,
                (value >> 8) & 0xff, value & 0xff);
  return buf;
}

void EthernetHeader::encode(ByteWriter& w) const {
  w.bytes(dst.octets);
  w.bytes(src.octets);
  w.u16be(ether_type);
}

Result<EthernetHeader> EthernetHeader::decode(ByteReader& r) {
  EthernetHeader h;
  auto dst = r.bytes(6);
  if (!dst) return dst.error();
  std::copy(dst->begin(), dst->end(), h.dst.octets.begin());
  auto src = r.bytes(6);
  if (!src) return src.error();
  std::copy(src->begin(), src->end(), h.src.octets.begin());
  auto type = r.u16be();
  if (!type) return type.error();
  h.ether_type = type.value();
  return h;
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i] << 8);
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

void Ipv4Header::encode(ByteWriter& w) const {
  ByteWriter hdr(kSize);
  hdr.u8(0x45);  // version 4, IHL 5
  hdr.u8(dscp_ecn);
  hdr.u16be(total_length);
  hdr.u16be(identification);
  hdr.u16be(static_cast<std::uint16_t>((static_cast<std::uint16_t>(flags) << 13) |
                                       (fragment_offset & 0x1fff)));
  hdr.u8(ttl);
  hdr.u8(protocol);
  hdr.u16be(0);  // checksum placeholder
  hdr.u32be(src.value);
  hdr.u32be(dst.value);
  std::uint16_t sum = internet_checksum(hdr.view());
  hdr.patch_u16be(10, sum);
  w.bytes(hdr.view());
}

Result<Ipv4Header> Ipv4Header::decode(ByteReader& r) {
  std::size_t start = r.position();
  auto ver_ihl = r.u8();
  if (!ver_ihl) return ver_ihl.error();
  if ((ver_ihl.value() >> 4) != 4) return Err("not-ipv4");
  std::size_t ihl = static_cast<std::size_t>(ver_ihl.value() & 0x0f) * 4;
  if (ihl < kSize) return Err("bad-ihl", std::to_string(ihl));

  Ipv4Header h;
  auto dscp = r.u8();
  auto len = r.u16be();
  auto id = r.u16be();
  auto fl = r.u16be();
  auto ttl = r.u8();
  auto proto = r.u8();
  auto sum = r.u16be();
  auto src = r.u32be();
  auto dst = r.u32be();
  if (!dst) return Err("truncated", "ipv4 header");
  h.dscp_ecn = dscp.value();
  h.total_length = len.value();
  h.identification = id.value();
  h.flags = static_cast<std::uint8_t>(fl.value() >> 13);
  h.fragment_offset = static_cast<std::uint16_t>(fl.value() & 0x1fff);
  h.ttl = ttl.value();
  h.protocol = proto.value();
  h.checksum = sum.value();
  h.src.value = src.value();
  h.dst.value = dst.value();

  if (h.fragment_offset != 0 || (h.flags & 0x01)) {
    return Err("fragmented", "IPv4 fragments unsupported in SCADA captures");
  }
  if (ihl > kSize) {
    auto skipped = r.skip(ihl - kSize);
    if (!skipped.ok()) return skipped.error();
  }
  // Verify checksum over the header bytes as captured.
  std::size_t end = r.position();
  r.seek(start);
  auto raw = r.bytes(end - start);
  if (internet_checksum(raw.value()) != 0) return Err("bad-ip-checksum");
  return h;
}

std::uint16_t tcp_checksum(const Ipv4Header& ip, std::span<const std::uint8_t> tcp_segment) {
  ByteWriter pseudo(12 + tcp_segment.size());
  pseudo.u32be(ip.src.value);
  pseudo.u32be(ip.dst.value);
  pseudo.u8(0);
  pseudo.u8(ip.protocol);
  pseudo.u16be(static_cast<std::uint16_t>(tcp_segment.size()));
  pseudo.bytes(tcp_segment);
  return internet_checksum(pseudo.view());
}

void TcpHeader::encode(ByteWriter& w, const Ipv4Header& ip,
                       std::span<const std::uint8_t> payload) const {
  ByteWriter seg(kSize + payload.size());
  seg.u16be(src_port);
  seg.u16be(dst_port);
  seg.u32be(seq);
  seg.u32be(ack);
  seg.u8(0x50);  // data offset 5 words, no options
  seg.u8(flags);
  seg.u16be(window);
  seg.u16be(0);  // checksum placeholder
  seg.u16be(urgent);
  seg.bytes(payload);
  std::uint16_t sum = tcp_checksum(ip, seg.view());
  seg.patch_u16be(16, sum);
  // Emit only the header; the caller appends the payload itself so the
  // payload bytes are written exactly once into the frame.
  w.bytes(seg.view().subspan(0, kSize));
}

Result<TcpHeader> TcpHeader::decode(ByteReader& r) {
  TcpHeader h;
  auto sp = r.u16be();
  auto dp = r.u16be();
  auto seq = r.u32be();
  auto ack = r.u32be();
  auto off = r.u8();
  auto flags = r.u8();
  auto win = r.u16be();
  auto sum = r.u16be();
  auto urg = r.u16be();
  if (!urg) return Err("truncated", "tcp header");
  h.src_port = sp.value();
  h.dst_port = dp.value();
  h.seq = seq.value();
  h.ack = ack.value();
  h.flags = flags.value();
  h.window = win.value();
  h.checksum = sum.value();
  h.urgent = urg.value();
  std::size_t data_offset = static_cast<std::size_t>(off.value() >> 4) * 4;
  if (data_offset < kSize) return Err("bad-tcp-offset", std::to_string(data_offset));
  if (data_offset > kSize) {
    auto skipped = r.skip(data_offset - kSize);
    if (!skipped.ok()) return skipped.error();
  }
  return h;
}

}  // namespace uncharted::net
