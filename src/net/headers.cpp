#include "net/headers.hpp"

#include <cstdio>

namespace uncharted::net {

MacAddr MacAddr::from_u64(std::uint64_t v) {
  MacAddr m;
  for (int i = 5; i >= 0; --i) {
    m.octets[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v & 0xff);
    v >>= 8;
  }
  return m;
}

std::string MacAddr::str() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", octets[0], octets[1],
                octets[2], octets[3], octets[4], octets[5]);
  return buf;
}

Ipv4Addr Ipv4Addr::from_octets(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                               std::uint8_t d) {
  return Ipv4Addr{(static_cast<std::uint32_t>(a) << 24) | (static_cast<std::uint32_t>(b) << 16) |
                  (static_cast<std::uint32_t>(c) << 8) | d};
}

Result<Ipv4Addr> Ipv4Addr::parse(const std::string& s) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char extra = 0;
  if (std::sscanf(s.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &extra) != 4 || a > 255 ||
      b > 255 || c > 255 || d > 255) {
    return Err("bad-ipv4", s);
  }
  return from_octets(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
                     static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
}

std::string Ipv4Addr::str() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value >> 24) & 0xff, (value >> 16) & 0xff,
                (value >> 8) & 0xff, value & 0xff);
  return buf;
}

void EthernetHeader::encode(ByteWriter& w) const {
  w.bytes(dst.octets);
  w.bytes(src.octets);
  w.u16be(ether_type);
}

void Ipv4Header::encode(ByteWriter& w) const {
  ByteWriter hdr(kSize);
  hdr.u8(0x45);  // version 4, IHL 5
  hdr.u8(dscp_ecn);
  hdr.u16be(total_length);
  hdr.u16be(identification);
  hdr.u16be(static_cast<std::uint16_t>((static_cast<std::uint16_t>(flags) << 13) |
                                       (fragment_offset & 0x1fff)));
  hdr.u8(ttl);
  hdr.u8(protocol);
  hdr.u16be(0);  // checksum placeholder
  hdr.u32be(src.value);
  hdr.u32be(dst.value);
  std::uint16_t sum = internet_checksum(hdr.view());
  hdr.patch_u16be(10, sum);
  w.bytes(hdr.view());
}

std::uint16_t tcp_checksum(const Ipv4Header& ip, std::span<const std::uint8_t> tcp_segment) {
  ByteWriter pseudo(12 + tcp_segment.size());
  pseudo.u32be(ip.src.value);
  pseudo.u32be(ip.dst.value);
  pseudo.u8(0);
  pseudo.u8(ip.protocol);
  pseudo.u16be(static_cast<std::uint16_t>(tcp_segment.size()));
  pseudo.bytes(tcp_segment);
  return internet_checksum(pseudo.view());
}

void TcpHeader::encode(ByteWriter& w, const Ipv4Header& ip,
                       std::span<const std::uint8_t> payload) const {
  ByteWriter seg(kSize + payload.size());
  seg.u16be(src_port);
  seg.u16be(dst_port);
  seg.u32be(seq);
  seg.u32be(ack);
  seg.u8(0x50);  // data offset 5 words, no options
  seg.u8(flags);
  seg.u16be(window);
  seg.u16be(0);  // checksum placeholder
  seg.u16be(urgent);
  seg.bytes(payload);
  std::uint16_t sum = tcp_checksum(ip, seg.view());
  seg.patch_u16be(16, sum);
  // Emit only the header; the caller appends the payload itself so the
  // payload bytes are written exactly once into the frame.
  w.bytes(seg.view().subspan(0, kSize));
}

}  // namespace uncharted::net
