// TCP stream reassembly with retransmission detection and degraded-mode
// gap handling.
//
// The paper found that "repeated U16/U32" anomalies were in fact TCP-layer
// retransmissions (§6.3.1), so the reassembler must (a) deliver each payload
// byte at most once in sequence order, and (b) report how many segments were
// retransmissions, per direction, so the application layer can distinguish
// genuine protocol repeats from link noise.
//
// Degraded captures add two requirements. A lost segment opens a hole that
// may never fill, so the out-of-order buffer is bounded (bytes + segment
// count); exceeding the cap — or reaching end of capture / a mid-stream
// RST — records a gap, skips next_seq_ ahead to the buffered data, and
// delivers what can still be delivered. Every anomaly is counted in
// StreamStats so the analyzer's DegradationReport can say exactly what was
// lost. Sequence wrap-around is handled via serial number arithmetic.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "net/flow.hpp"
#include "net/frame.hpp"
#include "util/arena.hpp"
#include "util/timebase.hpp"

namespace uncharted::net {

/// A contiguous chunk of application bytes delivered in stream order.
struct StreamChunk {
  Timestamp ts = 0;                 ///< timestamp of the segment that completed it
  std::vector<std::uint8_t> data;
};

/// Caps on the out-of-order buffer of one stream direction. When either is
/// exceeded the hole in front of the buffered data is abandoned (recorded
/// as a gap) and delivery skips ahead, bounding memory per direction.
struct ReassemblyLimits {
  std::size_t max_pending_bytes = 256 * 1024;
  std::size_t max_pending_segments = 64;
  /// A segment starting further than this ahead of next_seq_ is outside
  /// any plausible receive window — in practice a corrupted sequence
  /// number — and is discarded (counted as wild) rather than buffered,
  /// so one flipped bit cannot fake a multi-gigabyte hole.
  std::uint32_t max_window_bytes = 1 << 20;
};

/// Per-direction counters. All monotone over the life of the stream.
struct StreamStats {
  std::uint64_t retransmissions = 0;       ///< fully duplicate segments
  std::uint64_t overlapping_segments = 0;  ///< partial overlaps (head trimmed)
  std::uint64_t out_of_order = 0;          ///< segments buffered past a hole
  std::uint64_t delivered_bytes = 0;
  std::uint64_t gaps_skipped = 0;   ///< holes abandoned (cap, flush or RST)
  std::uint64_t lost_bytes = 0;     ///< width of abandoned holes + data dropped by RST
  std::uint64_t resets = 0;         ///< RST segments observed
  std::uint64_t aborted_with_pending = 0;  ///< RST while data was buffered
  std::uint64_t wild_segments = 0;  ///< discarded: start beyond max_window_bytes

  void accumulate(const StreamStats& o);
};

/// One direction of one connection.
class TcpStreamDirection {
 public:
  explicit TcpStreamDirection(ReassemblyLimits limits = {}) : limits_(limits) {}

  /// Feeds a segment; returns application chunks that became contiguous
  /// (possibly after skipping an abandoned hole).
  std::vector<StreamChunk> on_segment(Timestamp ts, const TcpHeader& tcp,
                                      std::span<const std::uint8_t> payload);

  /// Zero-copy delivery: the common in-order segment with nothing buffered
  /// is handed to `deliver(ts, payload)` as the borrowed span — no copy, no
  /// chunk allocation; the span is valid only during the call. Every other
  /// case (anchor, retransmission, overlap, out-of-order, drain behind a
  /// filled hole) falls back to on_segment() and delivers owned chunks.
  template <typename Deliver>
  void deliver_segment(Timestamp ts, const TcpHeader& tcp,
                       std::span<const std::uint8_t> payload, Deliver&& deliver) {
    if (initialized_ && pending_.empty() && !payload.empty() &&
        tcp.seq == next_seq_) {
      next_seq_ += static_cast<std::uint32_t>(payload.size());
      stats_.delivered_bytes += payload.size();
      deliver(ts, payload);
      return;
    }
    for (auto& chunk : on_segment(ts, tcp, payload)) {
      deliver(chunk.ts, std::span<const std::uint8_t>(chunk.data));
    }
  }

  /// A RST tore the stream down: buffered out-of-order data can never
  /// complete, so it is dropped (counted as lost) and the direction
  /// re-anchors on the next segment, if any.
  void on_reset(Timestamp ts);

  /// End of capture: abandons any remaining hole and delivers what was
  /// buffered behind it. Idempotent once pending data is drained.
  std::vector<StreamChunk> flush(Timestamp ts);

  const StreamStats& stats() const { return stats_; }
  std::uint64_t retransmitted_segments() const { return stats_.retransmissions; }
  std::uint64_t delivered_bytes() const { return stats_.delivered_bytes; }
  std::uint64_t out_of_order_segments() const { return stats_.out_of_order; }
  std::uint64_t overlapping_segments() const { return stats_.overlapping_segments; }

  /// Live bytes buffered out of order right now.
  std::size_t pending_bytes() const { return pending_bytes_; }

  /// The OOO slab's full footprint: live bytes plus arena waste (segments
  /// superseded by a longer overwrite, drained entries not yet reclaimed).
  /// This, not pending_bytes(), is what the direction actually holds in
  /// memory, so resource governance evicts against it. The slab is
  /// monotonic and reclaims everything at once whenever the buffer drains
  /// empty, so footprint == live bytes in the steady state.
  std::size_t slab_bytes() const { return slab_.bytes_used(); }

  /// Checkpoint serialization: anchor, OOO buffer and counters. Limits are
  /// configuration, not state — the loader supplies them.
  void save(ByteWriter& w) const;
  static Result<TcpStreamDirection> load(ByteReader& r, ReassemblyLimits limits);

 private:
  /// Appends now-contiguous pending buffers to `chunk`.
  void drain_contiguous(StreamChunk& chunk);
  /// Abandons the hole before the first pending buffer; returns the chunk
  /// delivered from behind it (empty data if nothing was pending).
  StreamChunk skip_hole(Timestamp ts);

  ReassemblyLimits limits_;
  bool initialized_ = false;
  std::uint32_t next_seq_ = 0;  ///< next expected sequence number
  /// OOO buffer: seq -> bytes held in slab_. Spans stay valid until the
  /// slab resets, which only happens once the map is empty.
  std::map<std::uint32_t, std::span<const std::uint8_t>> pending_;
  std::size_t pending_bytes_ = 0;
  util::MonotonicArena slab_{16 * 1024};  ///< backing store for pending_
  StreamStats stats_;
};

/// Reassembles both directions of every connection in a capture and hands
/// application chunks to a sink keyed by the directed flow.
class TcpReassembler {
 public:
  /// sink(directed_key, ts, data): invoked for every delivered chunk. For
  /// in-order traffic `data` borrows the caller's payload (valid only
  /// during the call); buffered deliveries borrow a transient chunk.
  /// Either way the sink must copy what it keeps.
  using Sink =
      std::function<void(const FlowKey&, Timestamp, std::span<const std::uint8_t>)>;

  explicit TcpReassembler(Sink sink, ReassemblyLimits limits = {})
      : sink_(std::move(sink)), limits_(limits) {}

  /// Feeds one decoded frame. RST flags reset both directions of the flow.
  void add(Timestamp ts, const DecodedFrame& frame);

  /// End of capture: flushes every direction through the sink.
  void flush(Timestamp ts);

  /// Total retransmitted segments across all directions.
  std::uint64_t retransmitted_segments() const;

  /// Retransmissions for one directed flow (0 if unseen).
  std::uint64_t retransmissions_for(const FlowKey& key) const;

  /// Sum of every direction's counters.
  StreamStats totals() const;

  /// Total bytes buffered out of order across all directions.
  std::size_t pending_bytes() const;

  /// Resource governance: while total pending exceeds `max_bytes`, force-
  /// flushes the direction holding the most buffered data — the hole in
  /// front of it is abandoned (a recorded gap) and what was buffered is
  /// delivered through the sink at time ts. Returns directions flushed.
  std::size_t evict_pending(Timestamp ts, std::size_t max_bytes);

  /// Checkpoint serialization of every tracked direction.
  void save(ByteWriter& w) const;
  Status load(ByteReader& r);

 private:
  Sink sink_;
  ReassemblyLimits limits_;
  std::map<FlowKey, TcpStreamDirection> directions_;
};

}  // namespace uncharted::net
