// TCP stream reassembly with retransmission detection.
//
// The paper found that "repeated U16/U32" anomalies were in fact TCP-layer
// retransmissions (§6.3.1), so the reassembler must (a) deliver each payload
// byte exactly once in sequence order, and (b) report how many segments were
// retransmissions, per direction, so the application layer can distinguish
// genuine protocol repeats from link noise.
//
// Scope: SCADA flows are low-rate and in-order in our captures except for
// deliberately injected duplicates; the reassembler buffers out-of-order
// segments and drops fully duplicate ones. Sequence wrap-around is handled
// via serial number arithmetic.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "net/flow.hpp"
#include "net/frame.hpp"
#include "util/timebase.hpp"

namespace uncharted::net {

/// A contiguous chunk of application bytes delivered in stream order.
struct StreamChunk {
  Timestamp ts = 0;                 ///< timestamp of the segment that completed it
  std::vector<std::uint8_t> data;
};

/// One direction of one connection.
class TcpStreamDirection {
 public:
  /// Feeds a segment; returns application chunks that became contiguous.
  std::vector<StreamChunk> on_segment(Timestamp ts, const TcpHeader& tcp,
                                      std::span<const std::uint8_t> payload);

  std::uint64_t retransmitted_segments() const { return retransmissions_; }
  std::uint64_t delivered_bytes() const { return delivered_; }
  std::uint64_t out_of_order_segments() const { return out_of_order_; }

 private:
  bool initialized_ = false;
  std::uint32_t next_seq_ = 0;  ///< next expected sequence number
  std::map<std::uint32_t, std::vector<std::uint8_t>> pending_;  ///< OOO buffer
  std::uint64_t retransmissions_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t out_of_order_ = 0;
};

/// Reassembles both directions of every connection in a capture and hands
/// application chunks to a sink keyed by the directed flow.
class TcpReassembler {
 public:
  /// sink(directed_key, chunk): invoked for every delivered chunk.
  using Sink = std::function<void(const FlowKey&, const StreamChunk&)>;

  explicit TcpReassembler(Sink sink) : sink_(std::move(sink)) {}

  /// Feeds one decoded frame.
  void add(Timestamp ts, const DecodedFrame& frame);

  /// Total retransmitted segments across all directions.
  std::uint64_t retransmitted_segments() const;

  /// Retransmissions for one directed flow (0 if unseen).
  std::uint64_t retransmissions_for(const FlowKey& key) const;

 private:
  Sink sink_;
  std::map<FlowKey, TcpStreamDirection> directions_;
};

}  // namespace uncharted::net
