// TCP flow tracking and lifetime classification.
//
// A flow is the paper's 4-tuple <srcIP, srcPort, dstIP, dstPort>. A flow is
// "short-lived" when the capture contains its establishing SYN and a
// terminating FIN/RST (§6.2); otherwise it started before or outlived the
// capture and is "long-lived".
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "util/bytes.hpp"
#include "util/ptrcache.hpp"
#include "util/rng.hpp"
#include "util/timebase.hpp"

namespace uncharted::net {

/// Directed 4-tuple key.
struct FlowKey {
  Ipv4Addr src_ip;
  std::uint16_t src_port = 0;
  Ipv4Addr dst_ip;
  std::uint16_t dst_port = 0;

  /// Key for the opposite direction.
  FlowKey reversed() const { return {dst_ip, dst_port, src_ip, src_port}; }
  /// Canonical (direction-agnostic) form: the lexicographically smaller
  /// endpoint first. Both directions of a connection share it. Inline: the
  /// per-packet flow and bandwidth paths canonicalize every frame.
  FlowKey canonical() const {
    FlowKey rev = reversed();
    return (*this <= rev) ? *this : rev;
  }

  /// Checkpoint serialization (12 bytes).
  void save(ByteWriter& w) const;
  static Result<FlowKey> load(ByteReader& r);

  std::string str() const;
  auto operator<=>(const FlowKey&) const = default;
};

/// SplitMix64 finalizer over the packed tuple. Used to index direct-mapped
/// caches on the per-packet path; quality matters more than speed of a
/// perfect pack, so overlapping fields are fine — the mixer scrambles them.
inline std::uint64_t flow_key_hash(const FlowKey& k) {
  SplitMix64 mix((static_cast<std::uint64_t>(k.src_ip.value) << 32) ^
                 k.dst_ip.value ^ (static_cast<std::uint64_t>(k.src_port) << 48) ^
                 (static_cast<std::uint64_t>(k.dst_port) << 16));
  return mix.next();
}

/// How a bidirectional connection's lifetime was observed.
enum class FlowLifetime {
  kShortLived,  ///< SYN and FIN/RST both inside the capture
  kLongLived,   ///< missing SYN or missing FIN/RST (spans the capture edge)
};

/// Aggregate record for one bidirectional connection.
struct FlowRecord {
  FlowKey key;  ///< canonical orientation; initiator if the SYN was seen
  Timestamp first_ts = 0;
  Timestamp last_ts = 0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;          ///< TCP payload bytes, both directions
  std::uint64_t packets_fwd = 0;    ///< in the key's direction
  std::uint64_t packets_rev = 0;
  bool saw_syn = false;             ///< initial SYN (no ACK)
  bool saw_synack = false;
  bool saw_fin = false;
  bool saw_rst = false;
  /// True when the peer answered the initial SYN with RST (connection
  /// refused) — the Fig 9 reject-backup pattern.
  bool syn_rejected_with_rst = false;

  double duration_seconds() const {
    return to_seconds(static_cast<DurationUs>(last_ts - first_ts));
  }
  FlowLifetime lifetime() const {
    return (saw_syn && (saw_fin || saw_rst)) ? FlowLifetime::kShortLived
                                             : FlowLifetime::kLongLived;
  }
};

/// Accumulates flows from decoded frames.
class FlowTable {
 public:
  /// Accounts one TCP frame at time ts.
  void add(Timestamp ts, const DecodedFrame& frame);

  /// All connections, ordered by first packet time.
  std::vector<FlowRecord> flows() const;

  std::size_t connection_count() const { return table_.size(); }

  /// Resource governance: evicts least-recently-active connections until at
  /// most `max_entries` remain. Returns how many were evicted. Evicted
  /// flows disappear from flows(); callers account them as pressure.
  std::size_t evict_lru(std::size_t max_entries);

  /// Folds another table into this one. Flow-sharded builders produce
  /// disjoint tables (a connection lives wholly in one shard), so the
  /// common case is a plain insert; a colliding connection is merged
  /// field-by-field, preferring the oriented (SYN-observed) record's key.
  void merge(FlowTable&& other);

  /// Checkpoint serialization of every tracked connection.
  void save(ByteWriter& w) const;
  Status load(ByteReader& r);

 private:
  struct State {
    FlowRecord record;
    bool oriented = false;  ///< key direction fixed by first SYN (or first pkt)
    std::optional<std::uint32_t> syn_seq;  ///< seq of the initial SYN
  };

  std::map<FlowKey, State> table_;  ///< keyed by canonical tuple
  /// Short-circuit for add(): both directions of a conversation share the
  /// canonical key, and taps interleave a modest set of connections, so a
  /// direct-mapped cache converts the per-packet map walk into one hash
  /// plus one key compare. Erase paths must invalidate it.
  DirectMappedCache<FlowKey, State, 1024> cache_;
};

}  // namespace uncharted::net
