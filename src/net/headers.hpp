// Ethernet II, IPv4 and TCP header codecs.
//
// Implemented from scratch (no libpcap/netinet) so the toolkit is fully
// self-contained and tests can construct malformed frames byte by byte.
// Only what SCADA captures need is supported: Ethernet II + IPv4 + TCP,
// no options beyond raw bytes, no fragmentation reassembly (SCADA APDUs are
// far below any sane MTU; fragments are surfaced as errors).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/expected.hpp"

namespace uncharted::net {

/// 48-bit MAC address.
struct MacAddr {
  std::array<std::uint8_t, 6> octets{};

  static MacAddr from_u64(std::uint64_t v);
  std::string str() const;
  bool operator==(const MacAddr&) const = default;
};

/// IPv4 address in host byte order.
struct Ipv4Addr {
  std::uint32_t value = 0;

  static Ipv4Addr from_octets(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d);
  /// Parses dotted-quad, e.g. "10.0.1.17".
  static Result<Ipv4Addr> parse(const std::string& s);
  std::string str() const;
  bool operator==(const Ipv4Addr&) const = default;
  auto operator<=>(const Ipv4Addr&) const = default;
};

constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;

struct EthernetHeader {
  MacAddr dst;
  MacAddr src;
  std::uint16_t ether_type = kEtherTypeIpv4;

  static constexpr std::size_t kSize = 14;
  void encode(ByteWriter& w) const;
  static Result<EthernetHeader> decode(ByteReader& r);
};

constexpr std::uint8_t kIpProtoTcp = 6;

struct Ipv4Header {
  std::uint8_t dscp_ecn = 0;
  std::uint16_t total_length = 0;  ///< header + payload, filled by encode helpers
  std::uint16_t identification = 0;
  std::uint8_t flags = 0x02;       ///< DF set by default
  std::uint16_t fragment_offset = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = kIpProtoTcp;
  std::uint16_t checksum = 0;      ///< computed on encode, verified on decode
  Ipv4Addr src;
  Ipv4Addr dst;

  static constexpr std::size_t kSize = 20;  ///< we neither emit nor keep options
  /// Encodes with a freshly computed checksum.
  void encode(ByteWriter& w) const;
  /// Decodes and checks version/IHL/checksum; skips options if present.
  static Result<Ipv4Header> decode(ByteReader& r);
};

/// TCP flag bits.
enum TcpFlags : std::uint8_t {
  kTcpFin = 0x01,
  kTcpSyn = 0x02,
  kTcpRst = 0x04,
  kTcpPsh = 0x08,
  kTcpAck = 0x10,
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;
  std::uint16_t checksum = 0;
  std::uint16_t urgent = 0;

  static constexpr std::size_t kSize = 20;  ///< no options emitted
  bool syn() const { return flags & kTcpSyn; }
  bool fin() const { return flags & kTcpFin; }
  bool rst() const { return flags & kTcpRst; }
  bool ack_set() const { return flags & kTcpAck; }

  /// Encodes with checksum over the pseudo-header + payload.
  void encode(ByteWriter& w, const Ipv4Header& ip,
              std::span<const std::uint8_t> payload) const;
  /// Decodes, skipping options per data-offset; does not verify checksum
  /// (captures routinely contain offloaded/zero checksums).
  static Result<TcpHeader> decode(ByteReader& r);
};

/// RFC 1071 Internet checksum over a byte range.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

/// TCP checksum with IPv4 pseudo-header.
std::uint16_t tcp_checksum(const Ipv4Header& ip, std::span<const std::uint8_t> tcp_segment);

}  // namespace uncharted::net
