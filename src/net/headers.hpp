// Ethernet II, IPv4 and TCP header codecs.
//
// Implemented from scratch (no libpcap/netinet) so the toolkit is fully
// self-contained and tests can construct malformed frames byte by byte.
// Only what SCADA captures need is supported: Ethernet II + IPv4 + TCP,
// no options beyond raw bytes, no fragmentation reassembly (SCADA APDUs are
// far below any sane MTU; fragments are surfaced as errors).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/expected.hpp"

namespace uncharted::net {

/// 48-bit MAC address.
struct MacAddr {
  std::array<std::uint8_t, 6> octets{};

  static MacAddr from_u64(std::uint64_t v);
  std::string str() const;
  bool operator==(const MacAddr&) const = default;
};

/// IPv4 address in host byte order.
struct Ipv4Addr {
  std::uint32_t value = 0;

  static Ipv4Addr from_octets(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d);
  /// Parses dotted-quad, e.g. "10.0.1.17".
  static Result<Ipv4Addr> parse(const std::string& s);
  std::string str() const;
  bool operator==(const Ipv4Addr&) const = default;
  auto operator<=>(const Ipv4Addr&) const = default;
};

constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;

struct EthernetHeader {
  MacAddr dst;
  MacAddr src;
  std::uint16_t ether_type = kEtherTypeIpv4;

  static constexpr std::size_t kSize = 14;
  void encode(ByteWriter& w) const;
  static Result<EthernetHeader> decode(ByteReader& r);
};

constexpr std::uint8_t kIpProtoTcp = 6;

struct Ipv4Header {
  std::uint8_t dscp_ecn = 0;
  std::uint16_t total_length = 0;  ///< header + payload, filled by encode helpers
  std::uint16_t identification = 0;
  std::uint8_t flags = 0x02;       ///< DF set by default
  std::uint16_t fragment_offset = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = kIpProtoTcp;
  std::uint16_t checksum = 0;      ///< computed on encode, verified on decode
  Ipv4Addr src;
  Ipv4Addr dst;

  static constexpr std::size_t kSize = 20;  ///< we neither emit nor keep options
  /// Encodes with a freshly computed checksum.
  void encode(ByteWriter& w) const;
  /// Decodes and checks version/IHL/checksum; skips options if present.
  static Result<Ipv4Header> decode(ByteReader& r);
};

/// TCP flag bits.
enum TcpFlags : std::uint8_t {
  kTcpFin = 0x01,
  kTcpSyn = 0x02,
  kTcpRst = 0x04,
  kTcpPsh = 0x08,
  kTcpAck = 0x10,
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;
  std::uint16_t checksum = 0;
  std::uint16_t urgent = 0;

  static constexpr std::size_t kSize = 20;  ///< no options emitted
  bool syn() const { return flags & kTcpSyn; }
  bool fin() const { return flags & kTcpFin; }
  bool rst() const { return flags & kTcpRst; }
  bool ack_set() const { return flags & kTcpAck; }

  /// Encodes with checksum over the pseudo-header + payload.
  void encode(ByteWriter& w, const Ipv4Header& ip,
              std::span<const std::uint8_t> payload) const;
  /// Decodes, skipping options per data-offset; does not verify checksum
  /// (captures routinely contain offloaded/zero checksums).
  static Result<TcpHeader> decode(ByteReader& r);
};

/// RFC 1071 Internet checksum over a byte range.
inline std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i] << 8);
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

/// TCP checksum with IPv4 pseudo-header.
std::uint16_t tcp_checksum(const Ipv4Header& ip, std::span<const std::uint8_t> tcp_segment);

// The three header decoders are inline: they run once per captured packet
// and an out-of-line call per layer was visible in the ingest profile.

inline Result<EthernetHeader> EthernetHeader::decode(ByteReader& r) {
  EthernetHeader h;
  auto dst = r.bytes(6);
  if (!dst) return dst.error();
  std::copy(dst->begin(), dst->end(), h.dst.octets.begin());
  auto src = r.bytes(6);
  if (!src) return src.error();
  std::copy(src->begin(), src->end(), h.src.octets.begin());
  auto type = r.u16be();
  if (!type) return type.error();
  h.ether_type = type.value();
  return h;
}

inline Result<Ipv4Header> Ipv4Header::decode(ByteReader& r) {
  std::size_t start = r.position();
  auto ver_ihl = r.u8();
  if (!ver_ihl) return ver_ihl.error();
  if ((ver_ihl.value() >> 4) != 4) return Err("not-ipv4");
  std::size_t ihl = static_cast<std::size_t>(ver_ihl.value() & 0x0f) * 4;
  if (ihl < kSize) return Err("bad-ihl", std::to_string(ihl));

  Ipv4Header h;
  auto dscp = r.u8();
  auto len = r.u16be();
  auto id = r.u16be();
  auto fl = r.u16be();
  auto ttl = r.u8();
  auto proto = r.u8();
  auto sum = r.u16be();
  auto src = r.u32be();
  auto dst = r.u32be();
  if (!dst) return Err("truncated", "ipv4 header");
  h.dscp_ecn = dscp.value();
  h.total_length = len.value();
  h.identification = id.value();
  h.flags = static_cast<std::uint8_t>(fl.value() >> 13);
  h.fragment_offset = static_cast<std::uint16_t>(fl.value() & 0x1fff);
  h.ttl = ttl.value();
  h.protocol = proto.value();
  h.checksum = sum.value();
  h.src.value = src.value();
  h.dst.value = dst.value();

  if (h.fragment_offset != 0 || (h.flags & 0x01)) {
    return Err("fragmented", "IPv4 fragments unsupported in SCADA captures");
  }
  if (ihl > kSize) {
    auto skipped = r.skip(ihl - kSize);
    if (!skipped.ok()) return skipped.error();
  }
  // Verify checksum over the header bytes as captured.
  std::size_t end = r.position();
  r.seek(start);
  auto raw = r.bytes(end - start);
  if (internet_checksum(raw.value()) != 0) return Err("bad-ip-checksum");
  return h;
}

inline Result<TcpHeader> TcpHeader::decode(ByteReader& r) {
  TcpHeader h;
  auto sp = r.u16be();
  auto dp = r.u16be();
  auto seq = r.u32be();
  auto ack = r.u32be();
  auto off = r.u8();
  auto flags = r.u8();
  auto win = r.u16be();
  auto sum = r.u16be();
  auto urg = r.u16be();
  if (!urg) return Err("truncated", "tcp header");
  h.src_port = sp.value();
  h.dst_port = dp.value();
  h.seq = seq.value();
  h.ack = ack.value();
  h.flags = flags.value();
  h.window = win.value();
  h.checksum = sum.value();
  h.urgent = urg.value();
  std::size_t data_offset = static_cast<std::size_t>(off.value() >> 4) * 4;
  if (data_offset < kSize) return Err("bad-tcp-offset", std::to_string(data_offset));
  if (data_offset > kSize) {
    auto skipped = r.skip(data_offset - kSize);
    if (!skipped.ok()) return skipped.error();
  }
  return h;
}

}  // namespace uncharted::net
