// APDU / APCI: the IEC 104 transport frame (start 0x68, length, 4 control
// octets, optional ASDU), covering I-, S- and U-format messages.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "iec104/asdu.hpp"
#include "util/bytes.hpp"
#include "util/expected.hpp"

namespace uncharted::iec104 {

enum class ApduFormat { kI, kS, kU };

std::string format_name(ApduFormat f);

/// A decoded APDU. For I-format, `asdu` is present (unless the ASDU failed
/// to decode, which the stream parser reports separately).
struct Apdu {
  ApduFormat format = ApduFormat::kU;
  std::uint16_t send_seq = 0;     ///< N(S), I-format only (0..32767)
  std::uint16_t recv_seq = 0;     ///< N(R), I- and S-format
  UFunction u_function = UFunction::kTestFrAct;  ///< U-format only
  std::optional<Asdu> asdu;       ///< I-format payload

  /// Builds an I-format APDU.
  static Apdu make_i(std::uint16_t ns, std::uint16_t nr, Asdu asdu);
  /// Builds an S-format acknowledgement.
  static Apdu make_s(std::uint16_t nr);
  /// Builds a U-format control message.
  static Apdu make_u(UFunction f);

  /// Serializes including the 0x68 start byte and length octet.
  /// Fails if the ASDU exceeds the 253-octet APDU limit.
  Result<std::vector<std::uint8_t>> encode(
      const CodecProfile& profile = CodecProfile::standard()) const;

  /// Paper Table 4 token: "S", "U1".."U32", or "I_36".
  std::string token() const;

  std::string str() const;
};

/// Decodes exactly one APDU from `r` (which may contain more bytes after
/// it; only the framed length is consumed). The ASDU of an I-format APDU is
/// decoded with `profile`; `arena` (optional) arena-allocates its object
/// storage — see Asdu::decode.
Result<Apdu> decode_apdu(ByteReader& r,
                         const CodecProfile& profile = CodecProfile::standard(),
                         std::pmr::memory_resource* arena = nullptr);

}  // namespace uncharted::iec104
