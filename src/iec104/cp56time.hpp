// CP56Time2a: the 7-octet binary time format of IEC 60870-5.
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.hpp"
#include "util/expected.hpp"
#include "util/timebase.hpp"

namespace uncharted::iec104 {

/// Seven-octet absolute time: milliseconds-of-minute, minute, hour,
/// day-of-month + day-of-week, month, two-digit year.
struct Cp56Time2a {
  std::uint16_t milliseconds = 0;  ///< 0..59999 (ms within the minute)
  std::uint8_t minute = 0;         ///< 0..59
  bool invalid = false;            ///< IV bit
  std::uint8_t hour = 0;           ///< 0..23
  bool summer_time = false;        ///< SU bit
  std::uint8_t day_of_month = 1;   ///< 1..31
  std::uint8_t day_of_week = 0;    ///< 1..7, 0 = unused
  std::uint8_t month = 1;          ///< 1..12
  std::uint8_t year = 0;           ///< 0..99; 70..99 = 19xx, 0..69 = 20xx

  static constexpr std::size_t kSize = 7;

  void encode(ByteWriter& w) const;
  static Result<Cp56Time2a> decode(ByteReader& r);

  /// Conversion to/from microseconds since the Unix epoch. Date math uses
  /// the proleptic Gregorian calendar; two-digit years map to 1970..2069
  /// (the IEC 60870-5 pivot), so the epoch round-trips exactly.
  static Cp56Time2a from_timestamp(Timestamp ts);
  Timestamp to_timestamp() const;

  /// "2020-10-27 14:03:22.512" formatting.
  std::string str() const;

  bool operator==(const Cp56Time2a&) const = default;
};

}  // namespace uncharted::iec104
