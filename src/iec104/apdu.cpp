#include "iec104/apdu.hpp"

#include "iec104/seq15.hpp"

namespace uncharted::iec104 {

std::string format_name(ApduFormat f) {
  switch (f) {
    case ApduFormat::kI: return "I";
    case ApduFormat::kS: return "S";
    case ApduFormat::kU: return "U";
  }
  return "?";
}

Apdu Apdu::make_i(std::uint16_t ns, std::uint16_t nr, Asdu a) {
  Apdu apdu;
  apdu.format = ApduFormat::kI;
  apdu.send_seq = seq15(ns);
  apdu.recv_seq = seq15(nr);
  apdu.asdu = std::move(a);
  return apdu;
}

Apdu Apdu::make_s(std::uint16_t nr) {
  Apdu apdu;
  apdu.format = ApduFormat::kS;
  apdu.recv_seq = seq15(nr);
  return apdu;
}

Apdu Apdu::make_u(UFunction f) {
  Apdu apdu;
  apdu.format = ApduFormat::kU;
  apdu.u_function = f;
  return apdu;
}

Result<std::vector<std::uint8_t>> Apdu::encode(const CodecProfile& profile) const {
  ByteWriter body;
  switch (format) {
    case ApduFormat::kI: {
      if (!asdu) return Err("missing-asdu", "I-format requires an ASDU");
      body.u8(static_cast<std::uint8_t>((send_seq << 1) & 0xfe));
      body.u8(static_cast<std::uint8_t>(send_seq >> 7));
      body.u8(static_cast<std::uint8_t>((recv_seq << 1) & 0xfe));
      body.u8(static_cast<std::uint8_t>(recv_seq >> 7));
      auto st = asdu->encode(body, profile);
      if (!st.ok()) return st.error();
      break;
    }
    case ApduFormat::kS: {
      body.u8(0x01);
      body.u8(0x00);
      body.u8(static_cast<std::uint8_t>((recv_seq << 1) & 0xfe));
      body.u8(static_cast<std::uint8_t>(recv_seq >> 7));
      break;
    }
    case ApduFormat::kU: {
      body.u8(static_cast<std::uint8_t>(0x03 | static_cast<std::uint8_t>(u_function)));
      body.u8(0x00);
      body.u8(0x00);
      body.u8(0x00);
      break;
    }
  }
  if (body.size() > kMaxApduLength) {
    return Err("apdu-too-long", std::to_string(body.size()));
  }
  ByteWriter out(body.size() + 2);
  out.u8(kStartByte);
  out.u8(static_cast<std::uint8_t>(body.size()));
  out.bytes(body.view());
  return out.take();
}

std::string Apdu::token() const {
  switch (format) {
    case ApduFormat::kS:
      return "S";
    case ApduFormat::kU:
      // Paper Table 4 names: U<function bits> (U1,U2,U4,U8,U16,U32).
      switch (u_function) {
        case UFunction::kStartDtAct: return "U1";
        case UFunction::kStartDtCon: return "U2";
        case UFunction::kStopDtAct: return "U4";
        case UFunction::kStopDtCon: return "U8";
        case UFunction::kTestFrAct: return "U16";
        case UFunction::kTestFrCon: return "U32";
      }
      return "U?";
    case ApduFormat::kI:
      if (asdu) return "I_" + std::to_string(static_cast<int>(asdu->type));
      return "I_?";
  }
  return "?";
}

std::string Apdu::str() const {
  switch (format) {
    case ApduFormat::kS:
      return "S nr=" + std::to_string(recv_seq);
    case ApduFormat::kU:
      return "U " + u_function_name(u_function);
    case ApduFormat::kI:
      return "I ns=" + std::to_string(send_seq) + " nr=" + std::to_string(recv_seq) +
             (asdu ? " " + asdu->str() : "");
  }
  return "?";
}

Result<Apdu> decode_apdu(ByteReader& r, const CodecProfile& profile,
                         std::pmr::memory_resource* arena) {
  auto start = r.u8();
  if (!start) return start.error();
  if (start.value() != kStartByte) {
    return Err("bad-start-byte", std::to_string(start.value()));
  }
  auto len = r.u8();
  if (!len) return len.error();
  if (len.value() < 4) return Err("bad-apdu-length", std::to_string(len.value()));
  auto body = r.bytes(len.value());
  if (!body) return Err("truncated", "APDU body");

  ByteReader b(body.value());
  std::uint8_t cf1 = b.u8().value();
  std::uint8_t cf2 = b.u8().value();
  std::uint8_t cf3 = b.u8().value();
  std::uint8_t cf4 = b.u8().value();

  Apdu apdu;
  if ((cf1 & 0x01) == 0) {
    apdu.format = ApduFormat::kI;
    apdu.send_seq = static_cast<std::uint16_t>((cf1 >> 1) | (cf2 << 7));
    apdu.recv_seq = static_cast<std::uint16_t>((cf3 >> 1) | (cf4 << 7));
    auto asdu = Asdu::decode(b, profile, arena);
    if (!asdu) return asdu.error();
    apdu.asdu = std::move(asdu).take();
  } else if ((cf1 & 0x03) == 0x01) {
    apdu.format = ApduFormat::kS;
    apdu.recv_seq = static_cast<std::uint16_t>((cf3 >> 1) | (cf4 << 7));
    if (len.value() != 4) return Err("bad-s-length", std::to_string(len.value()));
  } else {
    apdu.format = ApduFormat::kU;
    std::uint8_t fn = cf1 & 0xfc;
    switch (fn) {
      case 0x04: apdu.u_function = UFunction::kStartDtAct; break;
      case 0x08: apdu.u_function = UFunction::kStartDtCon; break;
      case 0x10: apdu.u_function = UFunction::kStopDtAct; break;
      case 0x20: apdu.u_function = UFunction::kStopDtCon; break;
      case 0x40: apdu.u_function = UFunction::kTestFrAct; break;
      case 0x80: apdu.u_function = UFunction::kTestFrCon; break;
      default: return Err("bad-u-function", std::to_string(fn));
    }
    if (len.value() != 4) return Err("bad-u-length", std::to_string(len.value()));
  }
  return apdu;
}

}  // namespace uncharted::iec104
