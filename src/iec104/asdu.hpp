// ASDU (Application Service Data Unit) model and codec.
//
// The codec is parameterized by a CodecProfile so it can speak both the
// IEC 104 standard layout and the "IEC 101 legacy over TCP" layouts the
// paper found in the wild (§6.1, Fig 7): a 1-octet cause of transmission
// (O53/O58/O28) and a 2-octet information object address (O37).
#pragma once

#include <cstdint>
#include <memory_resource>
#include <optional>
#include <string>
#include <vector>

#include "iec104/elements.hpp"
#include "util/bytes.hpp"
#include "util/expected.hpp"

namespace uncharted::iec104 {

/// Field widths used when encoding/decoding an ASDU.
struct CodecProfile {
  int cot_octets = 2;  ///< 2 = standard (cause + originator); 1 = IEC 101 legacy
  int ioa_octets = 3;  ///< 3 = standard; 2 = IEC 101 legacy
  int ca_octets = 2;   ///< common address; IEC 104 fixes this at 2

  static CodecProfile standard() { return {2, 3, 2}; }
  /// O53/O58/O28 layout: single-octet COT.
  static CodecProfile legacy_cot() { return {1, 3, 2}; }
  /// O37 layout: two-octet IOA.
  static CodecProfile legacy_ioa() { return {2, 2, 2}; }
  /// Fully IEC-101-style addressing over TCP.
  static CodecProfile legacy_both() { return {1, 2, 2}; }

  bool is_standard() const { return cot_octets == 2 && ioa_octets == 3 && ca_octets == 2; }
  std::string str() const;
  bool operator==(const CodecProfile&) const = default;
};

/// One information object: address + element + optional time tag.
struct InformationObject {
  std::uint32_t ioa = 0;
  ElementValue value;
  std::optional<Cp56Time2a> time;  ///< present iff has_time_tag(asdu.type)
};

/// Cause-of-transmission field.
struct CauseOfTransmission {
  Cause cause = Cause::kSpontaneous;
  bool negative = false;           ///< P/N bit
  bool test = false;               ///< T bit
  std::uint8_t originator = 0;     ///< second octet (standard profile only)

  std::string str() const;
  bool operator==(const CauseOfTransmission&) const = default;
};

/// A decoded ASDU.
struct Asdu {
  TypeId type = TypeId::M_ME_NC_1;
  bool sequence = false;  ///< SQ bit: objects share a base IOA
  CauseOfTransmission cot;
  std::uint16_t common_address = 0;
  /// pmr so the ingest hot path can arena-allocate object storage per lane
  /// (see util::RecordArena). Default-constructed ASDUs use the default
  /// resource — plain heap — and behave exactly like std::vector; copies
  /// always land on the default resource, so a copied ASDU never pins an
  /// arena.
  std::pmr::vector<InformationObject> objects;

  /// Serializes with the given profile. Returns an error for object counts
  /// > 127 or elements inconsistent with the type.
  Status encode(ByteWriter& w, const CodecProfile& profile = CodecProfile::standard()) const;

  /// Decodes an ASDU expected to fill `r` exactly. Unknown typeIDs and
  /// leftover/missing bytes are errors (this exactness is what lets the
  /// tolerant parser detect which legacy profile a device speaks).
  /// `arena`, when non-null, provides the storage for `objects`; the
  /// returned ASDU (and anything it is moved into) must then not outlive
  /// the arena.
  static Result<Asdu> decode(ByteReader& r,
                             const CodecProfile& profile = CodecProfile::standard(),
                             std::pmr::memory_resource* arena = nullptr);

  std::string str() const;
};

/// Encodes one element (no IOA, no time tag; ClockSync/QueryLog embed
/// their CP56 fields). Fails when the variant does not match the type.
Status encode_element(TypeId t, const ElementValue& v, ByteWriter& w);

/// Decodes one element of the given type.
Result<ElementValue> decode_element(TypeId t, ByteReader& r);

}  // namespace uncharted::iec104
