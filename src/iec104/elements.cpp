#include "iec104/elements.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace uncharted::iec104 {

std::int16_t NormalizedValue::to_raw(double v) {
  double clamped = std::clamp(v, -1.0, 32767.0 / 32768.0);
  return static_cast<std::int16_t>(std::lround(clamped * 32768.0));
}

bool has_time_tag(TypeId t) {
  switch (t) {
    case TypeId::M_SP_TB_1:
    case TypeId::M_DP_TB_1:
    case TypeId::M_ST_TB_1:
    case TypeId::M_BO_TB_1:
    case TypeId::M_ME_TD_1:
    case TypeId::M_ME_TE_1:
    case TypeId::M_ME_TF_1:
    case TypeId::M_IT_TB_1:
    case TypeId::M_EP_TD_1:
    case TypeId::M_EP_TE_1:
    case TypeId::M_EP_TF_1:
    case TypeId::C_SC_TA_1:
    case TypeId::C_DC_TA_1:
    case TypeId::C_RC_TA_1:
    case TypeId::C_SE_TA_1:
    case TypeId::C_SE_TB_1:
    case TypeId::C_SE_TC_1:
    case TypeId::C_BO_TA_1:
    case TypeId::C_TS_TA_1:
    case TypeId::F_DR_TA_1:
      return true;
    default:
      return false;
  }
}

int element_size(TypeId t) {
  switch (t) {
    case TypeId::M_SP_NA_1:
    case TypeId::M_SP_TB_1:
    case TypeId::M_DP_NA_1:
    case TypeId::M_DP_TB_1:
      return 1;
    case TypeId::M_ST_NA_1:
    case TypeId::M_ST_TB_1:
      return 2;
    case TypeId::M_BO_NA_1:
    case TypeId::M_BO_TB_1:
      return 5;
    case TypeId::M_ME_NA_1:
    case TypeId::M_ME_TD_1:
    case TypeId::M_ME_NB_1:
    case TypeId::M_ME_TE_1:
      return 3;
    case TypeId::M_ME_NC_1:
    case TypeId::M_ME_TF_1:
      return 5;
    case TypeId::M_IT_NA_1:
    case TypeId::M_IT_TB_1:
      return 5;
    case TypeId::M_PS_NA_1:
      return 5;
    case TypeId::M_ME_ND_1:
      return 2;
    case TypeId::M_EP_TD_1:
      return 3;  // SEP + CP16
    case TypeId::M_EP_TE_1:
    case TypeId::M_EP_TF_1:
      return 4;  // SPE/OCI + QDP + CP16
    case TypeId::C_SC_NA_1:
    case TypeId::C_SC_TA_1:
    case TypeId::C_DC_NA_1:
    case TypeId::C_DC_TA_1:
    case TypeId::C_RC_NA_1:
    case TypeId::C_RC_TA_1:
      return 1;
    case TypeId::C_SE_NA_1:
    case TypeId::C_SE_TA_1:
    case TypeId::C_SE_NB_1:
    case TypeId::C_SE_TB_1:
      return 3;
    case TypeId::C_SE_NC_1:
    case TypeId::C_SE_TC_1:
      return 5;
    case TypeId::C_BO_NA_1:
    case TypeId::C_BO_TA_1:
      return 4;
    case TypeId::M_EI_NA_1:
      return 1;
    case TypeId::C_IC_NA_1:
    case TypeId::C_CI_NA_1:
      return 1;
    case TypeId::C_RD_NA_1:
      return 0;
    case TypeId::C_CS_NA_1:
      return 7;
    case TypeId::C_RP_NA_1:
      return 1;
    case TypeId::C_TS_TA_1:
      return 2;
    case TypeId::P_ME_NA_1:
    case TypeId::P_ME_NB_1:
      return 3;
    case TypeId::P_ME_NC_1:
      return 5;
    case TypeId::P_AC_NA_1:
      return 1;
    case TypeId::F_FR_NA_1:
      return 6;  // NOF2 + LOF3 + FRQ1
    case TypeId::F_SR_NA_1:
      return 7;  // NOF2 + NOS1 + LOF3 + SRQ1
    case TypeId::F_SC_NA_1:
      return 4;  // NOF2 + NOS1 + SCQ1
    case TypeId::F_LS_NA_1:
      return 5;  // NOF2 + NOS1 + LSQ1 + CHS1
    case TypeId::F_AF_NA_1:
      return 4;  // NOF2 + NOS1 + AFQ1
    case TypeId::F_SG_NA_1:
      return -1;  // NOF2 + NOS1 + LOS1 + LOS bytes
    case TypeId::F_DR_TA_1:
      return 6;  // NOF2 + LOF3 + SOF1
    case TypeId::F_SC_NB_1:
      return 16;  // NOF2 + CP56 + CP56
  }
  return -1;
}

bool numeric_value(const ElementValue& v, double& out) {
  if (const auto* p = std::get_if<NormalizedValue>(&v)) {
    out = p->value();
    return true;
  }
  if (const auto* p = std::get_if<ScaledValue>(&v)) {
    out = p->value;
    return true;
  }
  if (const auto* p = std::get_if<ShortFloat>(&v)) {
    out = p->value;
    return true;
  }
  if (const auto* p = std::get_if<StepPosition>(&v)) {
    out = p->value;
    return true;
  }
  if (const auto* p = std::get_if<IntegratedTotals>(&v)) {
    out = p->counter;
    return true;
  }
  if (const auto* p = std::get_if<SinglePoint>(&v)) {
    out = p->on ? 1.0 : 0.0;
    return true;
  }
  if (const auto* p = std::get_if<DoublePoint>(&v)) {
    out = p->state;
    return true;
  }
  if (const auto* p = std::get_if<SetpointNormalized>(&v)) {
    out = static_cast<double>(p->raw) / 32768.0;
    return true;
  }
  if (const auto* p = std::get_if<SetpointScaled>(&v)) {
    out = p->value;
    return true;
  }
  if (const auto* p = std::get_if<SetpointFloat>(&v)) {
    out = p->value;
    return true;
  }
  return false;
}

std::string element_str(const ElementValue& v) {
  double num = 0.0;
  if (const auto* p = std::get_if<SinglePoint>(&v)) {
    return std::string("SP=") + (p->on ? "on" : "off") + " [" + p->quality.str() + "]";
  }
  if (const auto* p = std::get_if<DoublePoint>(&v)) {
    return "DP=" + std::to_string(p->state) + " [" + p->quality.str() + "]";
  }
  if (const auto* p = std::get_if<ShortFloat>(&v)) {
    return format_double(p->value, 3) + " [" + p->quality.str() + "]";
  }
  if (const auto* p = std::get_if<InterrogationCommand>(&v)) {
    return "interrogation qoi=" + std::to_string(p->qualifier);
  }
  if (const auto* p = std::get_if<SetpointFloat>(&v)) {
    return "setpoint=" + format_double(p->value, 3);
  }
  if (const auto* p = std::get_if<ClockSync>(&v)) {
    return "clock=" + p->time.str();
  }
  if (const auto* p = std::get_if<Segment>(&v)) {
    return "segment len=" + std::to_string(p->data.size());
  }
  if (numeric_value(v, num)) return format_double(num, 3);
  return "<element>";
}

}  // namespace uncharted::iec104
