// IEC 104 application-layer connection engine: sequence numbers, STARTDT /
// STOPDT state, S-format acknowledgement policy (w), window limit (k) and
// the four protocol timers T0–T3 (§4 of the paper).
//
// The engine is transport-agnostic and time-driven: callers feed it inbound
// APDUs and clock ticks, and collect outbound APDUs / lifecycle signals.
// The simulator builds both controlling (server) and controlled
// (outstation) endpoints on top of it; tests drive timer semantics directly.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "iec104/apdu.hpp"
#include "iec104/constants.hpp"
#include "util/bytes.hpp"
#include "util/timebase.hpp"

namespace uncharted::iec104 {

/// Which side of the connection this engine plays.
enum class Role {
  kControlling,  ///< SCADA/control server: sends STARTDT, commands
  kControlled,   ///< outstation/RTU: sends monitor data once started
};

/// What the engine wants the transport to do.
struct EngineSignals {
  std::vector<Apdu> to_send;
  bool close_connection = false;  ///< T1 expiry: active close / switchover
};

class ConnectionEngine {
 public:
  ConnectionEngine(Role role, Timers timers = {}, int k = kDefaultK, int w = kDefaultW);

  /// Transport connected (TCP established). Resets sequence state; the
  /// connection starts in STOPDT per the standard.
  void on_connected(Timestamp now);

  /// Processes an inbound APDU; returns APDUs to send in response
  /// (STARTDT/STOPDT/TESTFR confirmations, S-format acks per w).
  EngineSignals on_apdu(Timestamp now, const Apdu& apdu);

  /// Clock tick: emits TESTFR keep-alives on T3 idle and requests close on
  /// T1 expiry (unacknowledged send or unanswered test).
  EngineSignals on_tick(Timestamp now);

  /// Queues an ASDU for I-format transmission. Returns the wire APDU when
  /// transmission is currently allowed (started, window open).
  std::optional<Apdu> send_asdu(Timestamp now, Asdu asdu);

  /// Controlling side: request data transfer start.
  Apdu start_dt(Timestamp now);
  /// Controlling side: request data transfer stop.
  Apdu stop_dt(Timestamp now);

  bool started() const { return started_; }
  std::uint16_t vs() const { return vs_; }
  std::uint16_t vr() const { return vr_; }
  /// I APDUs sent but not yet acknowledged by the peer.
  int unacked() const;
  /// I APDUs received since our last acknowledgement.
  int unacked_received() const { return recv_since_ack_; }

  /// Full dynamic state of the engine, for checkpoints and tests that need
  /// to start near the 32767 sequence wrap. Timers/k/w are configuration
  /// and stay with the engine.
  struct Snapshot {
    bool started = false;
    std::uint16_t vs = 0;
    std::uint16_t vr = 0;
    std::uint16_t ack_sent = 0;
    std::uint16_t peer_acked = 0;
    int recv_since_ack = 0;
    Timestamp last_activity = 0;
    std::optional<Timestamp> t1_deadline;
    bool test_outstanding = false;
    std::optional<Timestamp> t2_deadline;

    void save(ByteWriter& w) const;
    static Result<Snapshot> load(ByteReader& r);
  };

  Snapshot snapshot() const;
  /// Restores dynamic state; sequence fields are masked to 15 bits.
  void restore(const Snapshot& s);

 private:
  void note_sent(Timestamp now);
  void ack_peer(Timestamp now, std::uint16_t nr);

  Role role_;
  Timers timers_;
  int k_;
  int w_;

  bool started_ = false;
  std::uint16_t vs_ = 0;      ///< next N(S) we will send
  std::uint16_t vr_ = 0;      ///< next N(S) we expect from the peer
  std::uint16_t ack_sent_ = 0;   ///< highest N(R) we have told the peer
  std::uint16_t peer_acked_ = 0; ///< highest N(R) the peer has told us

  int recv_since_ack_ = 0;

  Timestamp last_activity_ = 0;  ///< last APDU sent or received (T3 basis)
  std::optional<Timestamp> t1_deadline_;  ///< pending send/test awaiting ack
  bool test_outstanding_ = false;
  std::optional<Timestamp> t2_deadline_;  ///< pending receive awaiting our S
};

}  // namespace uncharted::iec104
