// Information element value types for every IEC-104-supported ASDU type.
//
// Each InformationObject pairs an Information Object Address (IOA) with one
// element value (a variant over the structures below) and an optional
// CP56Time2a tag for the *_T*_1 types.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "iec104/constants.hpp"
#include "iec104/cp56time.hpp"
#include "iec104/quality.hpp"

namespace uncharted::iec104 {

// --- Monitor direction -----------------------------------------------------

/// M_SP_NA_1 / M_SP_TB_1: single-point (on/off) with SIQ quality.
struct SinglePoint {
  bool on = false;
  Quality quality;
  bool operator==(const SinglePoint&) const = default;
};

/// M_DP_NA_1 / M_DP_TB_1: double-point; state 0=intermediate, 1=off, 2=on,
/// 3=indeterminate (the paper's breaker Status(0,1,2) series, Table 8).
struct DoublePoint {
  std::uint8_t state = 0;
  Quality quality;
  bool operator==(const DoublePoint&) const = default;
};

/// M_ST_NA_1 / M_ST_TB_1: transformer tap style step position (VTI + QDS).
struct StepPosition {
  std::int8_t value = 0;  ///< -64..63
  bool transient = false;
  Quality quality;
  bool operator==(const StepPosition&) const = default;
};

/// M_BO_NA_1 / M_BO_TB_1: 32-bit bitstring with QDS.
struct Bitstring32 {
  std::uint32_t bits = 0;
  Quality quality;
  bool operator==(const Bitstring32&) const = default;
};

/// M_ME_NA_1 / M_ME_TD_1 / M_ME_ND_1: normalized value (16-bit fixed point
/// in [-1, 1)); M_ME_ND_1 omits the quality octet on the wire.
struct NormalizedValue {
  std::int16_t raw = 0;
  Quality quality;

  double value() const { return static_cast<double>(raw) / 32768.0; }
  static std::int16_t to_raw(double v);
  bool operator==(const NormalizedValue&) const = default;
};

/// M_ME_NB_1 / M_ME_TE_1: scaled 16-bit integer with QDS.
struct ScaledValue {
  std::int16_t value = 0;
  Quality quality;
  bool operator==(const ScaledValue&) const = default;
};

/// M_ME_NC_1 / M_ME_TF_1: IEEE short float with QDS — the workhorse types
/// (I13, I36) carrying 97% of the paper's traffic.
struct ShortFloat {
  float value = 0.0f;
  Quality quality;
  bool operator==(const ShortFloat&) const = default;
};

/// M_IT_NA_1 / M_IT_TB_1: binary counter reading (energy totals).
struct IntegratedTotals {
  std::int32_t counter = 0;
  std::uint8_t sequence = 0;  ///< 5-bit seq + CY/CA/IV flags
  bool operator==(const IntegratedTotals&) const = default;
};

/// M_PS_NA_1: packed single points with status-change detection.
struct PackedSinglePoints {
  std::uint16_t status = 0;
  std::uint16_t change = 0;
  Quality quality;
  bool operator==(const PackedSinglePoints&) const = default;
};

/// M_EP_TD_1: protection equipment event.
struct ProtectionEvent {
  std::uint8_t event = 0;        ///< SEP
  std::uint16_t elapsed_ms = 0;  ///< CP16Time2a
  bool operator==(const ProtectionEvent&) const = default;
};

/// M_EP_TE_1: packed start events of protection equipment.
struct ProtectionStartEvents {
  std::uint8_t events = 0;        ///< SPE
  std::uint8_t quality = 0;       ///< QDP
  std::uint16_t duration_ms = 0;  ///< CP16Time2a
  bool operator==(const ProtectionStartEvents&) const = default;
};

/// M_EP_TF_1: packed output circuit information of protection equipment.
struct ProtectionOutputCircuit {
  std::uint8_t circuits = 0;       ///< OCI
  std::uint8_t quality = 0;        ///< QDP
  std::uint16_t operating_ms = 0;  ///< CP16Time2a
  bool operator==(const ProtectionOutputCircuit&) const = default;
};

/// M_EI_NA_1: end of initialization.
struct EndOfInit {
  std::uint8_t cause = 0;  ///< COI
  bool operator==(const EndOfInit&) const = default;
};

// --- Control direction ------------------------------------------------------

/// C_SC_NA_1 / C_SC_TA_1: single command (SCO).
struct SingleCommand {
  bool on = false;
  bool select = false;        ///< S/E bit: select (true) vs execute
  std::uint8_t qualifier = 0; ///< QU bits
  bool operator==(const SingleCommand&) const = default;
};

/// C_DC_NA_1 / C_DC_TA_1: double command (DCO).
struct DoubleCommand {
  std::uint8_t state = 0;  ///< 1=off, 2=on
  bool select = false;
  std::uint8_t qualifier = 0;
  bool operator==(const DoubleCommand&) const = default;
};

/// C_RC_NA_1 / C_RC_TA_1: regulating step command (RCO).
struct RegulatingStep {
  std::uint8_t step = 0;  ///< 1=lower, 2=higher
  bool select = false;
  std::uint8_t qualifier = 0;
  bool operator==(const RegulatingStep&) const = default;
};

/// C_SE_NA_1 / C_SE_TA_1: set point, normalized.
struct SetpointNormalized {
  std::int16_t raw = 0;
  std::uint8_t qos = 0;
  bool operator==(const SetpointNormalized&) const = default;
};

/// C_SE_NB_1 / C_SE_TB_1: set point, scaled.
struct SetpointScaled {
  std::int16_t value = 0;
  std::uint8_t qos = 0;
  bool operator==(const SetpointScaled&) const = default;
};

/// C_SE_NC_1 / C_SE_TC_1: set point, short float — the AGC set point type
/// (I50) the paper maps to "AGC-SP" in Table 8.
struct SetpointFloat {
  float value = 0.0f;
  std::uint8_t qos = 0;
  bool operator==(const SetpointFloat&) const = default;
};

/// C_BO_NA_1 / C_BO_TA_1: bitstring command.
struct BitstringCommand {
  std::uint32_t bits = 0;
  bool operator==(const BitstringCommand&) const = default;
};

// --- System direction ---------------------------------------------------

/// C_IC_NA_1: general interrogation (the paper's I100).
struct InterrogationCommand {
  std::uint8_t qualifier = 20;  ///< QOI; 20 = station interrogation
  bool operator==(const InterrogationCommand&) const = default;
};

/// C_CI_NA_1: counter interrogation.
struct CounterInterrogation {
  std::uint8_t qualifier = 5;  ///< QCC
  bool operator==(const CounterInterrogation&) const = default;
};

/// C_RD_NA_1: read command (no element payload).
struct ReadCommand {
  bool operator==(const ReadCommand&) const = default;
};

/// C_CS_NA_1: clock synchronization; the element *is* the CP56 time.
struct ClockSync {
  Cp56Time2a time;
  bool operator==(const ClockSync&) const = default;
};

/// C_RP_NA_1: reset process.
struct ResetProcess {
  std::uint8_t qualifier = 1;  ///< QRP
  bool operator==(const ResetProcess&) const = default;
};

/// C_TS_TA_1: test command with time tag.
struct TestCommand {
  std::uint16_t counter = 0;  ///< TSC
  bool operator==(const TestCommand&) const = default;
};

// --- Parameter direction ---------------------------------------------------

/// P_ME_NA_1: parameter, normalized value.
struct ParameterNormalized {
  std::int16_t raw = 0;
  std::uint8_t qpm = 0;
  bool operator==(const ParameterNormalized&) const = default;
};

/// P_ME_NB_1: parameter, scaled value.
struct ParameterScaled {
  std::int16_t value = 0;
  std::uint8_t qpm = 0;
  bool operator==(const ParameterScaled&) const = default;
};

/// P_ME_NC_1: parameter, short float.
struct ParameterFloat {
  float value = 0.0f;
  std::uint8_t qpm = 0;
  bool operator==(const ParameterFloat&) const = default;
};

/// P_AC_NA_1: parameter activation.
struct ParameterActivation {
  std::uint8_t qpa = 0;
  bool operator==(const ParameterActivation&) const = default;
};

// --- File transfer -----------------------------------------------------

/// F_FR_NA_1: file ready.
struct FileReady {
  std::uint16_t file_name = 0;   ///< NOF
  std::uint32_t length = 0;      ///< LOF, 24-bit on the wire
  std::uint8_t qualifier = 0;    ///< FRQ
  bool operator==(const FileReady&) const = default;
};

/// F_SR_NA_1: section ready.
struct SectionReady {
  std::uint16_t file_name = 0;
  std::uint8_t section = 0;    ///< NOS
  std::uint32_t length = 0;    ///< LOF, 24-bit
  std::uint8_t qualifier = 0;  ///< SRQ
  bool operator==(const SectionReady&) const = default;
};

/// F_SC_NA_1: call directory / select file / call file / call section.
struct CallFile {
  std::uint16_t file_name = 0;
  std::uint8_t section = 0;
  std::uint8_t qualifier = 0;  ///< SCQ
  bool operator==(const CallFile&) const = default;
};

/// F_LS_NA_1: last section / last segment.
struct LastSection {
  std::uint16_t file_name = 0;
  std::uint8_t section = 0;
  std::uint8_t qualifier = 0;  ///< LSQ
  std::uint8_t checksum = 0;   ///< CHS
  bool operator==(const LastSection&) const = default;
};

/// F_AF_NA_1: ack file / ack section.
struct AckFile {
  std::uint16_t file_name = 0;
  std::uint8_t section = 0;
  std::uint8_t qualifier = 0;  ///< AFQ
  bool operator==(const AckFile&) const = default;
};

/// F_SG_NA_1: one file segment (the only variable-length element).
struct Segment {
  std::uint16_t file_name = 0;
  std::uint8_t section = 0;
  std::vector<std::uint8_t> data;  ///< LOS bytes
  bool operator==(const Segment&) const = default;
};

/// F_DR_TA_1: one directory entry (time tag carried in the object's tag).
struct DirectoryEntry {
  std::uint16_t file_name = 0;
  std::uint32_t length = 0;  ///< LOF, 24-bit
  std::uint8_t status = 0;   ///< SOF
  bool operator==(const DirectoryEntry&) const = default;
};

/// F_SC_NB_1: query log / request archive file.
struct QueryLog {
  std::uint16_t file_name = 0;
  Cp56Time2a start;
  Cp56Time2a stop;
  bool operator==(const QueryLog&) const = default;
};

/// Variant over every element kind.
using ElementValue = std::variant<
    SinglePoint, DoublePoint, StepPosition, Bitstring32, NormalizedValue, ScaledValue,
    ShortFloat, IntegratedTotals, PackedSinglePoints, ProtectionEvent,
    ProtectionStartEvents, ProtectionOutputCircuit, EndOfInit, SingleCommand,
    DoubleCommand, RegulatingStep, SetpointNormalized, SetpointScaled, SetpointFloat,
    BitstringCommand, InterrogationCommand, CounterInterrogation, ReadCommand, ClockSync,
    ResetProcess, TestCommand, ParameterNormalized, ParameterScaled, ParameterFloat,
    ParameterActivation, FileReady, SectionReady, CallFile, LastSection, AckFile, Segment,
    DirectoryEntry, QueryLog>;

/// Does this typeID carry a CP56Time2a tag after the element?
bool has_time_tag(TypeId t);

/// Fixed on-wire element size excluding IOA and time tag; -1 for the
/// variable-length F_SG_NA_1 segment.
int element_size(TypeId t);

/// If the element carries a numeric process value (measured value, set
/// point, step position, counter), returns it as double.
bool numeric_value(const ElementValue& v, double& out);

/// Human-readable rendering of the element for reports.
std::string element_str(const ElementValue& v);

}  // namespace uncharted::iec104
