#include "iec104/cp56time.hpp"

#include <cstdio>

namespace uncharted::iec104 {

namespace {
// Days-from-civil / civil-from-days (Howard Hinnant's algorithms): exact
// conversions between {y, m, d} and days since 1970-01-01.
std::int64_t days_from_civil(std::int64_t y, unsigned m, unsigned d) {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m > 2 ? m - 3 : m + 9) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

void civil_from_days(std::int64_t z, std::int64_t& y, unsigned& m, unsigned& d) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  d = doy - (153 * mp + 2) / 5 + 1;
  m = mp + (mp < 10 ? 3 : static_cast<unsigned>(-9));
  y += m <= 2;
}
}  // namespace

void Cp56Time2a::encode(ByteWriter& w) const {
  w.u16le(milliseconds);
  w.u8(static_cast<std::uint8_t>((minute & 0x3f) | (invalid ? 0x80 : 0)));
  w.u8(static_cast<std::uint8_t>((hour & 0x1f) | (summer_time ? 0x80 : 0)));
  w.u8(static_cast<std::uint8_t>((day_of_month & 0x1f) | ((day_of_week & 0x07) << 5)));
  w.u8(static_cast<std::uint8_t>(month & 0x0f));
  w.u8(static_cast<std::uint8_t>(year & 0x7f));
}

Result<Cp56Time2a> Cp56Time2a::decode(ByteReader& r) {
  auto ms = r.u16le();
  auto min = r.u8();
  auto hr = r.u8();
  auto dom = r.u8();
  auto mon = r.u8();
  auto yr = r.u8();
  if (!yr) return Err("truncated", "cp56time2a");
  Cp56Time2a t;
  t.milliseconds = ms.value();
  t.minute = static_cast<std::uint8_t>(min.value() & 0x3f);
  t.invalid = (min.value() & 0x80) != 0;
  t.hour = static_cast<std::uint8_t>(hr.value() & 0x1f);
  t.summer_time = (hr.value() & 0x80) != 0;
  t.day_of_month = static_cast<std::uint8_t>(dom.value() & 0x1f);
  t.day_of_week = static_cast<std::uint8_t>((dom.value() >> 5) & 0x07);
  t.month = static_cast<std::uint8_t>(mon.value() & 0x0f);
  t.year = static_cast<std::uint8_t>(yr.value() & 0x7f);
  if (t.milliseconds > 59999 || t.minute > 59 || t.hour > 23 || t.day_of_month == 0 ||
      t.day_of_month > 31 || t.month == 0 || t.month > 12) {
    return Err("bad-cp56time", t.str());
  }
  return t;
}

Cp56Time2a Cp56Time2a::from_timestamp(Timestamp ts) {
  std::int64_t total_ms = static_cast<std::int64_t>(ts / 1000);
  std::int64_t days = total_ms / 86'400'000;
  std::int64_t ms_of_day = total_ms % 86'400'000;

  std::int64_t y;
  unsigned m, d;
  civil_from_days(days, y, m, d);

  Cp56Time2a t;
  // Euclidean remainder: for pre-2000 dates (y - 2000) % 100 is negative
  // and the old straight cast wrapped it through uint8_t into an
  // out-of-range year (e.g. 1970 -> 226). Two-digit years >= 70 mean 19xx
  // (see to_timestamp), so 1970 must encode as 70.
  std::int64_t two_digit = (y - 2000) % 100;
  if (two_digit < 0) two_digit += 100;
  t.year = static_cast<std::uint8_t>(two_digit);
  t.month = static_cast<std::uint8_t>(m);
  t.day_of_month = static_cast<std::uint8_t>(d);
  // ISO day of week: Monday=1..Sunday=7; 1970-01-01 was a Thursday (=4).
  t.day_of_week = static_cast<std::uint8_t>(((days % 7) + 10) % 7 + 1);
  t.hour = static_cast<std::uint8_t>(ms_of_day / 3'600'000);
  t.minute = static_cast<std::uint8_t>((ms_of_day / 60'000) % 60);
  t.milliseconds = static_cast<std::uint16_t>(ms_of_day % 60'000);
  return t;
}

Timestamp Cp56Time2a::to_timestamp() const {
  // IEC 60870-5 convention for the two-digit year: 70..99 are 1970..1999,
  // 0..69 are 2000..2069. Timestamp is unsigned microseconds since the
  // epoch, so both ranges are representable.
  const std::int64_t century = year >= 70 ? 1900 : 2000;
  std::int64_t days = days_from_civil(century + year, month, day_of_month);
  std::int64_t ms = days * 86'400'000 + static_cast<std::int64_t>(hour) * 3'600'000 +
                    static_cast<std::int64_t>(minute) * 60'000 + milliseconds;
  return static_cast<Timestamp>(ms) * 1000;
}

std::string Cp56Time2a::str() const {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%02u%02u-%02u-%02u %02u:%02u:%02u.%03u%s",
                year >= 70 ? 19u : 20u, static_cast<unsigned>(year),
                static_cast<unsigned>(month), static_cast<unsigned>(day_of_month),
                static_cast<unsigned>(hour), static_cast<unsigned>(minute),
                static_cast<unsigned>(milliseconds / 1000),
                static_cast<unsigned>(milliseconds % 1000), invalid ? " (IV)" : "");
  return buf;
}

}  // namespace uncharted::iec104
