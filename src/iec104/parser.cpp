#include "iec104/parser.hpp"

#include <algorithm>
#include <cmath>

namespace uncharted::iec104 {

std::array<CodecProfile, 4> candidate_profiles() {
  return {CodecProfile::standard(), CodecProfile::legacy_cot(),
          CodecProfile::legacy_ioa(), CodecProfile::legacy_both()};
}

std::vector<CodecProfile> detect_profiles(std::span<const std::uint8_t> apdu_bytes) {
  std::vector<CodecProfile> matches;
  for (const auto& profile : candidate_profiles()) {
    ByteReader r(apdu_bytes);
    auto apdu = decode_apdu(r, profile);
    if (apdu && r.empty()) {
      matches.push_back(profile);
      // S/U frames carry no ASDU, so every profile "matches"; report only
      // the standard one for them.
      if (apdu->format != ApduFormat::kI) break;
    }
  }
  return matches;
}

std::string failure_kind_name(FailureKind kind) {
  switch (kind) {
    case FailureKind::kGarbage: return "garbage";
    case FailureKind::kUndecodable: return "undecodable";
    case FailureKind::kTruncatedTail: return "truncated-tail";
  }
  return "unknown";
}

void ApduStreamParser::feed(Timestamp ts, std::span<const std::uint8_t> data) {
  if (buffer_.empty()) {
    // Zero-copy fast path: with no partial frame pending, parse straight
    // from the caller's bytes. Only a frame cut off at the end of `data`
    // is copied in, to wait for the rest of the stream.
    std::size_t consumed = parse_span(ts, data);
    if (consumed < data.size()) {
      buffer_.assign(data.begin() + static_cast<std::ptrdiff_t>(consumed),
                     data.end());
    }
    return;
  }
  buffer_.insert(buffer_.end(), data.begin(), data.end());
  parse_buffer(ts);
}

void ApduStreamParser::finish(Timestamp ts) {
  if (buffer_.empty()) return;
  ParseFailure f;
  f.ts = ts;
  f.kind = FailureKind::kTruncatedTail;
  f.error = "truncated-tail";
  f.raw = std::move(buffer_);
  buffer_.clear();
  truncated_tail_bytes_ += f.raw.size();
  failures_.push_back(std::move(f));
}

void ApduStreamParser::drain(std::vector<ParsedApdu>& apdus_out,
                             std::vector<ParseFailure>& failures_out) {
  for (auto& a : apdus_) apdus_out.push_back(std::move(a));
  for (auto& f : failures_) failures_out.push_back(std::move(f));
  apdus_.clear();
  failures_.clear();
}

void ApduStreamParser::save(ByteWriter& w) const {
  w.u8(mode_ == Mode::kTolerant ? 1 : 0);
  w.u8(locked_.has_value() ? 1 : 0);
  if (locked_) {
    w.u8(static_cast<std::uint8_t>(locked_->cot_octets));
    w.u8(static_cast<std::uint8_t>(locked_->ioa_octets));
    w.u8(static_cast<std::uint8_t>(locked_->ca_octets));
  }
  w.u64le(non_compliant_);
  w.u64le(resyncs_);
  w.u64le(garbage_bytes_);
  w.u64le(truncated_tail_bytes_);
  w.u32le(static_cast<std::uint32_t>(buffer_.size()));
  w.bytes(buffer_);
}

Result<ApduStreamParser> ApduStreamParser::load(ByteReader& r) {
  auto mode = r.u8();
  if (!mode) return mode.error();
  ApduStreamParser p(mode.value() ? Mode::kTolerant : Mode::kStrict);
  auto has_locked = r.u8();
  if (!has_locked) return has_locked.error();
  if (has_locked.value()) {
    auto cot = r.u8();
    auto ioa = r.u8();
    auto ca = r.u8();
    if (!ca) return ca.error();
    p.locked_ = CodecProfile{cot.value(), ioa.value(), ca.value()};
  }
  auto non_compliant = r.u64le();
  auto resyncs = r.u64le();
  auto garbage = r.u64le();
  auto tail = r.u64le();
  auto len = r.u32le();
  if (!len) return len.error();
  auto buf = r.bytes(len.value());
  if (!buf) return buf.error();
  p.non_compliant_ = non_compliant.value();
  p.resyncs_ = resyncs.value();
  p.garbage_bytes_ = garbage.value();
  p.truncated_tail_bytes_ = tail.value();
  p.buffer_.assign(buf->begin(), buf->end());
  return p;
}

void ApduStreamParser::parse_buffer(Timestamp ts) {
  std::size_t pos = parse_span(ts, buffer_);
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(pos));
}

std::size_t ApduStreamParser::parse_span(Timestamp ts,
                                         std::span<const std::uint8_t> data) {
  std::size_t pos = 0;
  while (pos < data.size()) {
    // Resynchronize on the start byte, recording skipped garbage.
    if (data[pos] != kStartByte) {
      std::size_t next = pos;
      while (next < data.size() && data[next] != kStartByte) ++next;
      ParseFailure f;
      f.ts = ts;
      f.kind = FailureKind::kGarbage;
      f.error = "bad-start-byte";
      f.raw.assign(data.begin() + static_cast<std::ptrdiff_t>(pos),
                   data.begin() + static_cast<std::ptrdiff_t>(next));
      ++resyncs_;
      garbage_bytes_ += f.raw.size();
      failures_.push_back(std::move(f));
      pos = next;
      continue;
    }
    // Length octet via the bounds-checked reader (start byte already
    // validated above); an absent octet means the frame is still arriving.
    ByteReader header(data.subspan(pos));
    (void)header.u8();
    const auto length_octet = header.u8();
    if (!length_octet) break;  // need the length octet
    const std::size_t frame_len = 2 + static_cast<std::size_t>(length_octet.value());
    if (pos + frame_len > data.size()) break;  // incomplete frame

    std::span<const std::uint8_t> frame = data.subspan(pos, frame_len);
    if (!try_parse_frame(ts, frame)) {
      ParseFailure f;
      f.ts = ts;
      f.kind = FailureKind::kUndecodable;
      f.error = "undecodable-apdu";
      f.raw.assign(frame.begin(), frame.end());
      failures_.push_back(std::move(f));
    }
    pos += frame_len;
  }
  return pos;
}

int asdu_plausibility(const Asdu& asdu, const CodecProfile& profile) {
  int score = 0;

  // Known cause of transmission values.
  auto c = static_cast<std::uint8_t>(asdu.cot.cause);
  bool known_cause = (c >= 1 && c <= 13) || (c >= 20 && c <= 41) || (c >= 44 && c <= 47);
  score += known_cause ? 4 : -4;
  // Originator addresses are almost always zero in the field.
  if (profile.cot_octets == 2 && asdu.cot.originator == 0) score += 1;
  // Common addresses identify stations; fleets stay far below the 16-bit
  // maximum, and almost always below 256 (the IEC 101 heritage).
  if (asdu.common_address > 0 && asdu.common_address < 256) {
    score += 3;
  } else if (asdu.common_address < 4096) {
    score += 1;
  }

  for (const auto& obj : asdu.objects) {
    // A wrong field split shifts header bytes into the IOA, producing the
    // paper's "invalid IOA addresses".
    if (obj.ioa < 65536) {
      score += 2;
    } else if (obj.ioa >= (1u << 22)) {
      score -= 2;
    }
    // ... and misaligned floats look "completely random".
    if (const auto* f = std::get_if<ShortFloat>(&obj.value)) {
      double v = std::fabs(f->value);
      bool sane = std::isfinite(f->value) && (v == 0.0 || (v > 1e-6 && v < 1e7));
      score += sane ? 2 : -4;
    }
    if (const auto* sp = std::get_if<SetpointFloat>(&obj.value)) {
      double v = std::fabs(sp->value);
      bool sane = std::isfinite(sp->value) && (v == 0.0 || (v > 1e-6 && v < 1e7));
      score += sane ? 2 : -4;
    }
    if (obj.time && obj.time->invalid) score -= 1;
  }
  return score;
}

bool ApduStreamParser::try_parse_frame(Timestamp ts, std::span<const std::uint8_t> frame) {
  // Running best instead of a materialized candidate list: the fast paths
  // below produce at most one candidate, so the common case does no
  // bookkeeping. Ties keep the earliest attempt, matching the previous
  // first-of-max-element selection.
  bool have_best = false;
  Apdu best_apdu;
  CodecProfile best_profile = CodecProfile::standard();
  int best_score = 0;
  int best_preference = 0;

  auto attempt = [&](const CodecProfile& profile, int preference) {
    ByteReader r(frame);
    auto apdu = decode_apdu(r, profile, arena_);
    if (!apdu || !r.empty()) return false;
    int score = 0;
    if (apdu->format == ApduFormat::kI) {
      score = asdu_plausibility(*apdu->asdu, profile);
    }
    if (!have_best || score > best_score ||
        (score == best_score && preference > best_preference)) {
      best_apdu = std::move(apdu).take();
      best_profile = profile;
      best_score = score;
      best_preference = preference;
      have_best = true;
    }
    return true;
  };

  if (mode_ == Mode::kStrict) {
    attempt(CodecProfile::standard(), 0);
  } else {
    // Fast paths first: a locked legacy profile explains this stream, and
    // the standard profile explains compliant streams — the field-width
    // mismatch makes cross-profile "exact" parses impossible for them
    // (the VSQ object count pins the expected length). Only a frame no
    // fast path explains falls through to the full plausibility vote,
    // which disambiguates the legacy layouts (a 1-octet-COT reading of a
    // 2-octet-IOA frame consumes the same bytes).
    if (locked_) attempt(*locked_, 3);
    if (!have_best) attempt(CodecProfile::standard(), 2);
    if (!have_best) {
      for (const auto& profile : candidate_profiles()) {
        if (profile.is_standard() || (locked_ && profile == *locked_)) continue;
        attempt(profile, 0);
      }
    }
  }
  if (!have_best) return false;

  ParsedApdu parsed;
  parsed.ts = ts;
  parsed.apdu = std::move(best_apdu);
  parsed.profile = best_profile;
  parsed.compliant =
      best_profile.is_standard() || parsed.apdu.format != ApduFormat::kI;
  parsed.wire_size = frame.size();
  if (!parsed.compliant) {
    ++non_compliant_;
    locked_ = best_profile;
  }
  apdus_.push_back(std::move(parsed));
  return true;
}

}  // namespace uncharted::iec104
