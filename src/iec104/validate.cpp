#include "iec104/validate.hpp"

namespace uncharted::iec104 {

TypeCategory type_category(TypeId t) {
  auto code = static_cast<std::uint8_t>(t);
  if (code < 45) return TypeCategory::kMonitor;
  if (code <= 64) return TypeCategory::kControl;
  if (code == 70) return TypeCategory::kMonitor;  // end of init: monitor dir
  if (code <= 107) return TypeCategory::kSystem;
  if (code <= 113) return TypeCategory::kParameter;
  return TypeCategory::kFile;
}

std::string violation_kind_name(ViolationKind k) {
  switch (k) {
    case ViolationKind::kWrongDirection: return "wrong-direction";
    case ViolationKind::kCauseMismatch: return "cause-mismatch";
    case ViolationKind::kBadQualifier: return "bad-qualifier";
    case ViolationKind::kSequenceOverflow: return "sequence-overflow";
  }
  return "?";
}

namespace {

bool is_activation_family(Cause c) {
  switch (c) {
    case Cause::kActivation:
    case Cause::kActivationCon:
    case Cause::kDeactivation:
    case Cause::kDeactivationCon:
    case Cause::kActivationTerm:
      return true;
    default:
      return false;
  }
}

bool is_monitor_cause(Cause c) {
  auto v = static_cast<std::uint8_t>(c);
  return c == Cause::kPeriodic || c == Cause::kBackground || c == Cause::kSpontaneous ||
         c == Cause::kInitialized || c == Cause::kRequest ||
         c == Cause::kReturnRemote || c == Cause::kReturnLocal ||
         (v >= 20 && v <= 41);  // interrogated-by-station/group, counter groups
}

bool is_error_cause(Cause c) {
  auto v = static_cast<std::uint8_t>(c);
  return v >= 44 && v <= 47;
}

}  // namespace

std::vector<Violation> validate_asdu(const Asdu& asdu, Direction direction) {
  std::vector<Violation> out;
  auto add = [&](ViolationKind kind, std::string detail) {
    out.push_back(Violation{kind, std::move(detail)});
  };
  TypeCategory category = type_category(asdu.type);
  Cause cause = asdu.cot.cause;
  std::string label = type_acronym(asdu.type);

  // Error causes (unknown type/cause/CA/IOA mirrors) are legal both ways.
  if (is_error_cause(cause)) return out;

  switch (category) {
    case TypeCategory::kMonitor:
      if (direction == Direction::kFromController) {
        add(ViolationKind::kWrongDirection, label + " sent by control station");
      }
      if (!is_monitor_cause(cause)) {
        add(ViolationKind::kCauseMismatch,
            label + " with cause " + cause_name(cause));
      }
      break;

    case TypeCategory::kControl:
    case TypeCategory::kParameter:
      // Act from the controller, con/term mirrored by the outstation.
      if (!is_activation_family(cause)) {
        add(ViolationKind::kCauseMismatch, label + " with cause " + cause_name(cause));
      } else if (direction == Direction::kFromController &&
                 (cause == Cause::kActivationCon || cause == Cause::kActivationTerm ||
                  cause == Cause::kDeactivationCon)) {
        add(ViolationKind::kWrongDirection,
            label + " confirmation sent by control station");
      } else if (direction == Direction::kFromOutstation &&
                 (cause == Cause::kActivation || cause == Cause::kDeactivation)) {
        add(ViolationKind::kWrongDirection, label + " activation sent by outstation");
      }
      break;

    case TypeCategory::kSystem:
      if (!is_activation_family(cause) && !is_monitor_cause(cause)) {
        add(ViolationKind::kCauseMismatch, label + " with cause " + cause_name(cause));
      }
      if (direction == Direction::kFromOutstation &&
          (cause == Cause::kActivation || cause == Cause::kDeactivation)) {
        add(ViolationKind::kWrongDirection, label + " activation sent by outstation");
      }
      break;

    case TypeCategory::kFile:
      // File transfer flows both ways; cause 13 (file) or request family.
      if (cause != Cause::kFile && cause != Cause::kRequest &&
          !is_activation_family(cause) && !is_monitor_cause(cause)) {
        add(ViolationKind::kCauseMismatch, label + " with cause " + cause_name(cause));
      }
      break;
  }

  // Qualifier checks.
  for (const auto& obj : asdu.objects) {
    if (const auto* gi = std::get_if<InterrogationCommand>(&obj.value)) {
      if (gi->qualifier != 0 && (gi->qualifier < 20 || gi->qualifier > 36)) {
        add(ViolationKind::kBadQualifier,
            "QOI " + std::to_string(gi->qualifier) + " outside 20..36");
      }
    }
    if (const auto* dp = std::get_if<DoublePoint>(&obj.value)) {
      (void)dp;  // states 0..3 all representable; nothing to flag
    }
  }

  // SQ with a single object is pointless but legal; SQ with >127 objects is
  // impossible on the wire. Flag SQ where addresses would wrap the IOA
  // space (contiguity contract).
  if (asdu.sequence && !asdu.objects.empty()) {
    std::uint32_t base = asdu.objects.front().ioa;
    if (base + asdu.objects.size() - 1 > 0xffffff) {
      add(ViolationKind::kSequenceOverflow,
          "SQ range exceeds 24-bit IOA space from base " + std::to_string(base));
    }
  }
  return out;
}

}  // namespace uncharted::iec104
