// Quality descriptor bit fields (QDS, SIQ, DIQ, QDP) of IEC 60870-5-101/104.
#pragma once

#include <cstdint>
#include <string>

namespace uncharted::iec104 {

/// QDS quality descriptor bits shared by measured-value types.
struct Quality {
  bool overflow = false;     ///< OV (bit 0)
  bool blocked = false;      ///< BL (bit 4)
  bool substituted = false;  ///< SB (bit 5)
  bool not_topical = false;  ///< NT (bit 6)
  bool invalid = false;      ///< IV (bit 7)

  std::uint8_t encode() const {
    return static_cast<std::uint8_t>((overflow ? 0x01 : 0) | (blocked ? 0x10 : 0) |
                                     (substituted ? 0x20 : 0) | (not_topical ? 0x40 : 0) |
                                     (invalid ? 0x80 : 0));
  }

  static Quality decode(std::uint8_t v) {
    Quality q;
    q.overflow = v & 0x01;
    q.blocked = v & 0x10;
    q.substituted = v & 0x20;
    q.not_topical = v & 0x40;
    q.invalid = v & 0x80;
    return q;
  }

  bool good() const {
    return !overflow && !blocked && !substituted && !not_topical && !invalid;
  }

  std::string str() const {
    if (good()) return "good";
    std::string s;
    if (overflow) s += "OV,";
    if (blocked) s += "BL,";
    if (substituted) s += "SB,";
    if (not_topical) s += "NT,";
    if (invalid) s += "IV,";
    s.pop_back();
    return s;
  }

  bool operator==(const Quality&) const = default;
};

}  // namespace uncharted::iec104
