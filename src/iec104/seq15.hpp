// 15-bit IEC 104 sequence-number arithmetic, shared by the connection
// engine, the sequence audit and the conformance state machine. N(S)/N(R)
// live in [0, 32767] and wrap; every comparison must go through the
// modular distance below or the 32767 -> 0 wrap is misread as a reset.
#pragma once

#include <cstdint>

namespace uncharted::iec104 {

/// Modulus of the N(S)/N(R) counters.
inline constexpr std::uint16_t kSeqModulo = 1u << 15;

/// Masks a raw value into the 15-bit sequence space.
constexpr std::uint16_t seq15(std::uint16_t v) {
  return static_cast<std::uint16_t>(v % kSeqModulo);
}

/// The successor of `v` in sequence space (32767 wraps to 0).
constexpr std::uint16_t seq15_next(std::uint16_t v) {
  return static_cast<std::uint16_t>((v + 1) % kSeqModulo);
}

/// Non-negative forward distance from `b` to `a` (how far `a` is ahead),
/// in [0, 32767].
constexpr int seq15_ahead(std::uint16_t a, std::uint16_t b) {
  return static_cast<int>((a + kSeqModulo - b) % kSeqModulo);
}

/// Signed shortest distance a - b, mapped to [-16384, 16383]. Zero means
/// equal; +1 means `a` is the next value after `b`; -1 the previous. This
/// is what makes 32767 -> 0 continuity (delta 0 against the expected next
/// value) instead of a 32767-step regression.
constexpr int seq15_delta(std::uint16_t a, std::uint16_t b) {
  int d = seq15_ahead(a, b);
  if (d >= static_cast<int>(kSeqModulo / 2)) d -= static_cast<int>(kSeqModulo);
  return d;
}

}  // namespace uncharted::iec104
