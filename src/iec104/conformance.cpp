#include "iec104/conformance.hpp"

#include <algorithm>
#include <sstream>

#include "iec104/validate.hpp"

namespace uncharted::iec104 {

std::string severity_name(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kLegacy: return "legacy";
    case Severity::kWarn: return "warn";
    case Severity::kHostile: return "hostile";
  }
  return "?";
}

std::string violation_code_name(ViolationCode c) {
  switch (c) {
    case ViolationCode::kIBeforeStartDt: return "i-before-startdt";
    case ViolationCode::kDataAfterStopDt: return "data-after-stopdt";
    case ViolationCode::kUnsolicitedConfirm: return "unsolicited-confirm";
    case ViolationCode::kDuplicateStartDt: return "duplicate-startdt";
    case ViolationCode::kWindowOverflow: return "window-overflow";
    case ViolationCode::kAckOfUnsent: return "ack-of-unsent";
    case ViolationCode::kAckRegression: return "ack-regression";
    case ViolationCode::kAckStarvation: return "ack-starvation";
    case ViolationCode::kSequenceGap: return "sequence-gap";
    case ViolationCode::kSequenceDuplicate: return "sequence-duplicate";
    case ViolationCode::kSequenceReset: return "sequence-reset";
    case ViolationCode::kLegacyProfile: return "legacy-profile";
    case ViolationCode::kCotTypeMismatch: return "cot-type-mismatch";
    case ViolationCode::kWrongDirection: return "wrong-direction";
    case ViolationCode::kBadQualifier: return "bad-qualifier";
    case ViolationCode::kOversizedApdu: return "oversized-apdu";
    case ViolationCode::kGarbageTraffic: return "garbage-traffic";
    case ViolationCode::kUndecodableTraffic: return "undecodable-traffic";
    case ViolationCode::kDribbleTraffic: return "dribble-traffic";
    case ViolationCode::kTimerDeviation: return "timer-deviation";
  }
  return "?";
}

std::string verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kClean: return "clean";
    case Verdict::kLegacy: return "legacy";
    case Verdict::kSuspect: return "suspect";
    case Verdict::kHostile: return "hostile";
  }
  return "?";
}

Severity ConformancePolicy::severity(ViolationCode c) const {
  switch (c) {
    // Protocol-impossible from a conforming peer: the hostile set.
    case ViolationCode::kIBeforeStartDt:
    case ViolationCode::kDataAfterStopDt:
    case ViolationCode::kUnsolicitedConfirm:
    case ViolationCode::kWindowOverflow:
    case ViolationCode::kAckOfUnsent:
    case ViolationCode::kOversizedApdu:
      return Severity::kHostile;
    // Expected capture artifacts and measured-in-the-wild behaviour.
    case ViolationCode::kSequenceGap:
    case ViolationCode::kSequenceDuplicate:
    case ViolationCode::kTimerDeviation:
      return Severity::kInfo;
    case ViolationCode::kLegacyProfile:
      return whitelist_legacy_profiles ? Severity::kLegacy : Severity::kWarn;
    // Operationally possible but suspicious; accumulates warn score.
    case ViolationCode::kDuplicateStartDt:
    case ViolationCode::kAckRegression:
    case ViolationCode::kAckStarvation:
    case ViolationCode::kSequenceReset:
    case ViolationCode::kCotTypeMismatch:
    case ViolationCode::kWrongDirection:
    case ViolationCode::kBadQualifier:
    case ViolationCode::kGarbageTraffic:
    case ViolationCode::kUndecodableTraffic:
    case ViolationCode::kDribbleTraffic:
      return Severity::kWarn;
  }
  return Severity::kWarn;
}

double ConformancePolicy::warn_weight(ViolationCode c) const {
  switch (c) {
    // A sequence regression is an endpoint restart at best, a desync
    // attack at worst; weigh it double so a handful turns hostile.
    case ViolationCode::kSequenceReset:
      return 2.0;
    // Parse-level floods arrive in volume; a half weight means ~16 events
    // (not 8) cross the hostile score, keeping brief corruption suspect.
    case ViolationCode::kGarbageTraffic:
    case ViolationCode::kUndecodableTraffic:
    case ViolationCode::kDribbleTraffic:
      return 0.5;
    default:
      return 1.0;
  }
}

const ViolationRecord* ConformanceProfile::find(ViolationCode c) const {
  for (const auto& v : violations) {
    if (v.code == c) return &v;
  }
  return nullptr;
}

std::string ConformanceProfile::summary() const {
  std::ostringstream os;
  os << apdus << " apdus";
  std::vector<const ViolationRecord*> ordered;
  for (const auto& v : violations) ordered.push_back(&v);
  std::sort(ordered.begin(), ordered.end(), [](const auto* a, const auto* b) {
    if (a->severity != b->severity)
      return static_cast<int>(a->severity) > static_cast<int>(b->severity);
    return a->count > b->count;
  });
  for (const auto* v : ordered) {
    os << ", " << violation_code_name(v->code) << " x" << v->count << " ("
       << severity_name(v->severity) << ")";
  }
  return os.str();
}

ConformanceMachine::ConformanceMachine(ConformancePolicy policy)
    : policy_(policy) {}

void ConformanceMachine::on_connection_open(Timestamp ts) {
  (void)ts;
  fresh_ = true;
  dt_ = DtState::kStopped;
  // A fresh connection starts both V(S) counters and both ack levels at
  // zero, so ack-of-unsent and I-before-STARTDT become decidable.
  for (auto& dir : dirs_) {
    dir.seen_i = false;
    dir.next_ns = 0;
    dir.acked_known = true;
    dir.acked = 0;
  }
}

void ConformanceMachine::flag(ViolationCode code, Timestamp ts,
                              const std::string& detail, std::uint64_t count) {
  if (count == 0) return;
  Severity sev = policy_.severity(code);
  ViolationRecord* rec = nullptr;
  for (auto& v : profile_.violations) {
    if (v.code == code) {
      rec = &v;
      break;
    }
  }
  if (!rec) {
    profile_.violations.push_back(ViolationRecord{code, sev, 0, ts, ts, detail});
    rec = &profile_.violations.back();
  }
  rec->count += count;
  // Deferred regression judgement back-dates its duplicate to the frame
  // that regressed, so a record's span must absorb out-of-order stamps.
  rec->first_ts = std::min(rec->first_ts, ts);
  rec->last_ts = std::max(rec->last_ts, ts);
  switch (sev) {
    case Severity::kHostile:
      profile_.hostile_events += count;
      break;
    case Severity::kWarn:
      profile_.warn_score += policy_.warn_weight(code) * count;
      break;
    case Severity::kLegacy:
      profile_.legacy_events += count;
      break;
    case Severity::kInfo:
      break;
  }
}

void ConformanceMachine::observe_idle(Timestamp ts) {
  if (any_apdu_) {
    double idle = to_seconds(static_cast<DurationUs>(ts - last_apdu_ts_));
    profile_.timers.max_idle_s = std::max(profile_.timers.max_idle_s, idle);
    if (!timer_deviation_idle_ && idle > policy_.timers.t3 * policy_.timer_grace) {
      timer_deviation_idle_ = true;
      std::ostringstream os;
      os << "idle " << idle << "s exceeds t3=" << policy_.timers.t3
         << "s (keep-alive loop slower than standard)";
      flag(ViolationCode::kTimerDeviation, ts, os.str());
    }
  }
  any_apdu_ = true;
  last_apdu_ts_ = ts;
}

void ConformanceMachine::handle_u(Timestamp ts, bool from_controller,
                                  UFunction f) {
  DirState& sender = dirs_[from_controller ? 0 : 1];
  DirState& peer = dirs_[from_controller ? 1 : 0];
  switch (f) {
    case UFunction::kStartDtAct:
      if (dt_ == DtState::kStarted || dt_ == DtState::kStartPending) {
        flag(ViolationCode::kDuplicateStartDt, ts,
             "STARTDT act while data transfer already active");
      }
      dt_ = DtState::kStartPending;
      stop_act_from_controller_ = false;
      startdt_act_ts_ = ts;
      startdt_act_seen_ = true;
      break;
    case UFunction::kStartDtCon:
      if (dt_ == DtState::kStartPending) {
        double rtt = to_seconds(static_cast<DurationUs>(ts - startdt_act_ts_));
        profile_.timers.max_startdt_rtt_s =
            std::max(profile_.timers.max_startdt_rtt_s, rtt);
        dt_ = DtState::kStarted;
      } else if (dt_ == DtState::kUnknown && !startdt_act_seen_) {
        // Mid-stream anchor: the act predates the capture.
        dt_ = DtState::kStarted;
      } else if (dt_ == DtState::kStarted) {
        // Transfer already active: a retransmitted con, not an attack.
        flag(ViolationCode::kSequenceDuplicate, ts, "STARTDT con repeated");
      } else {
        flag(ViolationCode::kUnsolicitedConfirm, ts,
             "STARTDT con without a pending act");
      }
      break;
    case UFunction::kStopDtAct:
      dt_ = DtState::kStopPending;
      stop_act_from_controller_ = from_controller;
      break;
    case UFunction::kStopDtCon:
      if (dt_ == DtState::kStopPending || dt_ == DtState::kUnknown) {
        dt_ = DtState::kStoppedAfter;
      } else if (dt_ == DtState::kStoppedAfter) {
        flag(ViolationCode::kSequenceDuplicate, ts, "STOPDT con repeated");
      } else {
        flag(ViolationCode::kUnsolicitedConfirm, ts,
             "STOPDT con without a pending act");
      }
      break;
    case UFunction::kTestFrAct:
      sender.testfr_outstanding = true;
      sender.testfr_ts = ts;
      break;
    case UFunction::kTestFrCon:
      // The matching act came from the opposite direction.
      if (peer.testfr_outstanding) {
        double rtt = to_seconds(static_cast<DurationUs>(ts - peer.testfr_ts));
        profile_.timers.max_testfr_rtt_s =
            std::max(profile_.timers.max_testfr_rtt_s, rtt);
        peer.testfr_outstanding = false;
        peer.testfr_exchange_seen = true;
      } else if (peer.testfr_exchange_seen) {
        // An exchange completed; a stray extra con right after it is a
        // retransmitted copy, not an attack.
        flag(ViolationCode::kSequenceDuplicate, ts, "TESTFR con repeated");
      } else if (!fresh_ && !sender.testfr_anchor_used) {
        // Mid-stream: exactly one con may answer an act sent before the
        // capture began. A second unmatched con has no such excuse.
        sender.testfr_anchor_used = true;
      } else {
        flag(ViolationCode::kUnsolicitedConfirm, ts,
             "TESTFR con without a pending act");
      }
      break;
  }
}

bool ConformanceMachine::handle_sequence(Timestamp ts, DirState& dir,
                                         const Apdu& apdu) {
  std::uint16_t ns = seq15(apdu.send_seq);
  if (!dir.seen_i) {
    dir.seen_i = true;
    if (fresh_ && ns != 0) {
      std::ostringstream os;
      os << "first N(S)=" << ns << " on a fresh connection (expected 0)";
      flag(ViolationCode::kSequenceGap, ts, os.str());
    }
    if (!dir.acked_known) {
      // Mid-stream: count the window from here; earlier traffic is unseen.
      dir.acked_known = true;
      dir.acked = ns;
    }
    dir.next_ns = seq15_next(ns);
  } else {
    int delta = seq15_delta(ns, dir.next_ns);
    if (dir.pending_regress) {
      if (ns == dir.regress_ns) {
        // Yet another copy of the same regressed frame.
        flag(ViolationCode::kSequenceDuplicate, ts, "N(S) repeated");
        ++profile_.i_apdus;
        return false;
      }
      if (delta == 0) {
        // The stream resumed exactly where it left off: the regressed
        // frame was a TCP retransmission surfacing late (§6.3.1).
        flag(ViolationCode::kSequenceDuplicate, dir.regress_ts, "N(S) repeated");
      } else {
        // The stream did not resume: the regression was real. Re-anchor
        // from the rewound value; stale acks would cascade regressions.
        std::ostringstream os;
        os << "N(S) regressed from " << dir.next_ns << " to " << dir.regress_ns;
        flag(ViolationCode::kSequenceReset, dir.regress_ts, os.str());
        dir.next_ns = seq15_next(dir.regress_ns);
        dir.acked_known = true;
        dir.acked = dir.regress_ns;
        dir.recv_since_ack = 0;
        delta = seq15_delta(ns, dir.next_ns);
      }
      dir.pending_regress = false;
    }
    if (delta == 0) {
      dir.next_ns = seq15_next(ns);
    } else if (delta > 0) {
      std::ostringstream os;
      os << "N(S) jumped " << delta << " ahead (capture loss)";
      flag(ViolationCode::kSequenceGap, ts, os.str());
      dir.next_ns = seq15_next(ns);
      if (dir.acked_known && seq15_delta(dir.next_ns, dir.acked) < 0) {
        // The lost frames were presumably acked too; keep the anchor sane.
        dir.acked = ns;
      }
    } else if (dir.acked_known && seq15_delta(ns, dir.acked) < 0) {
      // Regression to a frame the peer already acknowledged: necessarily a
      // stale copy — a genuine restart below the ack level would be dead on
      // arrival at a real stack (§6.3.1 retransmission artifact).
      flag(ViolationCode::kSequenceDuplicate, ts, "N(S) repeated");
      ++profile_.i_apdus;
      return false;
    } else {
      // Regression above the ack level: judgement deferred until the next
      // frame (see DirState). A stale copy's N(R) must not feed ack
      // tracking either.
      dir.pending_regress = true;
      dir.regress_ns = ns;
      dir.regress_ts = ts;
      ++profile_.i_apdus;
      return false;
    }
  }
  ++profile_.i_apdus;
  if (dir.acked_known) {
    int outstanding = seq15_ahead(dir.next_ns, dir.acked);
    if (outstanding == 1) dir.oldest_unacked_ts = ts;
    if (outstanding > policy_.k + policy_.window_slack) {
      std::ostringstream os;
      os << outstanding << " unacknowledged I-frames exceed k=" << policy_.k;
      flag(ViolationCode::kWindowOverflow, ts, os.str());
    }
  }
  ++dir.recv_since_ack;
  if (dir.recv_since_ack == policy_.w * policy_.ack_starvation_factor + 1) {
    std::ostringstream os;
    os << dir.recv_since_ack << " I-frames without a reverse acknowledgement"
       << " (w=" << policy_.w << ")";
    flag(ViolationCode::kAckStarvation, ts, os.str());
  }
  return true;
}

void ConformanceMachine::handle_ack(Timestamp ts, bool from_controller,
                                    std::uint16_t nr) {
  nr = seq15(nr);
  DirState& dd = dirs_[from_controller ? 1 : 0];  // frames being acked
  if (!dd.acked_known) {
    // Mid-stream anchor: the ack level when the capture joined.
    dd.acked_known = true;
    dd.acked = nr;
    dd.recv_since_ack = 0;
    return;
  }
  int advance = seq15_delta(nr, dd.acked);
  if (advance == 0) return;
  if (advance < 0) {
    if (-advance <= policy_.k + policy_.w) {
      // A slightly older N(R) is a retransmitted copy of an earlier ack
      // surfacing late, not the peer un-acknowledging frames.
      flag(ViolationCode::kSequenceDuplicate, ts, "stale N(R) repeated");
    } else {
      std::ostringstream os;
      os << "N(R) regressed from " << dd.acked << " to " << nr;
      flag(ViolationCode::kAckRegression, ts, os.str());
    }
    return;
  }
  // V(S) of the acked direction: next_ns once traffic was seen; zero on a
  // fresh connection that has sent nothing yet.
  bool vs_known = dd.seen_i || fresh_;
  std::uint16_t vs = dd.seen_i ? dd.next_ns : 0;
  if (vs_known && seq15_delta(nr, vs) > 0) {
    if (fresh_) {
      std::ostringstream os;
      os << "N(R)=" << nr << " acknowledges beyond V(S)=" << vs;
      flag(ViolationCode::kAckOfUnsent, ts, os.str());
      return;  // do not advance the anchor past reality
    }
    // Mid-stream, ack-ahead is indistinguishable from capture loss of the
    // acked I-frames: record the gap and resynchronize.
    std::ostringstream os;
    os << "peer acknowledged " << seq15_delta(nr, vs)
       << " I-frames the capture never saw";
    flag(ViolationCode::kSequenceGap, ts, os.str());
    dd.next_ns = nr;
  }
  if (dd.oldest_unacked_ts != 0) {
    double delay = to_seconds(static_cast<DurationUs>(ts - dd.oldest_unacked_ts));
    profile_.timers.max_ack_delay_s =
        std::max(profile_.timers.max_ack_delay_s, delay);
    if (!timer_deviation_ack_ && delay > policy_.timers.t2 * policy_.timer_grace) {
      timer_deviation_ack_ = true;
      std::ostringstream os;
      os << "acknowledgement after " << delay << "s exceeds t2="
         << policy_.timers.t2 << "s";
      flag(ViolationCode::kTimerDeviation, ts, os.str());
    }
  }
  dd.acked = nr;
  dd.recv_since_ack = 0;
  if (dd.seen_i && seq15_delta(nr, dd.next_ns) == 0) dd.oldest_unacked_ts = 0;
}

void ConformanceMachine::on_apdu(Timestamp ts, bool from_controller,
                                 const Apdu& apdu, const CodecProfile& profile) {
  observe_idle(ts);
  ++profile_.apdus;
  switch (apdu.format) {
    case ApduFormat::kU:
      handle_u(ts, from_controller, apdu.u_function);
      return;
    case ApduFormat::kS:
      handle_ack(ts, from_controller, apdu.recv_seq);
      return;
    case ApduFormat::kI:
      break;
  }

  // Data-transfer state: is an I-frame even legal right now?
  switch (dt_) {
    case DtState::kUnknown:
      dt_ = DtState::kStarted;  // mid-stream anchor: transfer was active
      break;
    case DtState::kStarted:
      break;
    case DtState::kStopped:
      flag(ViolationCode::kIBeforeStartDt, ts,
           "I-frame on a fresh connection before STARTDT");
      break;
    case DtState::kStartPending:
      if (from_controller) {
        // The activating station must wait for STARTDT con before data —
        // the classic Industroyer-style blind command ordering.
        flag(ViolationCode::kIBeforeStartDt, ts,
             "I-frame sent before STARTDT was confirmed");
      } else {
        // The outstation answers the act with con, then data; a missing
        // con here is capture loss, not an attack.
        dt_ = DtState::kStarted;
      }
      break;
    case DtState::kStopPending:
      if (from_controller == stop_act_from_controller_) {
        flag(ViolationCode::kDataAfterStopDt, ts,
             "I-frame from the station that requested STOPDT");
      }
      // The peer may drain queued frames until it confirms the stop.
      break;
    case DtState::kStoppedAfter:
      flag(ViolationCode::kDataAfterStopDt, ts,
           "I-frame after STOPDT was confirmed");
      break;
  }

  if (handle_sequence(ts, dirs_[from_controller ? 0 : 1], apdu)) {
    handle_ack(ts, from_controller, apdu.recv_seq);
  }

  if (!profile.is_standard()) {
    flag(ViolationCode::kLegacyProfile, ts,
         "decoded with legacy profile " + profile.str());
  }
  if (apdu.asdu) {
    Direction direction = from_controller ? Direction::kFromController
                                          : Direction::kFromOutstation;
    for (const auto& v : validate_asdu(*apdu.asdu, direction)) {
      ViolationCode code = ViolationCode::kCotTypeMismatch;
      switch (v.kind) {
        case ViolationKind::kWrongDirection:
          code = ViolationCode::kWrongDirection;
          break;
        case ViolationKind::kCauseMismatch:
          code = ViolationCode::kCotTypeMismatch;
          break;
        case ViolationKind::kBadQualifier:
        case ViolationKind::kSequenceOverflow:
          code = ViolationCode::kBadQualifier;
          break;
      }
      flag(code, ts, v.detail);
    }
  }
}

void ConformanceMachine::on_parse_failures(Timestamp ts, FailureKind kind,
                                           std::uint64_t events,
                                           std::uint64_t oversized) {
  if (oversized > 0) {
    flag(ViolationCode::kOversizedApdu, ts,
         "frame length octet beyond the 253-octet APDU limit", oversized);
    events = events > oversized ? events - oversized : 0;
  }
  switch (kind) {
    case FailureKind::kGarbage:
      flag(ViolationCode::kGarbageTraffic, ts,
           "stream desynchronized; bytes skipped to resync", events);
      break;
    case FailureKind::kUndecodable:
      flag(ViolationCode::kUndecodableTraffic, ts,
           "framed APDU no codec profile explains", events);
      break;
    case FailureKind::kTruncatedTail:
      flag(ViolationCode::kDribbleTraffic, ts,
           "partial frame abandoned (dribble or cut stream)", events);
      break;
  }
}

Verdict ConformanceMachine::verdict() const {
  if (profile_.hostile_events > 0 || profile_.warn_score >= policy_.hostile_score)
    return Verdict::kHostile;
  if (profile_.warn_score > 0.0) return Verdict::kSuspect;
  if (profile_.legacy_events > 0) return Verdict::kLegacy;
  return Verdict::kClean;
}

}  // namespace uncharted::iec104
