// IEC 104 conformance state machine: tells tolerated legacy deviation
// apart from hostile nonconformance, per directed connection.
//
// The paper's §6.1 finding is that real BPS endpoints violate the standard
// in *benign* ways — O37 kept a 2-octet IOA, O53/O58/O28 a 1-octet COT —
// and its §7 future work is using the measured models to catch
// Industroyer-style intrusions. Doing that demands a machine that scores
// the paper's deviations clean (they are whitelisted as kLegacy) while
// flagging protocol-impossible behaviour — I-frames before STARTDT on a
// fresh connection, acknowledgements of never-sent frames, k-window
// overflow, confirmation frames nobody asked for — as kHostile.
//
// The machine tracks one TCP connection (both directions) and is
// deliberately capture-friendly: without on_connection_open() it anchors
// mid-stream like the paper's taps do (the first I-frame is continuity,
// an unmatched STARTDT con is an anchor, not an attack). Timer behaviour
// (T1/T2/T3) is *observed* and reported, never scored hostile: the paper
// measured a 430 s keep-alive loop on C2-O30, so timer deviation is a
// fingerprint, not an indictment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "iec104/apdu.hpp"
#include "iec104/constants.hpp"
#include "iec104/parser.hpp"
#include "iec104/seq15.hpp"
#include "util/timebase.hpp"

namespace uncharted::iec104 {

/// How bad one conformance violation is.
enum class Severity {
  kInfo,     ///< expected capture artifacts: loss gaps, TCP retransmissions
  kLegacy,   ///< the paper's whitelisted IEC 101 leftovers (O37, O53/O58/O28)
  kWarn,     ///< suspicious but operationally possible; accumulates score
  kHostile,  ///< protocol-impossible from a conforming peer
};

std::string severity_name(Severity s);

/// Everything the machine can flag.
enum class ViolationCode {
  // Data-transfer (STARTDT/STOPDT) state machine.
  kIBeforeStartDt,      ///< I-frame on a connection known to be in STOPDT
  kDataAfterStopDt,     ///< I-frame after an observed STOPDT confirmation
  kUnsolicitedConfirm,  ///< STARTDT/STOPDT/TESTFR con without a matching act
  kDuplicateStartDt,    ///< STARTDT act while data transfer is already active
  // k/w window and 15-bit sequence arithmetic.
  kWindowOverflow,      ///< more than k I-frames outstanding unacknowledged
  kAckOfUnsent,         ///< N(R) acknowledging beyond the peer's V(S)
  kAckRegression,       ///< N(R) moving backwards
  kAckStarvation,       ///< far more than w I-frames received without any ack
  kSequenceGap,         ///< N(S) forward jump (capture loss)
  kSequenceDuplicate,   ///< N(S) repeated (TCP retransmission, §6.3.1)
  kSequenceReset,       ///< N(S) regression (endpoint restart — or desync)
  // Encoding and semantics.
  kLegacyProfile,       ///< whitelisted §6.1 deviation (2-octet IOA, 1-octet COT)
  kCotTypeMismatch,     ///< COT illegal for the TypeID (compatibility matrix)
  kWrongDirection,      ///< monitor type from the controller, act from the RTU
  kBadQualifier,        ///< qualifier outside its defined range
  kOversizedApdu,       ///< length octet beyond the 253-octet APDU limit
  // Parse-level floods, fed from the stream parser's failure taxonomy.
  kGarbageTraffic,      ///< desynchronized bytes the parser had to skip
  kUndecodableTraffic,  ///< framed APDUs no codec profile explains
  kDribbleTraffic,      ///< partial frames abandoned (slowloris dribble)
  // Observed-timer deviations (never hostile; a fingerprint).
  kTimerDeviation,      ///< observed T1/T2/T3 behaviour outside the defaults
};

std::string violation_code_name(ViolationCode c);

/// Severity policy: classifies violations and weighs them into a verdict.
/// One policy serves all three consumers — the analysis audit, the
/// redundancy supervisor's circuit breaker, and (via QuarantinePolicy)
/// the dataset quarantine.
struct ConformancePolicy {
  int k = kDefaultK;  ///< max unacknowledged I-frames the sender may hold
  int w = kDefaultW;  ///< receiver must acknowledge at latest every w
  Timers timers;      ///< reference values for observed-timer deviations
  /// Slack added to k before kWindowOverflow fires (capture-edge tolerance).
  int window_slack = 0;
  /// kAckStarvation fires past w * ack_starvation_factor received I-frames
  /// with no acknowledgement in the reverse direction.
  int ack_starvation_factor = 4;
  /// Observed idle/ack latencies beyond timer * timer_grace are recorded as
  /// kTimerDeviation (info).
  double timer_grace = 3.0;
  /// Score the paper's legacy profiles kLegacy (clean verdict) instead of
  /// kWarn. This is the measured-deviation whitelist.
  bool whitelist_legacy_profiles = true;
  /// Accumulated warn weight at which a profile turns hostile even without
  /// a single hostile-severity event (repeated desyncs, failure floods).
  double hostile_score = 8.0;

  Severity severity(ViolationCode c) const;
  /// Weight a kWarn violation contributes towards hostile_score.
  double warn_weight(ViolationCode c) const;
};

/// Severity-weighted quarantine scoring for degraded-mode ingestion. This
/// replaces the old flat ">= 8 parse failures" heuristic: failure kinds
/// weigh differently, and the threshold is a score, not a count. Defaults
/// reproduce the former behaviour exactly (all weights 1, threshold 8,
/// failures must outnumber successes).
struct QuarantinePolicy {
  double garbage_weight = 1.0;      ///< per resync event
  double undecodable_weight = 1.0;  ///< per unexplained framed APDU
  double truncated_weight = 1.0;    ///< per abandoned partial frame
  double oversized_weight = 0.0;    ///< extra weight per oversized frame
  /// Score at which a directed stream is quarantined; 0 disables.
  double score_threshold = 8.0;
  /// Additionally require failures to outnumber parsed APDUs, so a stream
  /// that is mostly healthy is never dropped for a bad patch.
  bool require_failures_exceed_apdus = true;

  double score(std::uint64_t garbage, std::uint64_t undecodable,
               std::uint64_t truncated, std::uint64_t oversized) const {
    return garbage * garbage_weight + undecodable * undecodable_weight +
           truncated * truncated_weight + oversized * oversized_weight;
  }
  bool should_quarantine(double violation_score, std::uint64_t failures,
                         std::uint64_t apdus) const {
    if (score_threshold <= 0.0) return false;
    if (violation_score < score_threshold) return false;
    return !require_failures_exceed_apdus || failures > apdus;
  }
};

/// One aggregated violation: every occurrence of `code` on the connection.
struct ViolationRecord {
  ViolationCode code = ViolationCode::kSequenceGap;
  Severity severity = Severity::kInfo;
  std::uint64_t count = 0;
  Timestamp first_ts = 0;
  Timestamp last_ts = 0;
  std::string detail;  ///< first occurrence, human-readable
};

/// Timer behaviour derived from timestamps — observed, not enforced.
struct TimerObservations {
  double max_idle_s = 0.0;         ///< longest gap between APDUs (T3 proxy)
  double max_ack_delay_s = 0.0;    ///< longest I-frame-to-ack latency (T2 proxy)
  double max_testfr_rtt_s = -1.0;  ///< slowest TESTFR act->con (T1 proxy), -1 none
  double max_startdt_rtt_s = -1.0; ///< slowest STARTDT act->con, -1 none
};

/// The machine's overall judgement of a connection.
enum class Verdict {
  kClean,    ///< fully conforming
  kLegacy,   ///< conforming modulo whitelisted paper deviations
  kSuspect,  ///< warn-severity violations below the hostile score
  kHostile,  ///< hostile-severity event, or warn score past the threshold
};

std::string verdict_name(Verdict v);

/// Per-connection conformance result.
struct ConformanceProfile {
  std::uint64_t apdus = 0;
  std::uint64_t i_apdus = 0;
  std::vector<ViolationRecord> violations;  ///< aggregated by code
  TimerObservations timers;
  double warn_score = 0.0;
  std::uint64_t hostile_events = 0;
  std::uint64_t legacy_events = 0;

  const ViolationRecord* find(ViolationCode c) const;
  std::uint64_t count(ViolationCode c) const {
    const auto* rec = find(c);
    return rec ? rec->count : 0;
  }
  /// One-line rendering: verdict, score, top violations.
  std::string summary() const;
};

/// Incremental conformance tracker for one TCP connection (both
/// directions). Feed APDUs in capture order; direction is "true when the
/// frame travels controller -> outstation" (the outstation owns the
/// IEC 104 port). Live endpoints call on_connection_open() so STOPDT
/// state is definitive; capture consumers call it only when the
/// establishing SYN was inside the capture.
class ConformanceMachine {
 public:
  explicit ConformanceMachine(ConformancePolicy policy = {});

  /// A fresh transport connection was observed: the connection is
  /// definitively in STOPDT and both sequence counters are at zero.
  void on_connection_open(Timestamp ts);

  /// One decoded APDU. `profile` is the codec profile that explained it
  /// (legacy profiles trip the whitelist path).
  void on_apdu(Timestamp ts, bool from_controller, const Apdu& apdu,
               const CodecProfile& profile = CodecProfile::standard());

  /// Parse-level damage on this connection: `events` failures of `kind`
  /// plus how many of them were frames claiming an oversized length.
  void on_parse_failures(Timestamp ts, FailureKind kind, std::uint64_t events,
                         std::uint64_t oversized = 0);

  const ConformanceProfile& profile() const { return profile_; }
  Verdict verdict() const;
  bool hostile() const { return verdict() == Verdict::kHostile; }
  const ConformancePolicy& policy() const { return policy_; }

 private:
  /// Data-transfer state. kUnknown anchors mid-stream captures; the two
  /// stopped states are only reached on positive evidence, which is what
  /// keeps benign tail-of-capture traffic from scoring hostile.
  enum class DtState {
    kUnknown,       ///< no evidence yet (capture joined mid-stream)
    kStopped,       ///< fresh connection, no STARTDT yet
    kStartPending,  ///< STARTDT act seen, con outstanding
    kStarted,       ///< STARTDT confirmed (or anchored from I traffic)
    kStopPending,   ///< STOPDT act seen, con outstanding
    kStoppedAfter,  ///< STOPDT confirmed
  };

  struct DirState {
    bool seen_i = false;          ///< N(S) anchor valid
    std::uint16_t next_ns = 0;    ///< next expected N(S)
    bool acked_known = false;     ///< peer-ack anchor valid
    std::uint16_t acked = 0;      ///< highest N(R) the peer acknowledged
    Timestamp oldest_unacked_ts = 0;
    int recv_since_ack = 0;       ///< I-frames we saw with no reverse ack
    bool testfr_outstanding = false;
    Timestamp testfr_ts = 0;
    bool testfr_exchange_seen = false;  ///< a full act->con pair observed
    bool testfr_anchor_used = false;    ///< mid-stream con tolerance spent
    /// A regressed N(S) whose judgement is deferred: a TCP retransmission
    /// surfacing late looks identical to a desync rewind until the NEXT
    /// frame shows whether the stream resumed (retransmission) or
    /// continued from the rewound value (reset).
    bool pending_regress = false;
    std::uint16_t regress_ns = 0;
    Timestamp regress_ts = 0;
  };

  void flag(ViolationCode code, Timestamp ts, const std::string& detail,
            std::uint64_t count = 1);
  void handle_u(Timestamp ts, bool from_controller, UFunction f);
  /// Returns false when the frame is (possibly) a stale retransmitted
  /// copy whose N(R) must not feed ack tracking.
  bool handle_sequence(Timestamp ts, DirState& dir, const Apdu& apdu);
  void handle_ack(Timestamp ts, bool from_controller, std::uint16_t nr);
  void observe_idle(Timestamp ts);

  ConformancePolicy policy_;
  ConformanceProfile profile_;
  DtState dt_ = DtState::kUnknown;
  bool fresh_ = false;  ///< on_connection_open observed
  bool startdt_act_seen_ = false;
  bool stop_act_from_controller_ = false;  ///< who requested kStopPending
  Timestamp startdt_act_ts_ = 0;
  bool timer_deviation_idle_ = false;  ///< flag once, observe continuously
  bool timer_deviation_ack_ = false;
  Timestamp last_apdu_ts_ = 0;
  bool any_apdu_ = false;
  DirState dirs_[2];  ///< [0] controller->outstation, [1] reverse
};

}  // namespace uncharted::iec104
