// IEC 60870-5-104 protocol constants: type identifications, causes of
// transmission, U-format functions.
//
// The TypeID list is exactly the 54 ASDU types IEC 104 supports out of the
// 127 defined by IEC 101 (paper Table 5).
#pragma once

#include <cstdint>
#include <string>

namespace uncharted::iec104 {

/// IEC 104 default TCP port.
constexpr std::uint16_t kIec104Port = 2404;

/// APDU start byte.
constexpr std::uint8_t kStartByte = 0x68;

/// Maximum APDU length field value (control fields + ASDU).
constexpr std::size_t kMaxApduLength = 253;

/// ASDU type identification (Table 5 of the paper).
enum class TypeId : std::uint8_t {
  M_SP_NA_1 = 1,    ///< Single-point information
  M_DP_NA_1 = 3,    ///< Double-point information
  M_ST_NA_1 = 5,    ///< Step position information
  M_BO_NA_1 = 7,    ///< Bitstring of 32 bits
  M_ME_NA_1 = 9,    ///< Measured value, normalized
  M_ME_NB_1 = 11,   ///< Measured value, scaled
  M_ME_NC_1 = 13,   ///< Measured value, short float
  M_IT_NA_1 = 15,   ///< Integrated totals
  M_PS_NA_1 = 20,   ///< Packed single-point with status change detection
  M_ME_ND_1 = 21,   ///< Measured value, normalized, no quality descriptor
  M_SP_TB_1 = 30,   ///< Single-point + CP56Time2a
  M_DP_TB_1 = 31,   ///< Double-point + CP56Time2a
  M_ST_TB_1 = 32,   ///< Step position + CP56Time2a
  M_BO_TB_1 = 33,   ///< Bitstring 32 + CP56Time2a
  M_ME_TD_1 = 34,   ///< Measured normalized + CP56Time2a
  M_ME_TE_1 = 35,   ///< Measured scaled + CP56Time2a
  M_ME_TF_1 = 36,   ///< Measured short float + CP56Time2a
  M_IT_TB_1 = 37,   ///< Integrated totals + CP56Time2a
  M_EP_TD_1 = 38,   ///< Event of protection equipment + CP56Time2a
  M_EP_TE_1 = 39,   ///< Packed start events of protection + CP56Time2a
  M_EP_TF_1 = 40,   ///< Packed output circuit info + CP56Time2a
  C_SC_NA_1 = 45,   ///< Single command
  C_DC_NA_1 = 46,   ///< Double command
  C_RC_NA_1 = 47,   ///< Regulating step command
  C_SE_NA_1 = 48,   ///< Set point, normalized
  C_SE_NB_1 = 49,   ///< Set point, scaled
  C_SE_NC_1 = 50,   ///< Set point, short float
  C_BO_NA_1 = 51,   ///< Bitstring 32 command
  C_SC_TA_1 = 58,   ///< Single command + CP56Time2a
  C_DC_TA_1 = 59,   ///< Double command + CP56Time2a
  C_RC_TA_1 = 60,   ///< Regulating step + CP56Time2a
  C_SE_TA_1 = 61,   ///< Set point normalized + CP56Time2a
  C_SE_TB_1 = 62,   ///< Set point scaled + CP56Time2a
  C_SE_TC_1 = 63,   ///< Set point short float + CP56Time2a
  C_BO_TA_1 = 64,   ///< Bitstring 32 + CP56Time2a
  M_EI_NA_1 = 70,   ///< End of initialization
  C_IC_NA_1 = 100,  ///< Interrogation command
  C_CI_NA_1 = 101,  ///< Counter interrogation command
  C_RD_NA_1 = 102,  ///< Read command
  C_CS_NA_1 = 103,  ///< Clock synchronization command
  C_RP_NA_1 = 105,  ///< Reset process command
  C_TS_TA_1 = 107,  ///< Test command + CP56Time2a
  P_ME_NA_1 = 110,  ///< Parameter of measured value, normalized
  P_ME_NB_1 = 111,  ///< Parameter of measured value, scaled
  P_ME_NC_1 = 112,  ///< Parameter of measured value, short float
  P_AC_NA_1 = 113,  ///< Parameter activation
  F_FR_NA_1 = 120,  ///< File ready
  F_SR_NA_1 = 121,  ///< Section ready
  F_SC_NA_1 = 122,  ///< Call directory/file/section
  F_LS_NA_1 = 123,  ///< Last section/segment
  F_AF_NA_1 = 124,  ///< Ack file/section
  F_SG_NA_1 = 125,  ///< Segment
  F_DR_TA_1 = 126,  ///< Directory
  F_SC_NB_1 = 127,  ///< Query log, request archive file
};

/// True if the code is one of the 54 IEC-104-supported typeIDs.
bool is_supported_type(std::uint8_t code);

/// "M_ME_TF_1"-style acronym; "TYPE_<n>" for unknown codes.
std::string type_acronym(TypeId t);

/// Human description, matching Table 5 wording.
std::string type_description(TypeId t);

/// Cause of transmission (low 6 bits of the COT octet).
enum class Cause : std::uint8_t {
  kPeriodic = 1,          ///< cyclic
  kBackground = 2,
  kSpontaneous = 3,
  kInitialized = 4,
  kRequest = 5,
  kActivation = 6,
  kActivationCon = 7,
  kDeactivation = 8,
  kDeactivationCon = 9,
  kActivationTerm = 10,
  kReturnRemote = 11,
  kReturnLocal = 12,
  kFile = 13,
  kInterrogatedByStation = 20,  ///< response to a general interrogation
  kInterrogatedByGroup1 = 21,
  kUnknownTypeId = 44,
  kUnknownCause = 45,
  kUnknownCommonAddress = 46,
  kUnknownIoa = 47,
};

std::string cause_name(Cause c);

/// U-format function bits (control field 1 without the 0x03 discriminator).
/// Token names follow the paper's Table 4 (U1..U32).
enum class UFunction : std::uint8_t {
  kStartDtAct = 0x04,   ///< U1
  kStartDtCon = 0x08,   ///< U2
  kStopDtAct = 0x10,    ///< U4
  kStopDtCon = 0x20,    ///< U8
  kTestFrAct = 0x40,    ///< U16
  kTestFrCon = 0x80,    ///< U32
};

std::string u_function_name(UFunction f);

/// Default IEC 104 timer values in seconds (§4 of the paper).
struct Timers {
  double t0 = 30.0;  ///< connection establishment timeout
  double t1 = 15.0;  ///< send/test APDU timeout
  double t2 = 10.0;  ///< acknowledgement timeout (t2 < t1)
  double t3 = 20.0;  ///< keep-alive idle timeout
};

/// Default k/w transmission parameters (max unacked I APDUs / ack-every-w).
constexpr int kDefaultK = 12;
constexpr int kDefaultW = 8;

}  // namespace uncharted::iec104
