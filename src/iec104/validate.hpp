// Semantic validation of ASDUs beyond wire-format correctness: direction
// rules (monitor types flow from outstations, commands from servers),
// cause-of-transmission compatibility per type, and qualifier sanity.
// These are the checks a specification-based IDS layers on top of parsing
// — the natural hardening of the paper's whitelist proposal (§7).
#pragma once

#include <string>
#include <vector>

#include "iec104/asdu.hpp"

namespace uncharted::iec104 {

/// Message direction relative to the outstation.
enum class Direction {
  kFromOutstation,  ///< monitor direction
  kFromController,  ///< control direction
};

/// Broad type classes (IEC 60870-5-101 §7.1 groupings).
enum class TypeCategory {
  kMonitor,    ///< M_* process information
  kControl,    ///< C_SC..C_BO commands
  kSystem,     ///< interrogation, clock, reset, test
  kParameter,  ///< P_* parameter loading
  kFile,       ///< F_* file transfer
};

TypeCategory type_category(TypeId t);

enum class ViolationKind {
  kWrongDirection,    ///< e.g. a measured value sent by the server
  kCauseMismatch,     ///< COT not legal for this type
  kBadQualifier,      ///< e.g. QOI outside 20..36
  kSequenceOverflow,  ///< SQ set with non-contiguous addressing semantics
};

std::string violation_kind_name(ViolationKind k);

struct Violation {
  ViolationKind kind;
  std::string detail;
};

/// Validates one ASDU observed travelling in `direction`.
/// Returns every rule violation found (empty = clean).
std::vector<Violation> validate_asdu(const Asdu& asdu, Direction direction);

}  // namespace uncharted::iec104
