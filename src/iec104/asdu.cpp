#include "iec104/asdu.hpp"

#include <type_traits>

namespace uncharted::iec104 {

std::string CodecProfile::str() const {
  if (is_standard()) return "standard";
  return "cot=" + std::to_string(cot_octets) + ",ioa=" + std::to_string(ioa_octets) +
         ",ca=" + std::to_string(ca_octets);
}

std::string CauseOfTransmission::str() const {
  std::string s = cause_name(cause);
  if (negative) s += " (neg)";
  if (test) s += " (test)";
  return s;
}

namespace {

Error type_mismatch(TypeId t) {
  return Err("element-type-mismatch", type_acronym(t));
}

/// Checked fetch of the expected alternative.
template <typename T>
Result<const T*> expect(const ElementValue& v, TypeId t) {
  if (const T* p = std::get_if<T>(&v)) return p;
  return type_mismatch(t);
}

std::uint8_t command_octet(bool on_or_state_low, std::uint8_t state, bool select,
                           std::uint8_t qualifier) {
  // SCO/DCO/RCO share the layout: low bits state, QU bits 2..6, S/E bit 7.
  std::uint8_t base = state ? state : (on_or_state_low ? 1 : 0);
  return static_cast<std::uint8_t>((base & 0x03) | ((qualifier & 0x1f) << 2) |
                                   (select ? 0x80 : 0));
}

void write_u24le(ByteWriter& w, std::uint32_t v) {
  w.u8(static_cast<std::uint8_t>(v & 0xff));
  w.u8(static_cast<std::uint8_t>((v >> 8) & 0xff));
  w.u8(static_cast<std::uint8_t>((v >> 16) & 0xff));
}

Result<std::uint32_t> read_u24le(ByteReader& r) {
  auto a = r.u8();
  auto b = r.u8();
  auto c = r.u8();
  if (!c) return Err("truncated", "u24");
  return static_cast<std::uint32_t>(a.value()) |
         (static_cast<std::uint32_t>(b.value()) << 8) |
         (static_cast<std::uint32_t>(c.value()) << 16);
}

}  // namespace

Status encode_element(TypeId t, const ElementValue& v, ByteWriter& w) {
  switch (t) {
    case TypeId::M_SP_NA_1:
    case TypeId::M_SP_TB_1: {
      auto p = expect<SinglePoint>(v, t);
      if (!p) return p.error();
      w.u8(static_cast<std::uint8_t>(((*p)->on ? 0x01 : 0x00) |
                                     ((*p)->quality.encode() & 0xf0)));
      return Status::Ok();
    }
    case TypeId::M_DP_NA_1:
    case TypeId::M_DP_TB_1: {
      auto p = expect<DoublePoint>(v, t);
      if (!p) return p.error();
      w.u8(static_cast<std::uint8_t>(((*p)->state & 0x03) |
                                     ((*p)->quality.encode() & 0xf0)));
      return Status::Ok();
    }
    case TypeId::M_ST_NA_1:
    case TypeId::M_ST_TB_1: {
      auto p = expect<StepPosition>(v, t);
      if (!p) return p.error();
      w.u8(static_cast<std::uint8_t>(((*p)->value & 0x7f) | ((*p)->transient ? 0x80 : 0)));
      w.u8((*p)->quality.encode());
      return Status::Ok();
    }
    case TypeId::M_BO_NA_1:
    case TypeId::M_BO_TB_1: {
      auto p = expect<Bitstring32>(v, t);
      if (!p) return p.error();
      w.u32le((*p)->bits);
      w.u8((*p)->quality.encode());
      return Status::Ok();
    }
    case TypeId::M_ME_NA_1:
    case TypeId::M_ME_TD_1: {
      auto p = expect<NormalizedValue>(v, t);
      if (!p) return p.error();
      w.u16le(static_cast<std::uint16_t>((*p)->raw));
      w.u8((*p)->quality.encode());
      return Status::Ok();
    }
    case TypeId::M_ME_ND_1: {
      auto p = expect<NormalizedValue>(v, t);
      if (!p) return p.error();
      w.u16le(static_cast<std::uint16_t>((*p)->raw));
      return Status::Ok();
    }
    case TypeId::M_ME_NB_1:
    case TypeId::M_ME_TE_1: {
      auto p = expect<ScaledValue>(v, t);
      if (!p) return p.error();
      w.u16le(static_cast<std::uint16_t>((*p)->value));
      w.u8((*p)->quality.encode());
      return Status::Ok();
    }
    case TypeId::M_ME_NC_1:
    case TypeId::M_ME_TF_1: {
      auto p = expect<ShortFloat>(v, t);
      if (!p) return p.error();
      w.f32le((*p)->value);
      w.u8((*p)->quality.encode());
      return Status::Ok();
    }
    case TypeId::M_IT_NA_1:
    case TypeId::M_IT_TB_1: {
      auto p = expect<IntegratedTotals>(v, t);
      if (!p) return p.error();
      w.u32le(static_cast<std::uint32_t>((*p)->counter));
      w.u8((*p)->sequence);
      return Status::Ok();
    }
    case TypeId::M_PS_NA_1: {
      auto p = expect<PackedSinglePoints>(v, t);
      if (!p) return p.error();
      w.u16le((*p)->status);
      w.u16le((*p)->change);
      w.u8((*p)->quality.encode());
      return Status::Ok();
    }
    case TypeId::M_EP_TD_1: {
      auto p = expect<ProtectionEvent>(v, t);
      if (!p) return p.error();
      w.u8((*p)->event);
      w.u16le((*p)->elapsed_ms);
      return Status::Ok();
    }
    case TypeId::M_EP_TE_1: {
      auto p = expect<ProtectionStartEvents>(v, t);
      if (!p) return p.error();
      w.u8((*p)->events);
      w.u8((*p)->quality);
      w.u16le((*p)->duration_ms);
      return Status::Ok();
    }
    case TypeId::M_EP_TF_1: {
      auto p = expect<ProtectionOutputCircuit>(v, t);
      if (!p) return p.error();
      w.u8((*p)->circuits);
      w.u8((*p)->quality);
      w.u16le((*p)->operating_ms);
      return Status::Ok();
    }
    case TypeId::M_EI_NA_1: {
      auto p = expect<EndOfInit>(v, t);
      if (!p) return p.error();
      w.u8((*p)->cause);
      return Status::Ok();
    }
    case TypeId::C_SC_NA_1:
    case TypeId::C_SC_TA_1: {
      auto p = expect<SingleCommand>(v, t);
      if (!p) return p.error();
      w.u8(command_octet((*p)->on, 0, (*p)->select, (*p)->qualifier));
      return Status::Ok();
    }
    case TypeId::C_DC_NA_1:
    case TypeId::C_DC_TA_1: {
      auto p = expect<DoubleCommand>(v, t);
      if (!p) return p.error();
      w.u8(command_octet(false, (*p)->state, (*p)->select, (*p)->qualifier));
      return Status::Ok();
    }
    case TypeId::C_RC_NA_1:
    case TypeId::C_RC_TA_1: {
      auto p = expect<RegulatingStep>(v, t);
      if (!p) return p.error();
      w.u8(command_octet(false, (*p)->step, (*p)->select, (*p)->qualifier));
      return Status::Ok();
    }
    case TypeId::C_SE_NA_1:
    case TypeId::C_SE_TA_1: {
      auto p = expect<SetpointNormalized>(v, t);
      if (!p) return p.error();
      w.u16le(static_cast<std::uint16_t>((*p)->raw));
      w.u8((*p)->qos);
      return Status::Ok();
    }
    case TypeId::C_SE_NB_1:
    case TypeId::C_SE_TB_1: {
      auto p = expect<SetpointScaled>(v, t);
      if (!p) return p.error();
      w.u16le(static_cast<std::uint16_t>((*p)->value));
      w.u8((*p)->qos);
      return Status::Ok();
    }
    case TypeId::C_SE_NC_1:
    case TypeId::C_SE_TC_1: {
      auto p = expect<SetpointFloat>(v, t);
      if (!p) return p.error();
      w.f32le((*p)->value);
      w.u8((*p)->qos);
      return Status::Ok();
    }
    case TypeId::C_BO_NA_1:
    case TypeId::C_BO_TA_1: {
      auto p = expect<BitstringCommand>(v, t);
      if (!p) return p.error();
      w.u32le((*p)->bits);
      return Status::Ok();
    }
    case TypeId::C_IC_NA_1: {
      auto p = expect<InterrogationCommand>(v, t);
      if (!p) return p.error();
      w.u8((*p)->qualifier);
      return Status::Ok();
    }
    case TypeId::C_CI_NA_1: {
      auto p = expect<CounterInterrogation>(v, t);
      if (!p) return p.error();
      w.u8((*p)->qualifier);
      return Status::Ok();
    }
    case TypeId::C_RD_NA_1: {
      auto p = expect<ReadCommand>(v, t);
      if (!p) return p.error();
      return Status::Ok();
    }
    case TypeId::C_CS_NA_1: {
      auto p = expect<ClockSync>(v, t);
      if (!p) return p.error();
      (*p)->time.encode(w);
      return Status::Ok();
    }
    case TypeId::C_RP_NA_1: {
      auto p = expect<ResetProcess>(v, t);
      if (!p) return p.error();
      w.u8((*p)->qualifier);
      return Status::Ok();
    }
    case TypeId::C_TS_TA_1: {
      auto p = expect<TestCommand>(v, t);
      if (!p) return p.error();
      w.u16le((*p)->counter);
      return Status::Ok();
    }
    case TypeId::P_ME_NA_1: {
      auto p = expect<ParameterNormalized>(v, t);
      if (!p) return p.error();
      w.u16le(static_cast<std::uint16_t>((*p)->raw));
      w.u8((*p)->qpm);
      return Status::Ok();
    }
    case TypeId::P_ME_NB_1: {
      auto p = expect<ParameterScaled>(v, t);
      if (!p) return p.error();
      w.u16le(static_cast<std::uint16_t>((*p)->value));
      w.u8((*p)->qpm);
      return Status::Ok();
    }
    case TypeId::P_ME_NC_1: {
      auto p = expect<ParameterFloat>(v, t);
      if (!p) return p.error();
      w.f32le((*p)->value);
      w.u8((*p)->qpm);
      return Status::Ok();
    }
    case TypeId::P_AC_NA_1: {
      auto p = expect<ParameterActivation>(v, t);
      if (!p) return p.error();
      w.u8((*p)->qpa);
      return Status::Ok();
    }
    case TypeId::F_FR_NA_1: {
      auto p = expect<FileReady>(v, t);
      if (!p) return p.error();
      w.u16le((*p)->file_name);
      write_u24le(w, (*p)->length);
      w.u8((*p)->qualifier);
      return Status::Ok();
    }
    case TypeId::F_SR_NA_1: {
      auto p = expect<SectionReady>(v, t);
      if (!p) return p.error();
      w.u16le((*p)->file_name);
      w.u8((*p)->section);
      write_u24le(w, (*p)->length);
      w.u8((*p)->qualifier);
      return Status::Ok();
    }
    case TypeId::F_SC_NA_1: {
      auto p = expect<CallFile>(v, t);
      if (!p) return p.error();
      w.u16le((*p)->file_name);
      w.u8((*p)->section);
      w.u8((*p)->qualifier);
      return Status::Ok();
    }
    case TypeId::F_LS_NA_1: {
      auto p = expect<LastSection>(v, t);
      if (!p) return p.error();
      w.u16le((*p)->file_name);
      w.u8((*p)->section);
      w.u8((*p)->qualifier);
      w.u8((*p)->checksum);
      return Status::Ok();
    }
    case TypeId::F_AF_NA_1: {
      auto p = expect<AckFile>(v, t);
      if (!p) return p.error();
      w.u16le((*p)->file_name);
      w.u8((*p)->section);
      w.u8((*p)->qualifier);
      return Status::Ok();
    }
    case TypeId::F_SG_NA_1: {
      auto p = expect<Segment>(v, t);
      if (!p) return p.error();
      if ((*p)->data.size() > 240) return Err("segment-too-long");
      w.u16le((*p)->file_name);
      w.u8((*p)->section);
      w.u8(static_cast<std::uint8_t>((*p)->data.size()));
      w.bytes((*p)->data);
      return Status::Ok();
    }
    case TypeId::F_DR_TA_1: {
      auto p = expect<DirectoryEntry>(v, t);
      if (!p) return p.error();
      w.u16le((*p)->file_name);
      write_u24le(w, (*p)->length);
      w.u8((*p)->status);
      return Status::Ok();
    }
    case TypeId::F_SC_NB_1: {
      auto p = expect<QueryLog>(v, t);
      if (!p) return p.error();
      w.u16le((*p)->file_name);
      (*p)->start.encode(w);
      (*p)->stop.encode(w);
      return Status::Ok();
    }
  }
  return Err("unsupported-type", std::to_string(static_cast<int>(t)));
}

Result<ElementValue> decode_element(TypeId t, ByteReader& r) {
  auto need = [&](std::size_t n) { return r.can_read(n); };
  switch (t) {
    case TypeId::M_SP_NA_1:
    case TypeId::M_SP_TB_1: {
      auto b = r.u8();
      if (!b) return b.error();
      SinglePoint e;
      e.on = b.value() & 0x01;
      e.quality = Quality::decode(b.value() & 0xf0);
      return ElementValue{e};
    }
    case TypeId::M_DP_NA_1:
    case TypeId::M_DP_TB_1: {
      auto b = r.u8();
      if (!b) return b.error();
      DoublePoint e;
      e.state = b.value() & 0x03;
      e.quality = Quality::decode(b.value() & 0xf0);
      return ElementValue{e};
    }
    case TypeId::M_ST_NA_1:
    case TypeId::M_ST_TB_1: {
      auto vti = r.u8();
      auto q = r.u8();
      if (!q) return Err("truncated", "VTI");
      StepPosition e;
      std::uint8_t raw = vti.value() & 0x7f;
      e.value = static_cast<std::int8_t>(raw >= 64 ? static_cast<int>(raw) - 128
                                                   : static_cast<int>(raw));
      e.transient = vti.value() & 0x80;
      e.quality = Quality::decode(q.value());
      return ElementValue{e};
    }
    case TypeId::M_BO_NA_1:
    case TypeId::M_BO_TB_1: {
      auto bits = r.u32le();
      auto q = r.u8();
      if (!q) return Err("truncated", "BSI");
      Bitstring32 e;
      e.bits = bits.value();
      e.quality = Quality::decode(q.value());
      return ElementValue{e};
    }
    case TypeId::M_ME_NA_1:
    case TypeId::M_ME_TD_1: {
      auto raw = r.u16le();
      auto q = r.u8();
      if (!q) return Err("truncated", "NVA");
      NormalizedValue e;
      e.raw = static_cast<std::int16_t>(raw.value());
      e.quality = Quality::decode(q.value());
      return ElementValue{e};
    }
    case TypeId::M_ME_ND_1: {
      auto raw = r.u16le();
      if (!raw) return raw.error();
      NormalizedValue e;
      e.raw = static_cast<std::int16_t>(raw.value());
      return ElementValue{e};
    }
    case TypeId::M_ME_NB_1:
    case TypeId::M_ME_TE_1: {
      auto raw = r.u16le();
      auto q = r.u8();
      if (!q) return Err("truncated", "SVA");
      ScaledValue e;
      e.value = static_cast<std::int16_t>(raw.value());
      e.quality = Quality::decode(q.value());
      return ElementValue{e};
    }
    case TypeId::M_ME_NC_1:
    case TypeId::M_ME_TF_1: {
      auto f = r.f32le();
      auto q = r.u8();
      if (!q) return Err("truncated", "R32");
      ShortFloat e;
      e.value = f.value();
      e.quality = Quality::decode(q.value());
      return ElementValue{e};
    }
    case TypeId::M_IT_NA_1:
    case TypeId::M_IT_TB_1: {
      auto c = r.u32le();
      auto s = r.u8();
      if (!s) return Err("truncated", "BCR");
      IntegratedTotals e;
      e.counter = static_cast<std::int32_t>(c.value());
      e.sequence = s.value();
      return ElementValue{e};
    }
    case TypeId::M_PS_NA_1: {
      auto st = r.u16le();
      auto cd = r.u16le();
      auto q = r.u8();
      if (!q) return Err("truncated", "SCD");
      PackedSinglePoints e;
      e.status = st.value();
      e.change = cd.value();
      e.quality = Quality::decode(q.value());
      return ElementValue{e};
    }
    case TypeId::M_EP_TD_1: {
      auto sep = r.u8();
      auto ms = r.u16le();
      if (!ms) return Err("truncated", "SEP");
      ProtectionEvent e;
      e.event = sep.value();
      e.elapsed_ms = ms.value();
      return ElementValue{e};
    }
    case TypeId::M_EP_TE_1: {
      auto spe = r.u8();
      auto qdp = r.u8();
      auto ms = r.u16le();
      if (!ms) return Err("truncated", "SPE");
      ProtectionStartEvents e;
      e.events = spe.value();
      e.quality = qdp.value();
      e.duration_ms = ms.value();
      return ElementValue{e};
    }
    case TypeId::M_EP_TF_1: {
      auto oci = r.u8();
      auto qdp = r.u8();
      auto ms = r.u16le();
      if (!ms) return Err("truncated", "OCI");
      ProtectionOutputCircuit e;
      e.circuits = oci.value();
      e.quality = qdp.value();
      e.operating_ms = ms.value();
      return ElementValue{e};
    }
    case TypeId::M_EI_NA_1: {
      auto coi = r.u8();
      if (!coi) return coi.error();
      return ElementValue{EndOfInit{coi.value()}};
    }
    case TypeId::C_SC_NA_1:
    case TypeId::C_SC_TA_1: {
      auto sco = r.u8();
      if (!sco) return sco.error();
      SingleCommand e;
      e.on = sco.value() & 0x01;
      e.qualifier = (sco.value() >> 2) & 0x1f;
      e.select = sco.value() & 0x80;
      return ElementValue{e};
    }
    case TypeId::C_DC_NA_1:
    case TypeId::C_DC_TA_1: {
      auto dco = r.u8();
      if (!dco) return dco.error();
      DoubleCommand e;
      e.state = dco.value() & 0x03;
      e.qualifier = (dco.value() >> 2) & 0x1f;
      e.select = dco.value() & 0x80;
      return ElementValue{e};
    }
    case TypeId::C_RC_NA_1:
    case TypeId::C_RC_TA_1: {
      auto rco = r.u8();
      if (!rco) return rco.error();
      RegulatingStep e;
      e.step = rco.value() & 0x03;
      e.qualifier = (rco.value() >> 2) & 0x1f;
      e.select = rco.value() & 0x80;
      return ElementValue{e};
    }
    case TypeId::C_SE_NA_1:
    case TypeId::C_SE_TA_1: {
      auto raw = r.u16le();
      auto q = r.u8();
      if (!q) return Err("truncated", "setpoint");
      SetpointNormalized e;
      e.raw = static_cast<std::int16_t>(raw.value());
      e.qos = q.value();
      return ElementValue{e};
    }
    case TypeId::C_SE_NB_1:
    case TypeId::C_SE_TB_1: {
      auto raw = r.u16le();
      auto q = r.u8();
      if (!q) return Err("truncated", "setpoint");
      SetpointScaled e;
      e.value = static_cast<std::int16_t>(raw.value());
      e.qos = q.value();
      return ElementValue{e};
    }
    case TypeId::C_SE_NC_1:
    case TypeId::C_SE_TC_1: {
      auto f = r.f32le();
      auto q = r.u8();
      if (!q) return Err("truncated", "setpoint");
      SetpointFloat e;
      e.value = f.value();
      e.qos = q.value();
      return ElementValue{e};
    }
    case TypeId::C_BO_NA_1:
    case TypeId::C_BO_TA_1: {
      auto bits = r.u32le();
      if (!bits) return bits.error();
      return ElementValue{BitstringCommand{bits.value()}};
    }
    case TypeId::C_IC_NA_1: {
      auto q = r.u8();
      if (!q) return q.error();
      return ElementValue{InterrogationCommand{q.value()}};
    }
    case TypeId::C_CI_NA_1: {
      auto q = r.u8();
      if (!q) return q.error();
      return ElementValue{CounterInterrogation{q.value()}};
    }
    case TypeId::C_RD_NA_1:
      return ElementValue{ReadCommand{}};
    case TypeId::C_CS_NA_1: {
      auto t7 = Cp56Time2a::decode(r);
      if (!t7) return t7.error();
      return ElementValue{ClockSync{t7.value()}};
    }
    case TypeId::C_RP_NA_1: {
      auto q = r.u8();
      if (!q) return q.error();
      return ElementValue{ResetProcess{q.value()}};
    }
    case TypeId::C_TS_TA_1: {
      auto c = r.u16le();
      if (!c) return c.error();
      return ElementValue{TestCommand{c.value()}};
    }
    case TypeId::P_ME_NA_1: {
      auto raw = r.u16le();
      auto q = r.u8();
      if (!q) return Err("truncated", "param");
      ParameterNormalized e;
      e.raw = static_cast<std::int16_t>(raw.value());
      e.qpm = q.value();
      return ElementValue{e};
    }
    case TypeId::P_ME_NB_1: {
      auto raw = r.u16le();
      auto q = r.u8();
      if (!q) return Err("truncated", "param");
      ParameterScaled e;
      e.value = static_cast<std::int16_t>(raw.value());
      e.qpm = q.value();
      return ElementValue{e};
    }
    case TypeId::P_ME_NC_1: {
      auto f = r.f32le();
      auto q = r.u8();
      if (!q) return Err("truncated", "param");
      ParameterFloat e;
      e.value = f.value();
      e.qpm = q.value();
      return ElementValue{e};
    }
    case TypeId::P_AC_NA_1: {
      auto q = r.u8();
      if (!q) return q.error();
      return ElementValue{ParameterActivation{q.value()}};
    }
    case TypeId::F_FR_NA_1: {
      if (!need(6)) return Err("truncated", "F_FR");
      FileReady e;
      e.file_name = r.u16le().value();
      e.length = read_u24le(r).value();
      e.qualifier = r.u8().value();
      return ElementValue{e};
    }
    case TypeId::F_SR_NA_1: {
      if (!need(7)) return Err("truncated", "F_SR");
      SectionReady e;
      e.file_name = r.u16le().value();
      e.section = r.u8().value();
      e.length = read_u24le(r).value();
      e.qualifier = r.u8().value();
      return ElementValue{e};
    }
    case TypeId::F_SC_NA_1: {
      if (!need(4)) return Err("truncated", "F_SC");
      CallFile e;
      e.file_name = r.u16le().value();
      e.section = r.u8().value();
      e.qualifier = r.u8().value();
      return ElementValue{e};
    }
    case TypeId::F_LS_NA_1: {
      if (!need(5)) return Err("truncated", "F_LS");
      LastSection e;
      e.file_name = r.u16le().value();
      e.section = r.u8().value();
      e.qualifier = r.u8().value();
      e.checksum = r.u8().value();
      return ElementValue{e};
    }
    case TypeId::F_AF_NA_1: {
      if (!need(4)) return Err("truncated", "F_AF");
      AckFile e;
      e.file_name = r.u16le().value();
      e.section = r.u8().value();
      e.qualifier = r.u8().value();
      return ElementValue{e};
    }
    case TypeId::F_SG_NA_1: {
      if (!need(4)) return Err("truncated", "F_SG");
      Segment e;
      e.file_name = r.u16le().value();
      e.section = r.u8().value();
      std::uint8_t los = r.u8().value();
      auto data = r.bytes(los);
      if (!data) return data.error();
      e.data.assign(data->begin(), data->end());
      return ElementValue{e};
    }
    case TypeId::F_DR_TA_1: {
      if (!need(6)) return Err("truncated", "F_DR");
      DirectoryEntry e;
      e.file_name = r.u16le().value();
      e.length = read_u24le(r).value();
      e.status = r.u8().value();
      return ElementValue{e};
    }
    case TypeId::F_SC_NB_1: {
      auto nof = r.u16le();
      if (!nof) return nof.error();
      auto start = Cp56Time2a::decode(r);
      if (!start) return start.error();
      auto stop = Cp56Time2a::decode(r);
      if (!stop) return stop.error();
      QueryLog e;
      e.file_name = nof.value();
      e.start = start.value();
      e.stop = stop.value();
      return ElementValue{e};
    }
  }
  return Err("unsupported-type", std::to_string(static_cast<int>(t)));
}

Status Asdu::encode(ByteWriter& w, const CodecProfile& profile) const {
  if (objects.empty() || objects.size() > 127) {
    return Err("bad-object-count", std::to_string(objects.size()));
  }
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(static_cast<std::uint8_t>((sequence ? 0x80 : 0) |
                                 static_cast<std::uint8_t>(objects.size())));
  std::uint8_t cot_octet =
      static_cast<std::uint8_t>((static_cast<std::uint8_t>(cot.cause) & 0x3f) |
                                (cot.negative ? 0x40 : 0) | (cot.test ? 0x80 : 0));
  w.u8(cot_octet);
  if (profile.cot_octets == 2) w.u8(cot.originator);

  if (profile.ca_octets == 2) {
    w.u16le(common_address);
  } else {
    w.u8(static_cast<std::uint8_t>(common_address & 0xff));
  }

  auto write_ioa = [&](std::uint32_t ioa) {
    w.u8(static_cast<std::uint8_t>(ioa & 0xff));
    w.u8(static_cast<std::uint8_t>((ioa >> 8) & 0xff));
    if (profile.ioa_octets == 3) w.u8(static_cast<std::uint8_t>((ioa >> 16) & 0xff));
  };

  bool first = true;
  for (const auto& obj : objects) {
    if (!sequence || first) write_ioa(obj.ioa);
    first = false;
    auto st = encode_element(type, obj.value, w);
    if (!st.ok()) return st;
    if (has_time_tag(type)) {
      if (!obj.time) return Err("missing-time-tag", type_acronym(type));
      obj.time->encode(w);
    }
  }
  return Status::Ok();
}

Result<Asdu> Asdu::decode(ByteReader& r, const CodecProfile& profile,
                          std::pmr::memory_resource* arena) {
  auto type_code = r.u8();
  if (!type_code) return type_code.error();
  if (!is_supported_type(type_code.value())) {
    return Err("unknown-typeid", std::to_string(type_code.value()));
  }
  // The arena must be seated at construction: polymorphic_allocator never
  // propagates on assignment, so assigning an arena-backed vector into a
  // default-constructed one would silently keep the default resource.
  Asdu asdu{.objects = std::pmr::vector<InformationObject>(
                arena != nullptr ? arena : std::pmr::get_default_resource())};
  asdu.type = static_cast<TypeId>(type_code.value());

  auto vsq = r.u8();
  if (!vsq) return vsq.error();
  asdu.sequence = vsq.value() & 0x80;
  std::uint8_t count = vsq.value() & 0x7f;
  if (count == 0) return Err("zero-objects");
  asdu.objects.reserve(count);

  auto cot1 = r.u8();
  if (!cot1) return cot1.error();
  asdu.cot.cause = static_cast<Cause>(cot1.value() & 0x3f);
  asdu.cot.negative = cot1.value() & 0x40;
  asdu.cot.test = cot1.value() & 0x80;
  if (profile.cot_octets == 2) {
    auto orig = r.u8();
    if (!orig) return orig.error();
    asdu.cot.originator = orig.value();
  }

  if (profile.ca_octets == 2) {
    auto ca = r.u16le();
    if (!ca) return ca.error();
    asdu.common_address = ca.value();
  } else {
    auto ca = r.u8();
    if (!ca) return ca.error();
    asdu.common_address = ca.value();
  }

  auto read_ioa = [&]() -> Result<std::uint32_t> {
    auto lo = r.u8();
    auto mid = r.u8();
    if (!mid) return Err("truncated", "ioa");
    std::uint32_t ioa =
        static_cast<std::uint32_t>(lo.value()) | (static_cast<std::uint32_t>(mid.value()) << 8);
    if (profile.ioa_octets == 3) {
      auto hi = r.u8();
      if (!hi) return Err("truncated", "ioa");
      ioa |= static_cast<std::uint32_t>(hi.value()) << 16;
    }
    return ioa;
  };

  std::uint32_t base_ioa = 0;
  for (std::uint8_t i = 0; i < count; ++i) {
    InformationObject obj;
    if (!asdu.sequence || i == 0) {
      auto ioa = read_ioa();
      if (!ioa) return ioa.error();
      base_ioa = ioa.value();
    }
    obj.ioa = asdu.sequence ? base_ioa + i : base_ioa;
    auto elem = decode_element(asdu.type, r);
    if (!elem) return elem.error();
    obj.value = std::move(elem).take();
    if (has_time_tag(asdu.type)) {
      auto tt = Cp56Time2a::decode(r);
      if (!tt) return tt.error();
      obj.time = tt.value();
    }
    asdu.objects.push_back(std::move(obj));
  }

  if (!r.empty()) {
    return Err("trailing-bytes", std::to_string(r.remaining()) + " leftover");
  }
  return asdu;
}

std::string Asdu::str() const {
  std::string s = type_acronym(type) + " cot=" + cot.str() +
                  " ca=" + std::to_string(common_address) + " n=" +
                  std::to_string(objects.size());
  if (!objects.empty()) {
    s += " [ioa " + std::to_string(objects.front().ioa) + ": " +
         element_str(objects.front().value) + "]";
  }
  return s;
}

}  // namespace uncharted::iec104
