// Tolerant IEC 104 stream parser — the paper's core tool (§6.1).
//
// Standard parsers (Wireshark, SCAPY's contrib module) flag traffic from
// devices that kept IEC 101 legacy addressing after their TCP/IP upgrade as
// 100% malformed: O37 used 2-octet IOAs, O53/O58/O28 used a 1-octet COT.
// This parser frames APDUs from a reassembled TCP byte stream and, in
// tolerant mode, tries the legacy codec profiles whenever the standard one
// fails to parse an I-format ASDU *exactly* (consuming all framed bytes).
// Once a profile decodes a stream's ASDUs consistently it is locked in, and
// the stream is reported with the profile that explains it — turning
// "malformed garbage" into readable telemetry plus a compliance finding.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "iec104/apdu.hpp"
#include "util/timebase.hpp"

namespace uncharted::iec104 {

/// One successfully parsed APDU with provenance.
struct ParsedApdu {
  Timestamp ts = 0;
  Apdu apdu;
  CodecProfile profile;      ///< profile that decoded it
  bool compliant = true;     ///< true iff profile is the IEC 104 standard
  std::size_t wire_size = 0; ///< bytes on the wire including start+length
};

/// Why a byte range failed to parse — the degraded-mode taxonomy. Garbage
/// means the stream lost framing (desync) and the parser had to hunt for
/// the next 0x68; undecodable means a well-framed APDU no profile could
/// explain; truncated-tail means the stream ended mid-frame.
enum class FailureKind {
  kGarbage,        ///< skipped bytes while resynchronizing on 0x68
  kUndecodable,    ///< framed APDU rejected by every candidate profile
  kTruncatedTail,  ///< partial frame left in the buffer at end of stream
};

std::string failure_kind_name(FailureKind kind);

/// One undecodable byte range.
struct ParseFailure {
  Timestamp ts = 0;
  FailureKind kind = FailureKind::kUndecodable;
  std::string error;
  std::vector<std::uint8_t> raw;  ///< offending bytes (up to the framed APDU)
};

/// Candidate profiles in preference order (standard first).
std::array<CodecProfile, 4> candidate_profiles();

/// Tries every candidate profile against one framed APDU; returns all
/// profiles that decode it exactly. Used for compliance reporting (Fig 7).
std::vector<CodecProfile> detect_profiles(std::span<const std::uint8_t> apdu_bytes);

/// Plausibility score of a decoded ASDU. Different field widths can parse
/// the same bytes "exactly" (a 1-octet-COT reading of a 2-octet-IOA frame
/// consumes the same length), so byte-level success is not enough; the
/// paper's tell-tales — invalid IOA addresses and random-looking
/// measurements — are scored instead. Higher is more plausible.
int asdu_plausibility(const Asdu& asdu, const CodecProfile& profile);

/// Incremental parser over one TCP stream direction.
class ApduStreamParser {
 public:
  enum class Mode {
    kStrict,    ///< standard profile only; legacy traffic becomes failures
    kTolerant,  ///< fall back to legacy profiles and lock in the winner
  };

  explicit ApduStreamParser(Mode mode = Mode::kTolerant) : mode_(mode) {}

  /// Appends reassembled stream bytes; complete APDUs are parsed out.
  /// Partial APDUs stay buffered until the next feed.
  void feed(Timestamp ts, std::span<const std::uint8_t> data);

  /// End of stream: a partial frame still buffered becomes a
  /// kTruncatedTail failure. Idempotent; further feeds restart framing.
  void finish(Timestamp ts);

  /// Parsed APDUs in stream order.
  const std::vector<ParsedApdu>& apdus() const { return apdus_; }
  /// Undecodable ranges.
  const std::vector<ParseFailure>& failures() const { return failures_; }

  /// Moves accumulated APDUs and failures out, leaving both lists empty.
  /// Streaming callers drain after every feed so the parser holds only the
  /// partial frame still waiting for bytes — the state a checkpoint must
  /// carry — instead of the whole stream history.
  void drain(std::vector<ParsedApdu>& apdus_out, std::vector<ParseFailure>& failures_out);

  /// Checkpoint serialization. Only the resumable core is saved (mode,
  /// partial-frame buffer, locked profile, counters); drained results are
  /// the caller's to persist. load() requires apdus()/failures() to have
  /// been drained, mirroring the streaming discipline.
  void save(ByteWriter& w) const;
  static Result<ApduStreamParser> load(ByteReader& r);

  /// Arena for parsed-APDU object storage (null = plain heap). Runtime
  /// configuration, not state: it is not checkpointed, and the caller must
  /// re-set it after load(). ASDUs parsed while an arena is set must not
  /// outlive it — the dataset keeps its lane arenas alive for exactly this
  /// reason.
  void set_arena(std::pmr::memory_resource* arena) { arena_ = arena; }

  /// Times the parser lost framing and hunted for the next start byte.
  std::uint64_t resyncs() const { return resyncs_; }
  /// Bytes skipped during those hunts.
  std::uint64_t garbage_bytes() const { return garbage_bytes_; }
  /// Bytes abandoned as a partial frame by finish().
  std::uint64_t truncated_tail_bytes() const { return truncated_tail_bytes_; }

  /// The profile locked in for this stream after the first non-standard
  /// success (nullopt while the stream looks standard).
  std::optional<CodecProfile> locked_profile() const { return locked_; }

  /// Bytes currently buffered waiting for a complete frame.
  std::size_t buffered_bytes() const { return buffer_.size(); }

  /// Total I-format APDUs whose ASDU parsed only under a legacy profile.
  std::uint64_t non_compliant_count() const { return non_compliant_; }

  /// Resets per-stream state (framing buffer, locked profile, counters) so
  /// a per-packet caller can reuse one parser — and the capacity of its
  /// result vectors — instead of constructing a fresh parser per packet.
  /// Results must have been drained first.
  void reset_stream() {
    buffer_.clear();
    locked_.reset();
    non_compliant_ = 0;
    resyncs_ = 0;
    garbage_bytes_ = 0;
    truncated_tail_bytes_ = 0;
  }

 private:
  void parse_buffer(Timestamp ts);
  /// Parses frames from `data` without buffering; returns bytes consumed.
  /// The zero-copy core of feed(): a trailing partial frame is left for
  /// the caller to buffer.
  std::size_t parse_span(Timestamp ts, std::span<const std::uint8_t> data);
  /// Attempts one framed APDU (start byte already verified).
  bool try_parse_frame(Timestamp ts, std::span<const std::uint8_t> frame);

  Mode mode_;
  std::pmr::memory_resource* arena_ = nullptr;
  std::vector<std::uint8_t> buffer_;
  std::vector<ParsedApdu> apdus_;
  std::vector<ParseFailure> failures_;
  std::optional<CodecProfile> locked_;
  std::uint64_t non_compliant_ = 0;
  std::uint64_t resyncs_ = 0;
  std::uint64_t garbage_bytes_ = 0;
  std::uint64_t truncated_tail_bytes_ = 0;
};

}  // namespace uncharted::iec104
