#include "iec104/constants.hpp"

namespace uncharted::iec104 {

bool is_supported_type(std::uint8_t code) {
  switch (static_cast<TypeId>(code)) {
    case TypeId::M_SP_NA_1:
    case TypeId::M_DP_NA_1:
    case TypeId::M_ST_NA_1:
    case TypeId::M_BO_NA_1:
    case TypeId::M_ME_NA_1:
    case TypeId::M_ME_NB_1:
    case TypeId::M_ME_NC_1:
    case TypeId::M_IT_NA_1:
    case TypeId::M_PS_NA_1:
    case TypeId::M_ME_ND_1:
    case TypeId::M_SP_TB_1:
    case TypeId::M_DP_TB_1:
    case TypeId::M_ST_TB_1:
    case TypeId::M_BO_TB_1:
    case TypeId::M_ME_TD_1:
    case TypeId::M_ME_TE_1:
    case TypeId::M_ME_TF_1:
    case TypeId::M_IT_TB_1:
    case TypeId::M_EP_TD_1:
    case TypeId::M_EP_TE_1:
    case TypeId::M_EP_TF_1:
    case TypeId::C_SC_NA_1:
    case TypeId::C_DC_NA_1:
    case TypeId::C_RC_NA_1:
    case TypeId::C_SE_NA_1:
    case TypeId::C_SE_NB_1:
    case TypeId::C_SE_NC_1:
    case TypeId::C_BO_NA_1:
    case TypeId::C_SC_TA_1:
    case TypeId::C_DC_TA_1:
    case TypeId::C_RC_TA_1:
    case TypeId::C_SE_TA_1:
    case TypeId::C_SE_TB_1:
    case TypeId::C_SE_TC_1:
    case TypeId::C_BO_TA_1:
    case TypeId::M_EI_NA_1:
    case TypeId::C_IC_NA_1:
    case TypeId::C_CI_NA_1:
    case TypeId::C_RD_NA_1:
    case TypeId::C_CS_NA_1:
    case TypeId::C_RP_NA_1:
    case TypeId::C_TS_TA_1:
    case TypeId::P_ME_NA_1:
    case TypeId::P_ME_NB_1:
    case TypeId::P_ME_NC_1:
    case TypeId::P_AC_NA_1:
    case TypeId::F_FR_NA_1:
    case TypeId::F_SR_NA_1:
    case TypeId::F_SC_NA_1:
    case TypeId::F_LS_NA_1:
    case TypeId::F_AF_NA_1:
    case TypeId::F_SG_NA_1:
    case TypeId::F_DR_TA_1:
    case TypeId::F_SC_NB_1:
      return true;
  }
  return false;
}

std::string type_acronym(TypeId t) {
  switch (t) {
    case TypeId::M_SP_NA_1: return "M_SP_NA_1";
    case TypeId::M_DP_NA_1: return "M_DP_NA_1";
    case TypeId::M_ST_NA_1: return "M_ST_NA_1";
    case TypeId::M_BO_NA_1: return "M_BO_NA_1";
    case TypeId::M_ME_NA_1: return "M_ME_NA_1";
    case TypeId::M_ME_NB_1: return "M_ME_NB_1";
    case TypeId::M_ME_NC_1: return "M_ME_NC_1";
    case TypeId::M_IT_NA_1: return "M_IT_NA_1";
    case TypeId::M_PS_NA_1: return "M_PS_NA_1";
    case TypeId::M_ME_ND_1: return "M_ME_ND_1";
    case TypeId::M_SP_TB_1: return "M_SP_TB_1";
    case TypeId::M_DP_TB_1: return "M_DP_TB_1";
    case TypeId::M_ST_TB_1: return "M_ST_TB_1";
    case TypeId::M_BO_TB_1: return "M_BO_TB_1";
    case TypeId::M_ME_TD_1: return "M_ME_TD_1";
    case TypeId::M_ME_TE_1: return "M_ME_TE_1";
    case TypeId::M_ME_TF_1: return "M_ME_TF_1";
    case TypeId::M_IT_TB_1: return "M_IT_TB_1";
    case TypeId::M_EP_TD_1: return "M_EP_TD_1";
    case TypeId::M_EP_TE_1: return "M_EP_TE_1";
    case TypeId::M_EP_TF_1: return "M_EP_TF_1";
    case TypeId::C_SC_NA_1: return "C_SC_NA_1";
    case TypeId::C_DC_NA_1: return "C_DC_NA_1";
    case TypeId::C_RC_NA_1: return "C_RC_NA_1";
    case TypeId::C_SE_NA_1: return "C_SE_NA_1";
    case TypeId::C_SE_NB_1: return "C_SE_NB_1";
    case TypeId::C_SE_NC_1: return "C_SE_NC_1";
    case TypeId::C_BO_NA_1: return "C_BO_NA_1";
    case TypeId::C_SC_TA_1: return "C_SC_TA_1";
    case TypeId::C_DC_TA_1: return "C_DC_TA_1";
    case TypeId::C_RC_TA_1: return "C_RC_TA_1";
    case TypeId::C_SE_TA_1: return "C_SE_TA_1";
    case TypeId::C_SE_TB_1: return "C_SE_TB_1";
    case TypeId::C_SE_TC_1: return "C_SE_TC_1";
    case TypeId::C_BO_TA_1: return "C_BO_TA_1";
    case TypeId::M_EI_NA_1: return "M_EI_NA_1";
    case TypeId::C_IC_NA_1: return "C_IC_NA_1";
    case TypeId::C_CI_NA_1: return "C_CI_NA_1";
    case TypeId::C_RD_NA_1: return "C_RD_NA_1";
    case TypeId::C_CS_NA_1: return "C_CS_NA_1";
    case TypeId::C_RP_NA_1: return "C_RP_NA_1";
    case TypeId::C_TS_TA_1: return "C_TS_TA_1";
    case TypeId::P_ME_NA_1: return "P_ME_NA_1";
    case TypeId::P_ME_NB_1: return "P_ME_NB_1";
    case TypeId::P_ME_NC_1: return "P_ME_NC_1";
    case TypeId::P_AC_NA_1: return "P_AC_NA_1";
    case TypeId::F_FR_NA_1: return "F_FR_NA_1";
    case TypeId::F_SR_NA_1: return "F_SR_NA_1";
    case TypeId::F_SC_NA_1: return "F_SC_NA_1";
    case TypeId::F_LS_NA_1: return "F_LS_NA_1";
    case TypeId::F_AF_NA_1: return "F_AF_NA_1";
    case TypeId::F_SG_NA_1: return "F_SG_NA_1";
    case TypeId::F_DR_TA_1: return "F_DR_TA_1";
    case TypeId::F_SC_NB_1: return "F_SC_NB_1";
  }
  return "TYPE_" + std::to_string(static_cast<int>(t));
}

std::string type_description(TypeId t) {
  switch (t) {
    case TypeId::M_SP_NA_1: return "Single-point information";
    case TypeId::M_DP_NA_1: return "Double-point information";
    case TypeId::M_ST_NA_1: return "Step position information";
    case TypeId::M_BO_NA_1: return "Bitstring of 32 bits";
    case TypeId::M_ME_NA_1: return "Measured value, normalized value";
    case TypeId::M_ME_NB_1: return "Measured value, scaled value";
    case TypeId::M_ME_NC_1: return "Measured value, short floating point number";
    case TypeId::M_IT_NA_1: return "Integrated totals";
    case TypeId::M_PS_NA_1:
      return "Packed single-point information with status change detection";
    case TypeId::M_ME_ND_1:
      return "Measured value, normalized value without quality descriptor";
    case TypeId::M_SP_TB_1: return "Single-point information with time tag CP56Time2a";
    case TypeId::M_DP_TB_1: return "Double-point information with time tag CP56Time2a";
    case TypeId::M_ST_TB_1: return "Step position information with time tag CP56Time2a";
    case TypeId::M_BO_TB_1: return "Bitstring of 32 bit with time tag CP56Time2a";
    case TypeId::M_ME_TD_1:
      return "Measured value, normalized value with time tag CP56Time2a";
    case TypeId::M_ME_TE_1: return "Measured value, scaled value with time tag CP56Time2a";
    case TypeId::M_ME_TF_1:
      return "Measured value, short floating point number with time tag CP56Time2a";
    case TypeId::M_IT_TB_1: return "Integrated totals with time tag CP56Time2a";
    case TypeId::M_EP_TD_1:
      return "Event of protection equipment with time tag CP56Time2a";
    case TypeId::M_EP_TE_1:
      return "Packed start events of protection equipment with time tag CP56Time2a";
    case TypeId::M_EP_TF_1:
      return "Packed output circuit information of protection equipment with time tag "
             "CP56Time2a";
    case TypeId::C_SC_NA_1: return "Single command";
    case TypeId::C_DC_NA_1: return "Double command";
    case TypeId::C_RC_NA_1: return "Regulating step command";
    case TypeId::C_SE_NA_1: return "Set point command, normalized value";
    case TypeId::C_SE_NB_1: return "Set point command, scaled value";
    case TypeId::C_SE_NC_1: return "Set point command, short floating point number";
    case TypeId::C_BO_NA_1: return "Bitstring of 32 bits";
    case TypeId::C_SC_TA_1: return "Single command with time tag CP56Time2a";
    case TypeId::C_DC_TA_1: return "Double command with time tag CP56Time2a";
    case TypeId::C_RC_TA_1: return "Regulating step command with time tag CP56Time2a";
    case TypeId::C_SE_TA_1:
      return "Set point command, normalized value with time tag CP56Time2a";
    case TypeId::C_SE_TB_1:
      return "Set point command, scaled value with time tag CP56Time2a";
    case TypeId::C_SE_TC_1:
      return "Set point command, short floating point number with time tag CP56Time2a";
    case TypeId::C_BO_TA_1: return "Bitstring of 32 bits with time tag CP56Time2a";
    case TypeId::M_EI_NA_1: return "End of initialization";
    case TypeId::C_IC_NA_1: return "Interrogation command";
    case TypeId::C_CI_NA_1: return "Counter interrogation command";
    case TypeId::C_RD_NA_1: return "Read command";
    case TypeId::C_CS_NA_1: return "Clock synchronization command";
    case TypeId::C_RP_NA_1: return "Reset process command";
    case TypeId::C_TS_TA_1: return "Test command with time tag CP56Time2a";
    case TypeId::P_ME_NA_1: return "Parameter of measured value, normalized value";
    case TypeId::P_ME_NB_1: return "Parameter of measured value, scaled value";
    case TypeId::P_ME_NC_1:
      return "Parameter of measured value, short floating-point number";
    case TypeId::P_AC_NA_1: return "Parameter activation";
    case TypeId::F_FR_NA_1: return "File ready";
    case TypeId::F_SR_NA_1: return "Section ready";
    case TypeId::F_SC_NA_1: return "Call directory, select file, call file, call section";
    case TypeId::F_LS_NA_1: return "Last section, last segment";
    case TypeId::F_AF_NA_1: return "Ack file, ack section";
    case TypeId::F_SG_NA_1: return "Segment";
    case TypeId::F_DR_TA_1: return "Directory";
    case TypeId::F_SC_NB_1: return "Query Log, Request archive file";
  }
  return "Unknown type " + std::to_string(static_cast<int>(t));
}

std::string cause_name(Cause c) {
  switch (c) {
    case Cause::kPeriodic: return "periodic";
    case Cause::kBackground: return "background";
    case Cause::kSpontaneous: return "spontaneous";
    case Cause::kInitialized: return "initialized";
    case Cause::kRequest: return "request";
    case Cause::kActivation: return "activation";
    case Cause::kActivationCon: return "activation-con";
    case Cause::kDeactivation: return "deactivation";
    case Cause::kDeactivationCon: return "deactivation-con";
    case Cause::kActivationTerm: return "activation-term";
    case Cause::kReturnRemote: return "return-remote";
    case Cause::kReturnLocal: return "return-local";
    case Cause::kFile: return "file";
    case Cause::kInterrogatedByStation: return "interrogated-station";
    case Cause::kInterrogatedByGroup1: return "interrogated-group1";
    case Cause::kUnknownTypeId: return "unknown-typeid";
    case Cause::kUnknownCause: return "unknown-cause";
    case Cause::kUnknownCommonAddress: return "unknown-common-address";
    case Cause::kUnknownIoa: return "unknown-ioa";
  }
  return "cause-" + std::to_string(static_cast<int>(c));
}

std::string u_function_name(UFunction f) {
  switch (f) {
    case UFunction::kStartDtAct: return "STARTDT act";
    case UFunction::kStartDtCon: return "STARTDT con";
    case UFunction::kStopDtAct: return "STOPDT act";
    case UFunction::kStopDtCon: return "STOPDT con";
    case UFunction::kTestFrAct: return "TESTFR act";
    case UFunction::kTestFrCon: return "TESTFR con";
  }
  return "U?";
}

}  // namespace uncharted::iec104
