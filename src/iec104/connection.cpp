#include "iec104/connection.hpp"

#include "iec104/seq15.hpp"

namespace uncharted::iec104 {

namespace {
// Shared 15-bit sequence arithmetic (seq15.hpp), under the names this
// engine has always used.
constexpr auto seq_inc = seq15_next;
constexpr auto seq_diff = seq15_ahead;
}  // namespace

ConnectionEngine::ConnectionEngine(Role role, Timers timers, int k, int w)
    : role_(role), timers_(timers), k_(k), w_(w) {}

void ConnectionEngine::on_connected(Timestamp now) {
  started_ = false;
  vs_ = vr_ = ack_sent_ = peer_acked_ = 0;
  recv_since_ack_ = 0;
  last_activity_ = now;
  t1_deadline_.reset();
  t2_deadline_.reset();
  test_outstanding_ = false;
}

int ConnectionEngine::unacked() const { return seq_diff(vs_, peer_acked_); }

void ConnectionEngine::note_sent(Timestamp now) {
  last_activity_ = now;
  if (!t1_deadline_) {
    t1_deadline_ = now + from_seconds(timers_.t1);
  }
}

void ConnectionEngine::ack_peer(Timestamp now, std::uint16_t nr) {
  // N(R) is a 15-bit counter; mask defensively so a caller passing a raw
  // 16-bit value cannot desynchronize the window math at the 32767 wrap.
  nr = seq15(nr);
  // The peer acknowledges everything below nr. An N(R) outside
  // (peer_acked_, vs_] is stale or bogus and is ignored — the modular
  // distance test handles the wrap, where nr may be numerically smaller
  // than peer_acked_.
  int advance = seq_diff(nr, peer_acked_);
  if (advance == 0 || advance > seq_diff(vs_, peer_acked_)) return;
  peer_acked_ = nr;
  if (peer_acked_ == vs_) {
    // Everything acknowledged; T1 now only guards an outstanding TESTFR.
    if (!test_outstanding_) t1_deadline_.reset();
  } else if (t1_deadline_) {
    // Partial progress: the peer is alive and draining the window, so the
    // send timer restarts from the newest acknowledgement. Without this a
    // busy long-lived connection whose acks always lag by a frame keeps
    // the original deadline and suffers a spurious T1 close.
    t1_deadline_ = now + from_seconds(timers_.t1);
  }
}

EngineSignals ConnectionEngine::on_apdu(Timestamp now, const Apdu& apdu) {
  EngineSignals out;
  last_activity_ = now;

  switch (apdu.format) {
    case ApduFormat::kU:
      switch (apdu.u_function) {
        case UFunction::kStartDtAct:
          started_ = true;
          out.to_send.push_back(Apdu::make_u(UFunction::kStartDtCon));
          break;
        case UFunction::kStopDtAct:
          started_ = false;
          out.to_send.push_back(Apdu::make_u(UFunction::kStopDtCon));
          break;
        case UFunction::kTestFrAct:
          out.to_send.push_back(Apdu::make_u(UFunction::kTestFrCon));
          break;
        case UFunction::kStartDtCon:
          started_ = true;
          t1_deadline_.reset();
          break;
        case UFunction::kStopDtCon:
          started_ = false;
          t1_deadline_.reset();
          break;
        case UFunction::kTestFrCon:
          test_outstanding_ = false;
          if (peer_acked_ == vs_) t1_deadline_.reset();
          break;
      }
      break;

    case ApduFormat::kS:
      ack_peer(now, apdu.recv_seq);
      break;

    case ApduFormat::kI: {
      ack_peer(now, apdu.recv_seq);
      // Accept in-sequence I APDUs; a real stack would close on a sequence
      // error, we simply resynchronize (captures can start mid-stream).
      if (apdu.send_seq == vr_) {
        vr_ = seq_inc(vr_);
      } else {
        vr_ = seq_inc(apdu.send_seq);
      }
      ++recv_since_ack_;
      if (!t2_deadline_) t2_deadline_ = now + from_seconds(timers_.t2);
      if (recv_since_ack_ >= w_) {
        out.to_send.push_back(Apdu::make_s(vr_));
        ack_sent_ = vr_;
        recv_since_ack_ = 0;
        t2_deadline_.reset();
      }
      break;
    }
  }

  // Responses (confirmations, S-format acks) refresh link activity but do
  // not arm T1: the standard's send timer covers I-frames and act-type
  // U-frames, which expect an answer — acks do not.
  if (!out.to_send.empty()) last_activity_ = now;
  return out;
}

EngineSignals ConnectionEngine::on_tick(Timestamp now) {
  EngineSignals out;

  // T1: an APDU we sent (I or TESTFR) was never acknowledged -> active close.
  if (t1_deadline_ && now >= *t1_deadline_) {
    out.close_connection = true;
    return out;
  }

  // T2: owed acknowledgement for received I APDUs. An S-format ack does
  // not arm T1 (nothing acknowledges an acknowledgement).
  if (t2_deadline_ && now >= *t2_deadline_ && recv_since_ack_ > 0) {
    out.to_send.push_back(Apdu::make_s(vr_));
    ack_sent_ = vr_;
    recv_since_ack_ = 0;
    t2_deadline_.reset();
    last_activity_ = now;
  }

  // T3: idle connection -> keep-alive test.
  if (!test_outstanding_ && now >= last_activity_ + from_seconds(timers_.t3)) {
    out.to_send.push_back(Apdu::make_u(UFunction::kTestFrAct));
    test_outstanding_ = true;
    note_sent(now);
  }

  return out;
}

std::optional<Apdu> ConnectionEngine::send_asdu(Timestamp now, Asdu asdu) {
  if (!started_) return std::nullopt;
  if (unacked() >= k_) return std::nullopt;  // window closed
  Apdu apdu = Apdu::make_i(vs_, vr_, std::move(asdu));
  vs_ = seq_inc(vs_);
  ack_sent_ = vr_;
  recv_since_ack_ = 0;
  t2_deadline_.reset();
  note_sent(now);
  return apdu;
}

Apdu ConnectionEngine::start_dt(Timestamp now) {
  note_sent(now);
  return Apdu::make_u(UFunction::kStartDtAct);
}

Apdu ConnectionEngine::stop_dt(Timestamp now) {
  note_sent(now);
  return Apdu::make_u(UFunction::kStopDtAct);
}

void ConnectionEngine::Snapshot::save(ByteWriter& w) const {
  w.u8(started ? 1 : 0);
  w.u16le(vs);
  w.u16le(vr);
  w.u16le(ack_sent);
  w.u16le(peer_acked);
  w.u32le(static_cast<std::uint32_t>(recv_since_ack));
  w.u64le(last_activity);
  w.u8(t1_deadline.has_value() ? 1 : 0);
  if (t1_deadline) w.u64le(*t1_deadline);
  w.u8(test_outstanding ? 1 : 0);
  w.u8(t2_deadline.has_value() ? 1 : 0);
  if (t2_deadline) w.u64le(*t2_deadline);
}

Result<ConnectionEngine::Snapshot> ConnectionEngine::Snapshot::load(ByteReader& r) {
  Snapshot s;
  auto started = r.u8();
  auto vs = r.u16le();
  auto vr = r.u16le();
  auto ack_sent = r.u16le();
  auto peer_acked = r.u16le();
  auto recv = r.u32le();
  auto last_activity = r.u64le();
  auto has_t1 = r.u8();
  if (!has_t1) return has_t1.error();
  if (has_t1.value()) {
    auto t1 = r.u64le();
    if (!t1) return t1.error();
    s.t1_deadline = t1.value();
  }
  auto test = r.u8();
  auto has_t2 = r.u8();
  if (!has_t2) return has_t2.error();
  if (has_t2.value()) {
    auto t2 = r.u64le();
    if (!t2) return t2.error();
    s.t2_deadline = t2.value();
  }
  s.started = started.value() != 0;
  s.vs = vs.value();
  s.vr = vr.value();
  s.ack_sent = ack_sent.value();
  s.peer_acked = peer_acked.value();
  s.recv_since_ack = static_cast<int>(recv.value());
  s.last_activity = last_activity.value();
  s.test_outstanding = test.value() != 0;
  return s;
}

ConnectionEngine::Snapshot ConnectionEngine::snapshot() const {
  Snapshot s;
  s.started = started_;
  s.vs = vs_;
  s.vr = vr_;
  s.ack_sent = ack_sent_;
  s.peer_acked = peer_acked_;
  s.recv_since_ack = recv_since_ack_;
  s.last_activity = last_activity_;
  s.t1_deadline = t1_deadline_;
  s.test_outstanding = test_outstanding_;
  s.t2_deadline = t2_deadline_;
  return s;
}

void ConnectionEngine::restore(const Snapshot& s) {
  started_ = s.started;
  vs_ = seq15(s.vs);
  vr_ = seq15(s.vr);
  ack_sent_ = seq15(s.ack_sent);
  peer_acked_ = seq15(s.peer_acked);
  recv_since_ack_ = s.recv_since_ack;
  last_activity_ = s.last_activity;
  t1_deadline_ = s.t1_deadline;
  test_outstanding_ = s.test_outstanding;
  t2_deadline_ = s.t2_deadline;
}

}  // namespace uncharted::iec104
