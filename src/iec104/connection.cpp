#include "iec104/connection.hpp"

namespace uncharted::iec104 {

namespace {
constexpr std::uint16_t kSeqModulo = 32768;

std::uint16_t seq_inc(std::uint16_t v) {
  return static_cast<std::uint16_t>((v + 1) % kSeqModulo);
}

/// Distance a - b modulo 2^15.
int seq_diff(std::uint16_t a, std::uint16_t b) {
  return static_cast<int>((a + kSeqModulo - b) % kSeqModulo);
}
}  // namespace

ConnectionEngine::ConnectionEngine(Role role, Timers timers, int k, int w)
    : role_(role), timers_(timers), k_(k), w_(w) {}

void ConnectionEngine::on_connected(Timestamp now) {
  started_ = false;
  vs_ = vr_ = ack_sent_ = peer_acked_ = 0;
  recv_since_ack_ = 0;
  last_activity_ = now;
  t1_deadline_.reset();
  t2_deadline_.reset();
  test_outstanding_ = false;
}

int ConnectionEngine::unacked() const { return seq_diff(vs_, peer_acked_); }

void ConnectionEngine::note_sent(Timestamp now) {
  last_activity_ = now;
  if (!t1_deadline_) {
    t1_deadline_ = now + from_seconds(timers_.t1);
  }
}

void ConnectionEngine::ack_peer(std::uint16_t nr) {
  // The peer acknowledges everything below nr.
  if (seq_diff(nr, peer_acked_) <= seq_diff(vs_, peer_acked_)) {
    peer_acked_ = nr;
  }
  if (peer_acked_ == vs_ && !test_outstanding_) {
    t1_deadline_.reset();  // nothing outstanding anymore
  }
}

EngineSignals ConnectionEngine::on_apdu(Timestamp now, const Apdu& apdu) {
  EngineSignals out;
  last_activity_ = now;

  switch (apdu.format) {
    case ApduFormat::kU:
      switch (apdu.u_function) {
        case UFunction::kStartDtAct:
          started_ = true;
          out.to_send.push_back(Apdu::make_u(UFunction::kStartDtCon));
          break;
        case UFunction::kStopDtAct:
          started_ = false;
          out.to_send.push_back(Apdu::make_u(UFunction::kStopDtCon));
          break;
        case UFunction::kTestFrAct:
          out.to_send.push_back(Apdu::make_u(UFunction::kTestFrCon));
          break;
        case UFunction::kStartDtCon:
          started_ = true;
          t1_deadline_.reset();
          break;
        case UFunction::kStopDtCon:
          started_ = false;
          t1_deadline_.reset();
          break;
        case UFunction::kTestFrCon:
          test_outstanding_ = false;
          if (peer_acked_ == vs_) t1_deadline_.reset();
          break;
      }
      break;

    case ApduFormat::kS:
      ack_peer(apdu.recv_seq);
      break;

    case ApduFormat::kI: {
      ack_peer(apdu.recv_seq);
      // Accept in-sequence I APDUs; a real stack would close on a sequence
      // error, we simply resynchronize (captures can start mid-stream).
      if (apdu.send_seq == vr_) {
        vr_ = seq_inc(vr_);
      } else {
        vr_ = seq_inc(apdu.send_seq);
      }
      ++recv_since_ack_;
      if (!t2_deadline_) t2_deadline_ = now + from_seconds(timers_.t2);
      if (recv_since_ack_ >= w_) {
        out.to_send.push_back(Apdu::make_s(vr_));
        ack_sent_ = vr_;
        recv_since_ack_ = 0;
        t2_deadline_.reset();
      }
      break;
    }
  }

  // Responses (confirmations, S-format acks) refresh link activity but do
  // not arm T1: the standard's send timer covers I-frames and act-type
  // U-frames, which expect an answer — acks do not.
  if (!out.to_send.empty()) last_activity_ = now;
  return out;
}

EngineSignals ConnectionEngine::on_tick(Timestamp now) {
  EngineSignals out;

  // T1: an APDU we sent (I or TESTFR) was never acknowledged -> active close.
  if (t1_deadline_ && now >= *t1_deadline_) {
    out.close_connection = true;
    return out;
  }

  // T2: owed acknowledgement for received I APDUs. An S-format ack does
  // not arm T1 (nothing acknowledges an acknowledgement).
  if (t2_deadline_ && now >= *t2_deadline_ && recv_since_ack_ > 0) {
    out.to_send.push_back(Apdu::make_s(vr_));
    ack_sent_ = vr_;
    recv_since_ack_ = 0;
    t2_deadline_.reset();
    last_activity_ = now;
  }

  // T3: idle connection -> keep-alive test.
  if (!test_outstanding_ && now >= last_activity_ + from_seconds(timers_.t3)) {
    out.to_send.push_back(Apdu::make_u(UFunction::kTestFrAct));
    test_outstanding_ = true;
    note_sent(now);
  }

  return out;
}

std::optional<Apdu> ConnectionEngine::send_asdu(Timestamp now, Asdu asdu) {
  if (!started_) return std::nullopt;
  if (unacked() >= k_) return std::nullopt;  // window closed
  Apdu apdu = Apdu::make_i(vs_, vr_, std::move(asdu));
  vs_ = seq_inc(vs_);
  ack_sent_ = vr_;
  recv_since_ack_ = 0;
  t2_deadline_.reset();
  note_sent(now);
  return apdu;
}

Apdu ConnectionEngine::start_dt(Timestamp now) {
  note_sent(now);
  return Apdu::make_u(UFunction::kStartDtAct);
}

Apdu ConnectionEngine::stop_dt(Timestamp now) {
  note_sent(now);
  return Apdu::make_u(UFunction::kStopDtAct);
}

}  // namespace uncharted::iec104
