#include "faultinject/fault.hpp"

#include <algorithm>
#include <optional>

#include "net/frame.hpp"
#include "util/rng.hpp"

namespace uncharted::faultinject {

FaultConfig FaultConfig::uniform(double rate, std::uint64_t seed) {
  FaultConfig c;
  c.seed = seed;
  c.drop_p = rate * 0.35;
  c.duplicate_p = rate * 0.15;
  c.reorder_p = rate * 0.10;
  c.truncate_p = rate * 0.10;
  c.corrupt_p = rate * 0.08;
  c.garble_p = rate * 0.10;
  c.rst_p = rate * 0.05;
  c.desync_p = rate * 0.07;
  return c;
}

namespace {

/// Rebuilds a decoded frame with a replacement payload and fresh length
/// and checksum fields, so the damage survives decode_frame and reaches
/// the reassembler/parser as a valid-looking TCP segment.
std::vector<std::uint8_t> rebuild(const net::DecodedFrame& frame,
                                  std::span<const std::uint8_t> payload) {
  net::TcpSegmentSpec spec;
  spec.src_mac = frame.eth.src;
  spec.dst_mac = frame.eth.dst;
  spec.src_ip = frame.ip.src;
  spec.dst_ip = frame.ip.dst;
  spec.src_port = frame.tcp.src_port;
  spec.dst_port = frame.tcp.dst_port;
  spec.seq = frame.tcp.seq;
  spec.ack = frame.tcp.ack;
  spec.flags = frame.tcp.flags;
  spec.window = frame.tcp.window;
  spec.ip_id = frame.ip.identification;
  spec.payload = payload;
  return net::build_tcp_frame(spec);
}

}  // namespace

FaultResult apply_faults(const std::vector<net::CapturedPacket>& packets,
                         const FaultConfig& config) {
  FaultResult out;
  out.packets.reserve(packets.size());
  Rng rng(config.seed);

  // Reordering holds one packet back and releases it after its successor.
  std::optional<net::CapturedPacket> held;
  auto emit = [&](net::CapturedPacket pkt) {
    out.packets.push_back(std::move(pkt));
    if (held) {
      out.packets.push_back(std::move(*held));
      held.reset();
    }
  };

  for (const auto& original : packets) {
    auto frame = net::decode_frame(original.data);
    bool eligible = frame.ok();
    if (eligible && config.iec104_only) {
      eligible = frame->tcp.src_port == config.iec104_port ||
                 frame->tcp.dst_port == config.iec104_port;
    }
    if (!eligible) {
      emit(original);
      continue;
    }
    ++out.log.eligible_packets;

    if (rng.chance(config.drop_p)) {
      ++out.log.dropped;
      continue;
    }

    net::CapturedPacket pkt = original;
    if (rng.chance(config.truncate_p) && pkt.data.size() > 2) {
      // Cut a random amount off the tail — the frame no longer decodes,
      // exactly like a tap that ran out of snaplen.
      std::size_t keep = 1 + rng.below(pkt.data.size() - 1);
      out.log.bytes_removed += pkt.data.size() - keep;
      pkt.data.resize(keep);
      ++out.log.truncated;
    } else if (rng.chance(config.corrupt_p) && !pkt.data.empty()) {
      // Bit flips with stale checksums: header hits make the frame
      // undecodable, payload hits reach the parser as garbage (TCP
      // checksums are not verified on decode, as in real captures).
      int flips = static_cast<int>(1 + rng.below(4));
      for (int i = 0; i < flips; ++i) {
        pkt.data[rng.below(pkt.data.size())] ^=
            static_cast<std::uint8_t>(1 + rng.below(255));
      }
      out.log.bytes_corrupted += static_cast<std::uint64_t>(flips);
      ++out.log.corrupted;
    } else if (rng.chance(config.garble_p) && !frame->payload.empty()) {
      // Corrupt payload bytes and rebuild checksums: the segment is
      // delivered, so the APDU parser must resynchronize past the damage.
      std::vector<std::uint8_t> payload(frame->payload.begin(), frame->payload.end());
      int flips = static_cast<int>(1 + rng.below(std::min<std::size_t>(4, payload.size())));
      for (int i = 0; i < flips; ++i) {
        payload[rng.below(payload.size())] ^=
            static_cast<std::uint8_t>(1 + rng.below(255));
      }
      out.log.bytes_corrupted += static_cast<std::uint64_t>(flips);
      pkt.data = rebuild(*frame, payload);
      pkt.original_length = static_cast<std::uint32_t>(pkt.data.size());
      ++out.log.garbled;
    } else if (rng.chance(config.desync_p) && frame->payload.size() > 1) {
      // Cut leading payload bytes, keeping seq: the stream's content
      // shifts under the parser mid-APDU and a sequence hole opens where
      // the cut bytes used to end.
      std::size_t cut = 1 + rng.below(frame->payload.size() - 1);
      std::vector<std::uint8_t> payload(frame->payload.begin() + static_cast<std::ptrdiff_t>(cut),
                                        frame->payload.end());
      out.log.bytes_removed += cut;
      pkt.data = rebuild(*frame, payload);
      pkt.original_length = static_cast<std::uint32_t>(pkt.data.size());
      ++out.log.desynced;
    }

    bool duplicate = rng.chance(config.duplicate_p);
    bool reorder = rng.chance(config.reorder_p);
    bool inject_rst = rng.chance(config.rst_p);

    if (reorder && !held) {
      held = pkt;
      ++out.log.reordered;
    } else {
      emit(pkt);
    }
    if (duplicate) {
      emit(pkt);
      ++out.log.duplicated;
    }
    if (inject_rst) {
      // A hard reset from the sender right after its own data — the Fig 9
      // reset-backup behaviour landing mid-stream.
      net::TcpSegmentSpec spec;
      spec.src_mac = frame->eth.src;
      spec.dst_mac = frame->eth.dst;
      spec.src_ip = frame->ip.src;
      spec.dst_ip = frame->ip.dst;
      spec.src_port = frame->tcp.src_port;
      spec.dst_port = frame->tcp.dst_port;
      spec.seq = frame->tcp.seq + static_cast<std::uint32_t>(frame->payload.size());
      spec.ack = frame->tcp.ack;
      spec.flags = net::kTcpRst | net::kTcpAck;
      net::CapturedPacket rst;
      rst.ts = pkt.ts;
      rst.data = net::build_tcp_frame(spec);
      rst.original_length = static_cast<std::uint32_t>(rst.data.size());
      emit(std::move(rst));
      ++out.log.rsts_injected;
    }
  }
  if (held) out.packets.push_back(std::move(*held));
  return out;
}

}  // namespace uncharted::faultinject
