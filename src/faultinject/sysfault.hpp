// Deterministic OS-level fault injection: the syscall twin of fault.hpp.
//
// PR 2's fault layer damages *packets*; this layer damages the *kernel
// contract* underneath the live-ingest daemon. Every data-plane syscall
// the daemon issues — socket reads/writes, accept, readiness waits, and
// the checkpoint writer's open/write/fsync/rename — goes through the
// `SysOps` interface. In production that is `RealSysOps`, a passthrough.
// Under test it is `FaultySysOps`, which replays a seeded `SysFaultPlan`:
// short reads/writes, EINTR/EAGAIN storms, ECONNRESET mid-stream, accept
// failing with EMFILE, delayed readiness, and storage faults (ENOSPC,
// EIO, failed fsync, failed rename) at per-syscall rates with optional
// burst schedules. Same plan + same call sequence == same faults; the
// `SysFaultLog` ledger counts what actually fired, so a soak can assert
// the chaos it asked for really happened.
//
// The retry helpers (`retry_read`/`retry_write`/`retry_recv`/`retry_send`
// /`retry_accept`) are the ONLY place errno handling lives: they absorb
// bounded EINTR storms, classify EAGAIN/EWOULDBLOCK as kWouldBlock, EOF
// as kEof, and everything else as kError with the errno attached. No
// caller hand-rolls an errno loop; the unchartedlint `netd-raw-socket`
// rule enforces that no raw data-plane syscall survives outside this
// file's implementation.
#pragma once

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <set>
#include <string>

#include "util/rng.hpp"

#if defined(__linux__)
#define UNCHARTED_SYSFAULT_HAVE_EPOLL 1
#else
#define UNCHARTED_SYSFAULT_HAVE_EPOLL 0
#endif

#if UNCHARTED_SYSFAULT_HAVE_EPOLL
struct epoll_event;
#endif

namespace uncharted::faultinject {

/// The daemon's syscall surface. Methods keep the libc contract (-1 +
/// errno on failure) so `FaultySysOps` can impersonate the kernel
/// faithfully; the retry helpers below translate that contract into
/// something callers can consume without touching errno.
class SysOps {
 public:
  virtual ~SysOps() = default;

  // Data plane (sockets, pipes).
  virtual ssize_t read(int fd, void* buf, std::size_t n) = 0;
  virtual ssize_t write(int fd, const void* buf, std::size_t n) = 0;
  virtual ssize_t recv(int fd, void* buf, std::size_t n, int flags) = 0;
  virtual ssize_t send(int fd, const void* buf, std::size_t n, int flags) = 0;
  virtual int accept(int fd, sockaddr* addr, socklen_t* len) = 0;

  // Readiness waits.
  virtual int poll_wait(pollfd* fds, nfds_t nfds, int timeout_ms) = 0;
#if UNCHARTED_SYSFAULT_HAVE_EPOLL
  virtual int epoll_wait(int epfd, epoll_event* events, int maxevents,
                         int timeout_ms) = 0;
#endif

  // Storage plane (checkpoint writer). Fds returned by `open` are tracked
  // by FaultySysOps as storage fds and receive the storage fault classes.
  virtual int open(const char* path, int flags, unsigned mode) = 0;
  virtual int close(int fd) = 0;
  virtual int fsync(int fd) = 0;
  virtual int rename(const char* from, const char* to) = 0;
};

/// Passthrough to the real kernel.
class RealSysOps final : public SysOps {
 public:
  ssize_t read(int fd, void* buf, std::size_t n) override;
  ssize_t write(int fd, const void* buf, std::size_t n) override;
  ssize_t recv(int fd, void* buf, std::size_t n, int flags) override;
  ssize_t send(int fd, const void* buf, std::size_t n, int flags) override;
  int accept(int fd, sockaddr* addr, socklen_t* len) override;
  int poll_wait(pollfd* fds, nfds_t nfds, int timeout_ms) override;
#if UNCHARTED_SYSFAULT_HAVE_EPOLL
  int epoll_wait(int epfd, epoll_event* events, int maxevents,
                 int timeout_ms) override;
#endif
  int open(const char* path, int flags, unsigned mode) override;
  int close(int fd) override;
  int fsync(int fd) override;
  int rename(const char* from, const char* to) override;
};

/// Shared process-wide passthrough instance (the default everywhere a
/// `SysOps*` is left null).
SysOps& real_sys_ops();

/// Per-syscall fault rates plus an optional burst schedule. All rates are
/// independent probabilities in [0, 1]; a fault class with rate 0 never
/// fires. Deterministic: decisions come from `seed` and the op sequence
/// alone.
struct SysFaultPlan {
  std::uint64_t seed = 0x05f0a17ULL;

  // Network plane (sockets, pipes; any fd NOT opened through SysOps::open).
  double eintr_p = 0.0;         ///< op fails with EINTR (signal storm)
  double eagain_p = 0.0;        ///< spurious EAGAIN on a "ready" fd
  double short_read_p = 0.0;    ///< recv/read delivers 1..16 bytes instead
  double short_write_p = 0.0;   ///< send/write takes 1..16 bytes instead
  double conn_reset_p = 0.0;    ///< recv/send fails with ECONNRESET
  double accept_emfile_p = 0.0; ///< accept fails with EMFILE (fd pressure)
  double delayed_ready_p = 0.0; ///< poll/epoll reports nothing ready

  // Storage plane (fds opened through SysOps::open, plus fsync/rename).
  double open_fail_p = 0.0;     ///< open fails with ENOSPC
  double write_enospc_p = 0.0;  ///< write fails with ENOSPC
  double storage_eio_p = 0.0;   ///< read/write fails with EIO
  double fsync_fail_p = 0.0;    ///< fsync fails with EIO
  double rename_fail_p = 0.0;   ///< rename fails with EIO (torn: tmp stays)

  /// Burst schedule: every `burst_period` faultable ops, the following
  /// `burst_len` ops have their rates multiplied by `burst_boost` (capped
  /// at 1.0) — modelling correlated failures (a dying disk, a signal
  /// storm) instead of uniform background noise. Disabled when period is 0.
  std::uint64_t burst_period = 0;
  std::uint64_t burst_len = 0;
  double burst_boost = 1.0;

  /// Network-only faults at `rate` (resets and EMFILE at a fraction of
  /// it), with a burst schedule.
  static SysFaultPlan network(double rate, std::uint64_t seed = 0x05f0a17ULL);
  /// Storage-only faults at `rate`.
  static SysFaultPlan storage(double rate, std::uint64_t seed = 0x05f0a17ULL);
  /// Both planes at once: the compound-soak configuration.
  static SysFaultPlan compound(double rate, std::uint64_t seed = 0x05f0a17ULL);
};

/// Monotone counters of injected faults (FaultLog's syscall twin).
struct SysFaultLog {
  std::uint64_t ops = 0;            ///< faultable ops seen while enabled
  std::uint64_t burst_ops = 0;      ///< ops that ran boosted
  std::uint64_t eintr = 0;
  std::uint64_t spurious_eagain = 0;
  std::uint64_t short_reads = 0;
  std::uint64_t short_writes = 0;
  std::uint64_t conn_resets = 0;
  std::uint64_t accept_emfile = 0;
  std::uint64_t delayed_ready = 0;
  std::uint64_t open_failures = 0;
  std::uint64_t write_enospc = 0;
  std::uint64_t storage_eio = 0;
  std::uint64_t fsync_failures = 0;
  std::uint64_t rename_failures = 0;

  std::uint64_t total() const {
    return eintr + spurious_eagain + short_reads + short_writes + conn_resets +
           accept_emfile + delayed_ready + open_failures + write_enospc +
           storage_eio + fsync_failures + rename_failures;
  }
  /// Distinct fault classes that fired at least once.
  int classes_fired() const;
  /// "eintr=3 short_reads=2 ..." (nonzero counters only; "clean" if none).
  std::string summary() const;
};

/// SysOps implementation that injects `plan` faults in front of `inner`
/// (the real kernel by default). `set_enabled(false)` turns it into a
/// plain passthrough — the inject → stop → verify-steady-state pattern the
/// chaos soak uses before comparing final reports.
class FaultySysOps final : public SysOps {
 public:
  explicit FaultySysOps(SysFaultPlan plan, SysOps* inner = nullptr);

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }
  const SysFaultLog& log() const { return log_; }
  void reset_log() { log_ = SysFaultLog{}; }

  ssize_t read(int fd, void* buf, std::size_t n) override;
  ssize_t write(int fd, const void* buf, std::size_t n) override;
  ssize_t recv(int fd, void* buf, std::size_t n, int flags) override;
  ssize_t send(int fd, const void* buf, std::size_t n, int flags) override;
  int accept(int fd, sockaddr* addr, socklen_t* len) override;
  int poll_wait(pollfd* fds, nfds_t nfds, int timeout_ms) override;
#if UNCHARTED_SYSFAULT_HAVE_EPOLL
  int epoll_wait(int epfd, epoll_event* events, int maxevents,
                 int timeout_ms) override;
#endif
  int open(const char* path, int flags, unsigned mode) override;
  int close(int fd) override;
  int fsync(int fd) override;
  int rename(const char* from, const char* to) override;

 private:
  /// Advances the burst schedule by one op; call once per faultable op.
  void begin_op();
  /// Seeded Bernoulli trial at `p`, boosted while inside a burst.
  bool roll(double p);
  /// 1..16 bytes (but never more than n-1) for short read/write injection.
  std::size_t shorten(std::size_t n);
  bool is_storage(int fd) const { return storage_fds_.count(fd) > 0; }

  SysFaultPlan plan_;
  SysOps& inner_;
  Rng rng_;
  SysFaultLog log_;
  bool enabled_ = true;
  std::uint64_t op_index_ = 0;
  std::uint64_t burst_left_ = 0;
  bool in_burst_ = false;
  std::set<int> storage_fds_;
};

// ---------------------------------------------------------------------------
// Retry helpers: the one place errno is interpreted.
// ---------------------------------------------------------------------------

enum class IoStatus : std::uint8_t {
  kOk,          ///< bytes transferred (or fd accepted)
  kWouldBlock,  ///< EAGAIN/EWOULDBLOCK (or a bounded EINTR storm): retry
                ///< on the next readiness event
  kEof,         ///< orderly peer close (reads only)
  kError,       ///< anything else; `err` holds the errno
};

struct IoResult {
  IoStatus status = IoStatus::kOk;
  std::size_t bytes = 0;  ///< valid when status == kOk
  int err = 0;            ///< valid when status == kError
};

struct AcceptResult {
  int fd = -1;  ///< valid when status == kOk
  IoStatus status = IoStatus::kOk;
  int err = 0;  ///< valid when status == kError
};

/// One syscall attempt with bounded EINTR absorption (a persistent signal
/// storm degrades to kWouldBlock — the reactor will re-offer readiness —
/// instead of looping forever).
IoResult retry_read(SysOps& sys, int fd, void* buf, std::size_t n);
IoResult retry_write(SysOps& sys, int fd, const void* buf, std::size_t n);
IoResult retry_recv(SysOps& sys, int fd, void* buf, std::size_t n,
                    int flags = 0);
IoResult retry_send(SysOps& sys, int fd, const void* buf, std::size_t n,
                    int flags = 0);
/// Also absorbs ECONNABORTED/EPROTO (the connection died in the backlog —
/// try the next one). EMFILE and friends surface as kError for the
/// caller's admission control; classify with `fd_exhausted`.
AcceptResult retry_accept(SysOps& sys, int fd, sockaddr* addr, socklen_t* len);

/// True for the errno family meaning "out of descriptors or kernel
/// memory": EMFILE, ENFILE, ENOBUFS, ENOMEM.
bool fd_exhausted(int err);

}  // namespace uncharted::faultinject
