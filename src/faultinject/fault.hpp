// Deterministic fault injection over synthesized captures.
//
// The paper's captures were hostile in ways our simulator is not: frames
// arrived truncated by the tap, outstations hard-reset backup connections
// mid-stream (Fig 9), and TCP-layer loss/retransmission masqueraded as
// protocol anomalies (§6.3.1). This layer wraps the output of
// sim::generate_capture and damages it on purpose — packet loss,
// duplication, reordering, truncation, bit corruption, injected RSTs, and
// byte-stream desync — at configurable per-packet rates, so every
// downstream layer can be exercised (and its DegradationReport audited)
// under controlled, reproducible damage. Same packets + same config ==
// byte-identical output; the chaos sweep depends on that.
#pragma once

#include <cstdint>
#include <vector>

#include "net/pcap.hpp"

namespace uncharted::faultinject {

/// Independent per-packet fault probabilities. Mutating faults (truncate /
/// corrupt / garble / desync) are mutually exclusive per packet, tried in
/// that order; drop preempts everything; duplicate, reorder and RST
/// injection compose with the rest.
struct FaultConfig {
  std::uint64_t seed = 0xfa0175;

  double drop_p = 0.0;       ///< packet vanishes (link loss)
  double duplicate_p = 0.0;  ///< packet emitted twice (spurious retransmit)
  double reorder_p = 0.0;    ///< packet swapped with its successor
  double truncate_p = 0.0;   ///< frame cut short (tap/snaplen damage)
  double corrupt_p = 0.0;    ///< bit flips anywhere, checksums NOT fixed
  double garble_p = 0.0;     ///< payload bytes corrupted, checksums rebuilt
  double rst_p = 0.0;        ///< mid-stream RST injected after the packet
  double desync_p = 0.0;     ///< leading payload bytes cut, checksums rebuilt

  /// Restrict faults to IEC 104 traffic (port 2404); background protocol
  /// packets pass through untouched.
  bool iec104_only = true;
  std::uint16_t iec104_port = 2404;

  /// One knob for the chaos sweep: distributes `rate` over every fault
  /// class with fixed weights (loss-dominated, like a sick WAN link).
  static FaultConfig uniform(double rate, std::uint64_t seed = 0xfa0175);
};

/// Typed counters of what was actually injected. All monotone; `total()`
/// is nonzero iff any fault fired.
struct FaultLog {
  std::uint64_t eligible_packets = 0;  ///< packets the config could touch
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t truncated = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t garbled = 0;
  std::uint64_t rsts_injected = 0;
  std::uint64_t desynced = 0;
  std::uint64_t bytes_removed = 0;    ///< via truncation + desync cuts
  std::uint64_t bytes_corrupted = 0;  ///< via corrupt + garble

  std::uint64_t total() const {
    return dropped + duplicated + reordered + truncated + corrupted + garbled +
           rsts_injected + desynced;
  }
};

struct FaultResult {
  std::vector<net::CapturedPacket> packets;
  FaultLog log;
};

/// Applies the configured faults to a time-ordered packet list.
/// Deterministic: the RNG is seeded from config.seed alone.
FaultResult apply_faults(const std::vector<net::CapturedPacket>& packets,
                         const FaultConfig& config);

}  // namespace uncharted::faultinject
