#include "faultinject/sysfault.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#if UNCHARTED_SYSFAULT_HAVE_EPOLL
#include <sys/epoll.h>
#endif

namespace uncharted::faultinject {

namespace {

/// EINTR absorption bound: past this, the helper reports kWouldBlock and
/// lets the reactor re-offer readiness rather than spinning in place.
constexpr int kMaxEintrRetries = 64;

/// Injected short transfers deliver at most this many bytes.
constexpr std::size_t kShortChunk = 16;

}  // namespace

// ---------------------------------------------------------------------------
// RealSysOps
// ---------------------------------------------------------------------------

ssize_t RealSysOps::read(int fd, void* buf, std::size_t n) {
  return ::read(fd, buf, n);
}

ssize_t RealSysOps::write(int fd, const void* buf, std::size_t n) {
  return ::write(fd, buf, n);
}

ssize_t RealSysOps::recv(int fd, void* buf, std::size_t n, int flags) {
  return ::recv(fd, buf, n, flags);
}

ssize_t RealSysOps::send(int fd, const void* buf, std::size_t n, int flags) {
  return ::send(fd, buf, n, flags);
}

int RealSysOps::accept(int fd, sockaddr* addr, socklen_t* len) {
  return ::accept(fd, addr, len);
}

int RealSysOps::poll_wait(pollfd* fds, nfds_t nfds, int timeout_ms) {
  return ::poll(fds, nfds, timeout_ms);
}

#if UNCHARTED_SYSFAULT_HAVE_EPOLL
int RealSysOps::epoll_wait(int epfd, epoll_event* events, int maxevents,
                           int timeout_ms) {
  return ::epoll_wait(epfd, events, maxevents, timeout_ms);
}
#endif

int RealSysOps::open(const char* path, int flags, unsigned mode) {
  return ::open(path, flags, static_cast<mode_t>(mode));
}

int RealSysOps::close(int fd) { return ::close(fd); }

int RealSysOps::fsync(int fd) { return ::fsync(fd); }

int RealSysOps::rename(const char* from, const char* to) {
  return ::rename(from, to);
}

SysOps& real_sys_ops() {
  static RealSysOps ops;
  return ops;
}

// ---------------------------------------------------------------------------
// SysFaultPlan factories
// ---------------------------------------------------------------------------

SysFaultPlan SysFaultPlan::network(double rate, std::uint64_t seed) {
  SysFaultPlan p;
  p.seed = seed;
  p.eintr_p = rate;
  p.eagain_p = rate * 0.5;
  p.short_read_p = rate;
  p.short_write_p = rate;
  p.conn_reset_p = rate * 0.25;
  p.accept_emfile_p = rate * 0.5;
  p.delayed_ready_p = rate * 0.5;
  // Correlated bursts: every 257 ops, 5 ops at 8x the base rates.
  p.burst_period = 257;
  p.burst_len = 5;
  p.burst_boost = 8.0;
  return p;
}

SysFaultPlan SysFaultPlan::storage(double rate, std::uint64_t seed) {
  SysFaultPlan p;
  p.seed = seed;
  p.open_fail_p = rate * 0.25;
  p.write_enospc_p = rate;
  p.storage_eio_p = rate * 0.5;
  p.fsync_fail_p = rate;
  p.rename_fail_p = rate * 0.5;
  return p;
}

SysFaultPlan SysFaultPlan::compound(double rate, std::uint64_t seed) {
  SysFaultPlan p = network(rate, seed);
  const SysFaultPlan s = storage(rate, seed);
  p.open_fail_p = s.open_fail_p;
  p.write_enospc_p = s.write_enospc_p;
  p.storage_eio_p = s.storage_eio_p;
  p.fsync_fail_p = s.fsync_fail_p;
  p.rename_fail_p = s.rename_fail_p;
  return p;
}

// ---------------------------------------------------------------------------
// SysFaultLog
// ---------------------------------------------------------------------------

int SysFaultLog::classes_fired() const {
  int c = 0;
  c += eintr > 0;
  c += spurious_eagain > 0;
  c += short_reads > 0;
  c += short_writes > 0;
  c += conn_resets > 0;
  c += accept_emfile > 0;
  c += delayed_ready > 0;
  c += open_failures > 0;
  c += write_enospc > 0;
  c += storage_eio > 0;
  c += fsync_failures > 0;
  c += rename_failures > 0;
  return c;
}

std::string SysFaultLog::summary() const {
  std::string out;
  auto add = [&](const char* name, std::uint64_t v) {
    if (v == 0) return;
    if (!out.empty()) out += ' ';
    out += name;
    out += '=';
    out += std::to_string(v);
  };
  add("eintr", eintr);
  add("eagain", spurious_eagain);
  add("short_reads", short_reads);
  add("short_writes", short_writes);
  add("conn_resets", conn_resets);
  add("accept_emfile", accept_emfile);
  add("delayed_ready", delayed_ready);
  add("open_failures", open_failures);
  add("write_enospc", write_enospc);
  add("storage_eio", storage_eio);
  add("fsync_failures", fsync_failures);
  add("rename_failures", rename_failures);
  return out.empty() ? "clean" : out;
}

// ---------------------------------------------------------------------------
// FaultySysOps
// ---------------------------------------------------------------------------

FaultySysOps::FaultySysOps(SysFaultPlan plan, SysOps* inner)
    : plan_(plan),
      inner_(inner != nullptr ? *inner : real_sys_ops()),
      rng_(plan.seed) {}

void FaultySysOps::begin_op() {
  log_.ops++;
  if (plan_.burst_period > 0 && plan_.burst_len > 0 &&
      op_index_ % plan_.burst_period == 0) {
    burst_left_ = plan_.burst_len;
  }
  op_index_++;
  in_burst_ = burst_left_ > 0;
  if (in_burst_) {
    burst_left_--;
    log_.burst_ops++;
  }
}

bool FaultySysOps::roll(double p) {
  if (p <= 0.0) return false;
  const double eff = in_burst_ ? std::min(1.0, p * plan_.burst_boost) : p;
  return rng_.uniform() < eff;
}

std::size_t FaultySysOps::shorten(std::size_t n) {
  const std::size_t cap = std::min(n - 1, kShortChunk);
  return 1 + static_cast<std::size_t>(rng_.below(cap));
}

ssize_t FaultySysOps::read(int fd, void* buf, std::size_t n) {
  if (enabled_) {
    begin_op();
    if (is_storage(fd)) {
      if (roll(plan_.storage_eio_p)) {
        log_.storage_eio++;
        errno = EIO;
        return -1;
      }
    } else {
      if (roll(plan_.eintr_p)) {
        log_.eintr++;
        errno = EINTR;
        return -1;
      }
      if (roll(plan_.eagain_p)) {
        log_.spurious_eagain++;
        errno = EAGAIN;
        return -1;
      }
      if (n > 1 && roll(plan_.short_read_p)) {
        log_.short_reads++;
        n = shorten(n);
      }
    }
  }
  return inner_.read(fd, buf, n);
}

ssize_t FaultySysOps::write(int fd, const void* buf, std::size_t n) {
  if (enabled_) {
    begin_op();
    if (is_storage(fd)) {
      if (roll(plan_.write_enospc_p)) {
        log_.write_enospc++;
        errno = ENOSPC;
        return -1;
      }
      if (roll(plan_.storage_eio_p)) {
        log_.storage_eio++;
        errno = EIO;
        return -1;
      }
    } else {
      if (roll(plan_.eintr_p)) {
        log_.eintr++;
        errno = EINTR;
        return -1;
      }
      if (roll(plan_.eagain_p)) {
        log_.spurious_eagain++;
        errno = EAGAIN;
        return -1;
      }
      if (n > 1 && roll(plan_.short_write_p)) {
        log_.short_writes++;
        n = shorten(n);
      }
    }
  }
  return inner_.write(fd, buf, n);
}

ssize_t FaultySysOps::recv(int fd, void* buf, std::size_t n, int flags) {
  if (enabled_) {
    begin_op();
    if (roll(plan_.eintr_p)) {
      log_.eintr++;
      errno = EINTR;
      return -1;
    }
    if (roll(plan_.eagain_p)) {
      log_.spurious_eagain++;
      errno = EAGAIN;
      return -1;
    }
    if (roll(plan_.conn_reset_p)) {
      log_.conn_resets++;
      errno = ECONNRESET;
      return -1;
    }
    if (n > 1 && roll(plan_.short_read_p)) {
      log_.short_reads++;
      n = shorten(n);
    }
  }
  return inner_.recv(fd, buf, n, flags);
}

ssize_t FaultySysOps::send(int fd, const void* buf, std::size_t n, int flags) {
  if (enabled_) {
    begin_op();
    if (roll(plan_.eintr_p)) {
      log_.eintr++;
      errno = EINTR;
      return -1;
    }
    if (roll(plan_.eagain_p)) {
      log_.spurious_eagain++;
      errno = EAGAIN;
      return -1;
    }
    if (roll(plan_.conn_reset_p)) {
      log_.conn_resets++;
      errno = ECONNRESET;
      return -1;
    }
    if (n > 1 && roll(plan_.short_write_p)) {
      log_.short_writes++;
      n = shorten(n);
    }
  }
  return inner_.send(fd, buf, n, flags);
}

int FaultySysOps::accept(int fd, sockaddr* addr, socklen_t* len) {
  if (enabled_) {
    begin_op();
    if (roll(plan_.eintr_p)) {
      log_.eintr++;
      errno = EINTR;
      return -1;
    }
    if (roll(plan_.accept_emfile_p)) {
      log_.accept_emfile++;
      errno = EMFILE;
      return -1;
    }
  }
  return inner_.accept(fd, addr, len);
}

int FaultySysOps::poll_wait(pollfd* fds, nfds_t nfds, int timeout_ms) {
  if (enabled_) {
    begin_op();
    if (roll(plan_.eintr_p)) {
      log_.eintr++;
      errno = EINTR;
      return -1;
    }
    if (roll(plan_.delayed_ready_p)) {
      // Delayed readiness: wait briefly (so an injected delay cannot turn
      // a sleeping loop into a hot spin), then report nothing ready.
      // Level-triggered callers re-poll and see the events next round.
      log_.delayed_ready++;
      (void)inner_.poll_wait(fds, nfds, std::min(timeout_ms, 1));
      for (nfds_t i = 0; i < nfds; ++i) fds[i].revents = 0;
      return 0;
    }
  }
  return inner_.poll_wait(fds, nfds, timeout_ms);
}

#if UNCHARTED_SYSFAULT_HAVE_EPOLL
int FaultySysOps::epoll_wait(int epfd, epoll_event* events, int maxevents,
                             int timeout_ms) {
  if (enabled_) {
    begin_op();
    if (roll(plan_.eintr_p)) {
      log_.eintr++;
      errno = EINTR;
      return -1;
    }
    if (roll(plan_.delayed_ready_p)) {
      log_.delayed_ready++;
      (void)inner_.epoll_wait(epfd, events, maxevents, std::min(timeout_ms, 1));
      return 0;
    }
  }
  return inner_.epoll_wait(epfd, events, maxevents, timeout_ms);
}
#endif

int FaultySysOps::open(const char* path, int flags, unsigned mode) {
  if (enabled_) {
    begin_op();
    if (roll(plan_.open_fail_p)) {
      log_.open_failures++;
      errno = ENOSPC;
      return -1;
    }
  }
  const int fd = inner_.open(path, flags, mode);
  if (fd >= 0) storage_fds_.insert(fd);
  return fd;
}

int FaultySysOps::close(int fd) {
  // Close is never faulted: injecting EINTR here would leak fds (POSIX
  // leaves the fd state unspecified) — not a failure mode worth modelling.
  storage_fds_.erase(fd);
  return inner_.close(fd);
}

int FaultySysOps::fsync(int fd) {
  if (enabled_) {
    begin_op();
    if (roll(plan_.fsync_fail_p)) {
      log_.fsync_failures++;
      errno = EIO;
      return -1;
    }
  }
  return inner_.fsync(fd);
}

int FaultySysOps::rename(const char* from, const char* to) {
  if (enabled_) {
    begin_op();
    if (roll(plan_.rename_fail_p)) {
      // A failed rename leaves BOTH names as they were (the torn shape the
      // checkpoint rotation must survive: tmp present, primary stale).
      log_.rename_failures++;
      errno = EIO;
      return -1;
    }
  }
  return inner_.rename(from, to);
}

// ---------------------------------------------------------------------------
// Retry helpers
// ---------------------------------------------------------------------------

bool fd_exhausted(int err) {
  return err == EMFILE || err == ENFILE || err == ENOBUFS || err == ENOMEM;
}

IoResult retry_read(SysOps& sys, int fd, void* buf, std::size_t n) {
  for (int tries = 0; tries < kMaxEintrRetries; ++tries) {
    const ssize_t r = sys.read(fd, buf, n);
    if (r > 0) return {IoStatus::kOk, static_cast<std::size_t>(r), 0};
    if (r == 0) return {IoStatus::kEof, 0, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0, 0};
    }
    return {IoStatus::kError, 0, errno};
  }
  return {IoStatus::kWouldBlock, 0, 0};
}

IoResult retry_write(SysOps& sys, int fd, const void* buf, std::size_t n) {
  for (int tries = 0; tries < kMaxEintrRetries; ++tries) {
    const ssize_t r = sys.write(fd, buf, n);
    if (r > 0 || n == 0) return {IoStatus::kOk, static_cast<std::size_t>(r), 0};
    // A zero-byte transfer of a nonzero request would loop callers that
    // retry until `bytes` advances: classify as would-block instead.
    if (r == 0) return {IoStatus::kWouldBlock, 0, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0, 0};
    }
    return {IoStatus::kError, 0, errno};
  }
  return {IoStatus::kWouldBlock, 0, 0};
}

IoResult retry_recv(SysOps& sys, int fd, void* buf, std::size_t n, int flags) {
  for (int tries = 0; tries < kMaxEintrRetries; ++tries) {
    const ssize_t r = sys.recv(fd, buf, n, flags);
    if (r > 0) return {IoStatus::kOk, static_cast<std::size_t>(r), 0};
    if (r == 0) return {IoStatus::kEof, 0, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0, 0};
    }
    return {IoStatus::kError, 0, errno};
  }
  return {IoStatus::kWouldBlock, 0, 0};
}

IoResult retry_send(SysOps& sys, int fd, const void* buf, std::size_t n,
                    int flags) {
  for (int tries = 0; tries < kMaxEintrRetries; ++tries) {
    const ssize_t r = sys.send(fd, buf, n, flags);
    if (r > 0 || n == 0) return {IoStatus::kOk, static_cast<std::size_t>(r), 0};
    if (r == 0) return {IoStatus::kWouldBlock, 0, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0, 0};
    }
    return {IoStatus::kError, 0, errno};
  }
  return {IoStatus::kWouldBlock, 0, 0};
}

AcceptResult retry_accept(SysOps& sys, int fd, sockaddr* addr, socklen_t* len) {
  for (int tries = 0; tries < kMaxEintrRetries; ++tries) {
    const int r = sys.accept(fd, addr, len);
    if (r >= 0) return {r, IoStatus::kOk, 0};
    if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {-1, IoStatus::kWouldBlock, 0};
    }
    return {-1, IoStatus::kError, errno};
  }
  return {-1, IoStatus::kWouldBlock, 0};
}

}  // namespace uncharted::faultinject
