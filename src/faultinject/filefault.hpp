// Fault-injecting net::FileOps: the mmap reader's chaos adapter.
//
// net::PcapMapping reads files through the net-level FileOps seam because
// the include-layering DAG forbids net from depending on this module. The
// adapter closes the loop from this side: it implements FileOps over a
// faultinject::SysOps (so open/read/close inherit the SysFaultPlan's
// storage faults) and adds the one fault class SysOps cannot express —
// mmap itself failing — which forces PcapMapping onto its read fallback.
// The mmap-vs-read parity tests drive both paths through identical
// captures with this.
#pragma once

#include "faultinject/sysfault.hpp"
#include "net/mapping.hpp"

namespace uncharted::faultinject {

class FaultyFileOps final : public net::FileOps {
 public:
  /// Routes syscalls through `sys` (the real kernel when null).
  explicit FaultyFileOps(SysOps* sys = nullptr)
      : sys_(sys != nullptr ? *sys : real_sys_ops()) {}

  /// When set, map_ro fails unconditionally: every open falls back to the
  /// read path, exactly as on a filesystem without mmap support.
  void set_fail_mmap(bool fail) { fail_mmap_ = fail; }
  bool fail_mmap() const { return fail_mmap_; }

  /// How many map_ro attempts were refused.
  std::uint64_t mmap_failures() const { return mmap_failures_; }

  int open_ro(const char* path) override {
    return sys_.open(path, 0 /*O_RDONLY*/, 0);
  }
  long long size(int fd) override { return net::real_file_ops().size(fd); }
  void* map_ro(std::size_t len, int fd) override {
    if (fail_mmap_) {
      ++mmap_failures_;
      return nullptr;
    }
    return net::real_file_ops().map_ro(len, fd);
  }
  int unmap(void* addr, std::size_t len) override {
    return net::real_file_ops().unmap(addr, len);
  }
  ssize_t read(int fd, void* buf, std::size_t n) override {
    return sys_.read(fd, buf, n);
  }
  int close(int fd) override { return sys_.close(fd); }

 private:
  SysOps& sys_;
  bool fail_mmap_ = false;
  std::uint64_t mmap_failures_ = 0;
};

}  // namespace uncharted::faultinject
