#include "exec/pool.hpp"

#include <algorithm>

namespace uncharted::exec {

namespace {

/// Set while a Pool worker (or a helper inside try_help) is on the call
/// stack; submit() from such a thread must never block on the bound.
thread_local int tls_worker_depth = 0;

}  // namespace

unsigned Pool::default_threads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

Pool::Pool(unsigned threads, std::size_t queue_bound)
    : queue_bound_(std::max<std::size_t>(1, queue_bound)) {
  unsigned count = threads > 0 ? threads : default_threads();
  queues_.reserve(count);
  for (unsigned i = 0; i < count; ++i) queues_.push_back(std::make_unique<Queue>());
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

Pool::~Pool() {
  {
    std::lock_guard<std::mutex> lk(wake_m_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  space_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool Pool::on_worker_thread() { return tls_worker_depth > 0; }

void Pool::submit(std::function<void()> task) {
  std::size_t target;
  {
    std::unique_lock<std::mutex> lk(wake_m_);
    if (!on_worker_thread()) {
      space_cv_.wait(lk, [&] { return pending_ < queue_bound_ || stop_; });
    }
    ++pending_;
    target = next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
  }
  {
    std::lock_guard<std::mutex> qlk(queues_[target]->m);
    queues_[target]->tasks.push_back(std::move(task));
  }
  wake_cv_.notify_one();
}

bool Pool::pop_or_steal(std::size_t home, std::function<void()>& out) {
  const std::size_t n = queues_.size();
  for (std::size_t i = 0; i < n; ++i) {
    Queue& q = *queues_[(home + i) % n];
    std::lock_guard<std::mutex> qlk(q.m);
    if (q.tasks.empty()) continue;
    if (i == 0) {
      // Own queue: LIFO for locality.
      out = std::move(q.tasks.back());
      q.tasks.pop_back();
    } else {
      // Steal from the front — the oldest task, classic work stealing.
      out = std::move(q.tasks.front());
      q.tasks.pop_front();
    }
    return true;
  }
  return false;
}

bool Pool::try_help() {
  std::function<void()> task;
  if (!pop_or_steal(0, task)) return false;
  {
    std::lock_guard<std::mutex> lk(wake_m_);
    --pending_;
  }
  space_cv_.notify_one();
  ++tls_worker_depth;
  try {
    task();
  } catch (...) {
    --tls_worker_depth;
    throw;  // TaskGroup wrappers catch; a bare submit() task must not throw
  }
  --tls_worker_depth;
  return true;
}

void Pool::worker_loop(std::size_t index) {
  ++tls_worker_depth;
  for (;;) {
    std::function<void()> task;
    if (pop_or_steal(index, task)) {
      {
        std::lock_guard<std::mutex> lk(wake_m_);
        --pending_;
      }
      space_cv_.notify_one();
      task();
      continue;
    }
    std::unique_lock<std::mutex> lk(wake_m_);
    if (stop_) break;
    wake_cv_.wait(lk, [&] { return pending_ > 0 || stop_; });
    if (stop_) break;
  }
  --tls_worker_depth;
}

TaskGroup::~TaskGroup() {
  // A group abandoned with tasks in flight would leave them writing into
  // freed state; waiting here is the least-bad failure mode. Exceptions
  // stay captured (destructors must not throw).
  std::unique_lock<std::mutex> lk(m_);
  while (outstanding_ > 0) {
    if (pool_) {
      lk.unlock();
      if (!pool_->try_help()) std::this_thread::yield();
      lk.lock();
    } else {
      cv_.wait(lk, [&] { return outstanding_ == 0; });
    }
  }
}

void TaskGroup::finish_one(std::exception_ptr error) {
  std::lock_guard<std::mutex> lk(m_);
  if (error && !first_error_) first_error_ = error;
  --outstanding_;
  if (outstanding_ == 0) cv_.notify_all();
}

void TaskGroup::run(std::function<void()> task) {
  if (!pool_) {
    task();  // inline: exceptions propagate directly, like plain code
    return;
  }
  {
    std::lock_guard<std::mutex> lk(m_);
    ++outstanding_;
  }
  pool_->submit([this, task = std::move(task)] {
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    finish_one(error);
  });
}

void TaskGroup::wait() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(m_);
      if (outstanding_ == 0) break;
    }
    // Help: run pool tasks instead of sleeping, so nested fan-out from
    // inside a task can never starve itself of workers.
    if (pool_ && pool_->try_help()) continue;
    std::unique_lock<std::mutex> lk(m_);
    if (outstanding_ == 0) break;
    cv_.wait_for(lk, std::chrono::milliseconds(1),
                 [&] { return outstanding_ == 0; });
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lk(m_);
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void parallel_for(Pool* pool, std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);
  if (!pool || n <= grain) {
    for (std::size_t begin = 0; begin < n; begin += grain) {
      body(begin, std::min(n, begin + grain));
    }
    return;
  }
  TaskGroup group(pool);
  for (std::size_t begin = 0; begin < n; begin += grain) {
    std::size_t end = std::min(n, begin + grain);
    group.run([&body, begin, end] { body(begin, end); });
  }
  group.wait();
}

}  // namespace uncharted::exec
