// Work-stealing thread pool for the flow-sharded analysis pipeline.
//
// Design constraints, in order:
//   1. Determinism stays upstream: the pool never decides *what* work
//      produces — callers partition work so that results are independent
//      of execution order (flow-affine shards, fixed-grain reductions).
//      The pool only decides *where* and *when* chunks run.
//   2. No deadlock under nesting: TaskGroup::wait() helps — a thread
//      blocked on a group executes pending pool tasks instead of
//      sleeping, so a task may itself fan out through the same pool.
//   3. Exceptions propagate: the first exception thrown by any task in a
//      group is captured and rethrown from wait() on the waiting thread.
//   4. Bounded: external submitters block once the backlog exceeds the
//      queue bound (backpressure); worker threads never block on submit.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace uncharted::exec {

class Pool {
 public:
  /// `threads` worker threads; 0 means default_threads(). A pool with one
  /// worker is still a real pool (tasks run off the calling thread).
  explicit Pool(unsigned threads = 0, std::size_t queue_bound = 16384);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// max(1, hardware_concurrency) — the `--threads 0` resolution.
  static unsigned default_threads();

  unsigned worker_count() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a task. Blocks (external threads only) while the backlog is
  /// at the bound; worker threads enqueue without blocking so helping and
  /// nested fan-out can never self-deadlock.
  void submit(std::function<void()> task);

  /// Runs one pending task on the calling thread, if any. Used by
  /// TaskGroup::wait() to help instead of sleeping. Returns false when no
  /// task was available.
  bool try_help();

 private:
  struct Queue {
    std::mutex m;
    std::deque<std::function<void()>> tasks;
  };

  bool pop_or_steal(std::size_t home, std::function<void()>& out);
  void worker_loop(std::size_t index);
  static bool on_worker_thread();

  std::vector<std::unique_ptr<Queue>> queues_;  ///< one per worker
  std::vector<std::thread> workers_;
  std::mutex wake_m_;
  std::condition_variable wake_cv_;    ///< workers sleep here
  std::condition_variable space_cv_;   ///< external submitters block here
  std::size_t pending_ = 0;            ///< tasks enqueued, not yet started
  std::size_t queue_bound_;
  std::size_t next_queue_ = 0;         ///< round-robin submit target
  bool stop_ = false;
};

/// A joinable set of tasks with exception propagation. `run` submits to
/// the pool (or executes inline when constructed with no pool — the
/// sequential code path is the same code). `wait` blocks until every task
/// finished, helping the pool meanwhile, then rethrows the first captured
/// exception.
class TaskGroup {
 public:
  explicit TaskGroup(Pool* pool) : pool_(pool) {}
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void run(std::function<void()> task);
  void wait();

 private:
  void finish_one(std::exception_ptr error);

  Pool* pool_;
  std::mutex m_;
  std::condition_variable cv_;
  std::size_t outstanding_ = 0;
  std::exception_ptr first_error_;
};

/// Splits [0, n) into chunks of exactly `grain` (last one shorter) and
/// runs `body(begin, end)` over each — on the pool when one is given, or
/// inline in chunk order otherwise. Chunk boundaries depend only on `n`
/// and `grain`, never on the worker count, so a body that accumulates
/// per-chunk partials combined in chunk order yields bit-identical results
/// at every thread count, including 1.
void parallel_for(Pool* pool, std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace uncharted::exec
