// The Fig-6 network: 4 control servers (C1-C4), 27 substations (S1-S27),
// 58 outstations (O1-O58), and the per-outstation behaviours the paper
// reports. Everything the paper states explicitly is encoded verbatim
// (Table 2 adds/removes, the §6.1 non-compliant devices, the (1,1)
// reset-backup connections, the C2-O30 T3 misconfiguration, the C4-O22
// test traffic, S10's 14 redundant RTUs, the Type 5/6 singletons). Details
// the paper leaves unstated (exact IOA counts, which substations host which
// outstations beyond the named ones) are invented deterministically so that
// the published aggregates hold: 49 outstations visible in Y1, 51 in Y2,
// 14 outstations / 7 substations unchanged, ~34% pure-backup RTUs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/headers.hpp"
#include "power/measurement.hpp"

namespace uncharted::sim {

/// Which redundant server pair serves an outstation.
enum class ServerPair {
  kC1C2,  ///< primary C1, backup C2
  kC3C4,  ///< primary C3, backup C4
};

/// Outstation communication behaviour (paper Table 6 types 1-6 plus the
/// Fig 17 extensions: 7 = reset-backup, 8 = switchover with I100).
enum class OutstationType {
  kType1_PrimaryOnly = 1,     ///< I-format to primary, no backup connection
  kType2_Ideal = 2,           ///< I-format + proper U16/U32 backup
  kType3_BackupOnly = 3,      ///< redundant RTU: keep-alives only
  kType4_BothServersI = 4,    ///< I-format only, switched servers between captures
  kType5_StaleSpontaneous = 5,///< spontaneous-only with large thresholds (T3 kicks in)
  kType6_RejectBackupWithI = 6, ///< I to active server, backup SYN rejected
  kType7_ResetBackup = 7,     ///< backup connection reset: the (1,1) Markov point
  kType8_Switchover = 8,      ///< observed switchover: U16/U32 then STARTDT + I100
};

/// How the outstation mishandles backup connection attempts (Fig 9 / §6.2).
enum class BackupRejectMode {
  kNone,          ///< accepts the backup connection (standard behaviour)
  kRstReject,     ///< answers the server's SYN with RST (sub-second flows)
  kSilentIgnore,  ///< never answers the SYN (SYN-only "long-lived" flows)
  kAcceptThenReset, ///< completes handshake, ignores U16, resets after a while
};

/// One telemetry point an outstation reports.
struct SignalSpec {
  std::uint32_t ioa = 0;
  power::PhysicalSymbol symbol = power::PhysicalSymbol::kOther;
  std::uint8_t type_id = 13;     ///< ASDU typeID used to report it
  double period_s = 0.0;         ///< periodic reporting interval; 0 = spontaneous
  double threshold = 0.0;        ///< spontaneous reporting threshold
  double scale = 1.0;            ///< multiplier applied to the physical source
  int source = -1;               ///< generator index in the grid; -1 = area value
};

struct OutstationSpec {
  int id = 0;  ///< 1..58 -> "O<id>"
  int substation = 0;  ///< 1..27 -> "S<substation>"
  ServerPair pair = ServerPair::kC1C2;
  bool in_y1 = true;
  bool in_y2 = true;
  OutstationType type = OutstationType::kType2_Ideal;
  BackupRejectMode reject_mode = BackupRejectMode::kNone;
  /// Non-standard encodings (§6.1): 1-octet COT (O53/O58/O28), 2-octet IOA (O37).
  bool legacy_cot = false;
  bool legacy_ioa = false;
  /// T3 override on the secondary connection (seconds); the paper's C2-O30
  /// outlier used ~430 s instead of ~30 s.
  std::optional<double> secondary_t3_s;
  int ioa_count_y1 = 0;
  int ioa_count_y2 = 0;
  bool agc_generator = false;  ///< receives I50 AGC set points
  net::Ipv4Addr ip;
  std::vector<SignalSpec> signals;  ///< filled by build_signals()

  std::string name() const { return "O" + std::to_string(id); }
  std::string substation_name() const { return "S" + std::to_string(substation); }
  int ioa_count(bool year2) const { return year2 ? ioa_count_y2 : ioa_count_y1; }
};

struct SubstationSpec {
  int id = 0;
  bool has_generator = true;
  bool in_y1 = true;
  bool in_y2 = true;

  std::string name() const { return "S" + std::to_string(id); }
};

struct ControlServerSpec {
  std::string name;  ///< "C1".."C4"
  net::Ipv4Addr ip;
};

/// The complete network description.
struct Topology {
  std::vector<ControlServerSpec> servers;  ///< C1..C4
  std::vector<SubstationSpec> substations;
  std::vector<OutstationSpec> outstations;

  /// Builds the paper's topology (Fig 6 + Table 2).
  static Topology paper_topology();

  const OutstationSpec* find_outstation(int id) const;
  const ControlServerSpec& primary_server(const OutstationSpec& o) const;
  const ControlServerSpec& backup_server(const OutstationSpec& o) const;

  /// Outstations visible in the given year's capture.
  std::vector<const OutstationSpec*> outstations_in_year(bool year2) const;
};

}  // namespace uncharted::sim
