#include "sim/signals.hpp"

#include <algorithm>
#include <array>

namespace uncharted::sim {

namespace {
using power::PhysicalSymbol;

template <std::size_t N>
bool contains(const std::array<int, N>& set, int id) {
  return std::find(set.begin(), set.end(), id) != set.end();
}

// Station sets (invented, sized to Table 8's station counts; Y2-only
// stations keep the Y1 counts roughly stable since others leave).
constexpr std::array<int, 13> kI36Stations = {1, 4, 10, 12, 14, 17, 19, 25, 31, 34, 43, 50, 53};
constexpr std::array<int, 20> kI13Stations = {1,  2,  4,  5,  8,  10, 12, 14, 17, 19,
                                              25, 26, 31, 34, 39, 44, 45, 52, 54, 55};
constexpr std::array<int, 6> kI3Stations = {1, 10, 25, 31, 34, 43};
constexpr std::array<int, 4> kI31Stations = {1, 10, 31, 50};
constexpr std::array<int, 3> kI1Stations = {4, 12, 26};
constexpr std::array<int, 3> kClockSyncStations = {1, 10, 31};
constexpr std::array<int, 2> kEndOfInitStations = {17, 19};
}  // namespace

bool station_reports_i36(int id) { return contains(kI36Stations, id); }
bool station_reports_i13(int id) { return contains(kI13Stations, id); }
bool station_reports_i3(int id) { return contains(kI3Stations, id); }
bool station_reports_i31(int id) { return contains(kI31Stations, id); }
bool station_reports_i1(int id) { return contains(kI1Stations, id); }
bool station_gets_clock_sync(int id) { return contains(kClockSyncStations, id); }
bool station_sends_end_of_init(int id) { return contains(kEndOfInitStations, id); }

std::vector<SignalSpec> build_signals(const OutstationSpec& os, bool year2) {
  std::vector<SignalSpec> signals;

  // Keep-alive-only RTUs report nothing.
  if (os.type == OutstationType::kType3_BackupOnly ||
      os.type == OutstationType::kType7_ResetBackup) {
    return signals;
  }

  int total = os.ioa_count(year2);
  std::uint32_t next_ioa = 1001 + static_cast<std::uint32_t>(os.id) * 100;
  auto ioa = [&]() { return next_ioa++; };

  const std::array<PhysicalSymbol, 5> kRotation = {
      PhysicalSymbol::kActivePower, PhysicalSymbol::kReactivePower,
      PhysicalSymbol::kVoltage, PhysicalSymbol::kCurrent, PhysicalSymbol::kFrequency};

  // Thresholds per symbol: small enough that normal noise reports every few
  // samples. Type 5 uses huge thresholds (the paper's stale-data RTU).
  auto threshold_for = [&](PhysicalSymbol s) {
    double scale = os.type == OutstationType::kType5_StaleSpontaneous ? 60.0 : 1.0;
    switch (s) {
      case PhysicalSymbol::kActivePower: return 0.12 * scale;
      case PhysicalSymbol::kReactivePower: return 0.08 * scale;
      case PhysicalSymbol::kVoltage: return 0.06 * scale;
      case PhysicalSymbol::kCurrent: return 0.0015 * scale;
      case PhysicalSymbol::kFrequency: return 0.0006 * scale;
      default: return 1.0;
    }
  };

  int produced = 0;
  // I36 stations: spontaneous, time-tagged floats (the dominant type).
  if (station_reports_i36(os.id)) {
    int n = std::min(total - produced, (2 * total) / 3);
    for (int i = 0; i < n; ++i) {
      PhysicalSymbol sym = kRotation[static_cast<std::size_t>(i) % kRotation.size()];
      SignalSpec s;
      s.ioa = ioa();
      s.symbol = sym;
      s.type_id = 36;
      s.period_s = 0.0;
      s.threshold = threshold_for(sym);
      signals.push_back(s);
      ++produced;
    }
  }

  // I13 stations: periodic short floats (no time tag). The Type 5 station
  // reports everything spontaneously instead (with its huge thresholds), so
  // long idle gaps force in-band TESTFR keep-alives.
  if (os.type == OutstationType::kType5_StaleSpontaneous) {
    while (produced < total) {
      PhysicalSymbol sym = kRotation[static_cast<std::size_t>(produced) % kRotation.size()];
      SignalSpec s;
      s.ioa = ioa();
      s.symbol = sym;
      s.type_id = 13;
      s.period_s = 0.0;
      s.threshold = threshold_for(sym);
      signals.push_back(s);
      ++produced;
    }
    return signals;
  }
  if (station_reports_i13(os.id)) {
    int n = std::max(2, (total - produced) * 3 / 4);
    n = std::min(n, total - produced);
    for (int i = 0; i < n; ++i) {
      PhysicalSymbol sym = kRotation[static_cast<std::size_t>(i + 2) % kRotation.size()];
      SignalSpec s;
      s.ioa = ioa();
      s.symbol = sym;
      s.type_id = 13;
      s.period_s = 8.0;
      signals.push_back(s);
      ++produced;
    }
  }

  // Status points (breaker / disconnector positions).
  if (station_reports_i3(os.id) && produced < total) {
    SignalSpec s;
    s.ioa = ioa();
    s.symbol = PhysicalSymbol::kStatus;
    s.type_id = 3;
    s.period_s = 60.0;  // periodic status refresh
    signals.push_back(s);
    ++produced;
  }
  if (station_reports_i31(os.id) && produced < total) {
    SignalSpec s;
    s.ioa = ioa();
    s.symbol = PhysicalSymbol::kStatus;
    s.type_id = 31;  // spontaneous, time-tagged breaker change
    s.period_s = 0.0;
    s.threshold = 0.5;
    signals.push_back(s);
    ++produced;
  }
  if (station_reports_i1(os.id) && produced < total) {
    SignalSpec s;
    s.ioa = ioa();
    s.symbol = PhysicalSymbol::kStatus;
    s.type_id = 1;
    s.period_s = 240.0;
    signals.push_back(s);
    ++produced;
  }

  // Singleton stations for the rare monitor types (Table 8 count = 1 each).
  if (os.id == 31 && produced < total) {  // I30: time-tagged single point
    SignalSpec s;
    s.ioa = ioa();
    s.symbol = PhysicalSymbol::kStatus;
    s.type_id = 30;
    s.period_s = 0.0;
    s.threshold = 0.5;
    signals.push_back(s);
    ++produced;
  }
  if (os.id == 34 && produced < total) {  // I5: transformer tap position
    SignalSpec s;
    s.ioa = ioa();
    s.symbol = PhysicalSymbol::kOther;
    s.type_id = 5;
    s.period_s = 60.0;
    signals.push_back(s);
    ++produced;
  }
  if (os.id == 37) {  // I9: normalized values — the legacy-IOA device
    int n = std::max(2, (total - produced) / 3);
    for (int i = 0; i < n && produced < total; ++i) {
      PhysicalSymbol sym = kRotation[static_cast<std::size_t>(i) % kRotation.size()];
      SignalSpec s;
      s.ioa = ioa();
      s.symbol = sym;
      s.type_id = 9;
      s.period_s = 4.0;
      signals.push_back(s);
      ++produced;
    }
  }
  if (os.id == 43 && produced < total) {  // I7: bitstring of alarm flags
    SignalSpec s;
    s.ioa = ioa();
    s.symbol = PhysicalSymbol::kOther;
    s.type_id = 7;
    s.period_s = 180.0;
    signals.push_back(s);
    ++produced;
  }

  // Fill any remaining IOAs with slow periodic floats so the cloud size in
  // Fig 6 (total IOAs) matches the ground truth counts.
  while (produced < total) {
    PhysicalSymbol sym = kRotation[static_cast<std::size_t>(produced) % kRotation.size()];
    SignalSpec s;
    s.ioa = ioa();
    s.symbol = sym;
    s.type_id = station_reports_i36(os.id) ? std::uint8_t{36} : std::uint8_t{13};
    s.period_s = station_reports_i36(os.id) ? 0.0 : 20.0;
    s.threshold = s.period_s == 0.0 ? threshold_for(sym) : 0.0;
    signals.push_back(s);
    ++produced;
  }

  return signals;
}

}  // namespace uncharted::sim
