#include "sim/fleet.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "iec104/constants.hpp"
#include "net/frame.hpp"
#include "sim/hostile.hpp"
#include "util/rng.hpp"

namespace uncharted::sim {

namespace {

constexpr std::size_t kEthIpMin = 34;     // Ethernet + minimal IPv4 header
constexpr std::size_t kSrcAddrOff = 26;   // IPv4 source address
constexpr std::size_t kDstAddrOff = 30;
constexpr std::size_t kIpCksumOff = 24;

/// Clones per first-octet band: second octets in the capture are small
/// (0/1 for the fleet, 9 for injected attackers), so a stride of 10 keeps
/// every clone's three octet values distinct within one band.
constexpr std::size_t kClonesPerBand = 24;
constexpr std::uint8_t kFirstCloneOctet = 11;  // original capture is 10.x

std::uint16_t word_at(const std::vector<std::uint8_t>& f, std::size_t off) {
  return static_cast<std::uint16_t>((f[off] << 8) | f[off + 1]);
}

void put_word(std::vector<std::uint8_t>& f, std::size_t off, std::uint16_t w) {
  f[off] = static_cast<std::uint8_t>(w >> 8);
  f[off + 1] = static_cast<std::uint8_t>(w & 0xFF);
}

/// RFC 1624 incremental checksum update: HC' = ~(~HC + ~m + m').
std::uint16_t cksum_adjust(std::uint16_t cksum, std::uint16_t old_word,
                           std::uint16_t new_word) {
  std::uint32_t sum = static_cast<std::uint16_t>(~cksum);
  sum += static_cast<std::uint16_t>(~old_word);
  sum += new_word;
  while (sum >> 16) sum = (sum & 0xFFFFu) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xFFFFu);
}

/// Re-addresses one IPv4/TCP frame into clone `c`'s neighborhood (first
/// and second octets of both addresses), repairing the IP header checksum
/// and the TCP checksum (whose pseudo-header covers the addresses)
/// incrementally. Returns false when the frame is not rewritable.
bool rewrite_clone(std::vector<std::uint8_t>& frame, std::size_t c) {
  if (frame.size() < kEthIpMin) return false;
  if (frame[12] != 0x08 || frame[13] != 0x00) return false;  // not IPv4
  const unsigned version = frame[14] >> 4;
  const unsigned ihl = frame[14] & 0x0Fu;
  if (version != 4 || ihl < 5) return false;
  if (frame[23] != 6) return false;  // only TCP checksums are repaired here
  const std::size_t tcp_cksum_off = 14 + static_cast<std::size_t>(ihl) * 4 + 16;
  if (frame.size() < tcp_cksum_off + 2) return false;

  const auto band = static_cast<std::uint8_t>(kFirstCloneOctet + (c - 1) / kClonesPerBand);
  const auto stride = static_cast<std::uint8_t>(10 * ((c - 1) % kClonesPerBand));
  for (std::size_t addr_off : {kSrcAddrOff, kDstAddrOff}) {
    const std::uint16_t old_word = word_at(frame, addr_off);
    const auto new_word = static_cast<std::uint16_t>(
        (band << 8) | ((frame[addr_off + 1] + stride) & 0xFF));
    if (new_word == old_word) continue;
    put_word(frame, addr_off, new_word);
    put_word(frame, kIpCksumOff,
             cksum_adjust(word_at(frame, kIpCksumOff), old_word, new_word));
    put_word(frame, tcp_cksum_off,
             cksum_adjust(word_at(frame, tcp_cksum_off), old_word, new_word));
  }
  return true;
}

}  // namespace

FleetScript build_fleet_script(const std::vector<net::CapturedPacket>& packets,
                               const FleetScriptConfig& config) {
  FleetScript script;

  // Partition by canonical endpoint pair (the shard dispatcher's key), in
  // first-appearance order; unreadable frames form one misc stream.
  using PairKey = std::pair<net::Ipv4Addr, net::Ipv4Addr>;
  std::map<PairKey, std::size_t> pair_index;
  std::vector<std::vector<net::CapturedPacket>> slices;
  std::vector<net::CapturedPacket> misc;
  for (const auto& pkt : packets) {
    auto pair = net::peek_ipv4_pair(pkt.data);
    if (!pair) {
      misc.push_back(pkt);
      continue;
    }
    PairKey key = pair->first < pair->second
                      ? PairKey{pair->first, pair->second}
                      : PairKey{pair->second, pair->first};
    auto [it, inserted] = pair_index.try_emplace(key, slices.size());
    if (inserted) slices.emplace_back();
    slices[it->second].push_back(pkt);
  }

  std::uint64_t next_id = 1;
  auto add_benign = [&](std::vector<net::CapturedPacket> frames) {
    netd::ReplayStream rs;
    rs.id = next_id++;
    rs.mode = netd::ReplayMode::kBenign;
    script.total_frames += frames.size();
    rs.frames = std::move(frames);
    script.streams.push_back(std::move(rs));
    script.benign_streams++;
  };

  const std::size_t clones = std::max<std::size_t>(config.clones, 1);
  for (std::size_t c = 0; c < clones; ++c) {
    for (const auto& slice : slices) {
      if (c == 0) {
        add_benign(slice);
        continue;
      }
      std::vector<net::CapturedPacket> cloned;
      cloned.reserve(slice.size());
      for (const auto& pkt : slice) {
        net::CapturedPacket copy = pkt;
        if (rewrite_clone(copy.data, c)) cloned.push_back(std::move(copy));
      }
      if (!cloned.empty()) add_benign(std::move(cloned));
    }
    if (c == 0 && !misc.empty()) add_benign(misc);
  }

  // Content-hostile streams: valid tapstream transport carrying HostilePeer
  // attack traffic from per-stream attacker addresses.
  const Timestamp base_ts =
      packets.empty() ? from_seconds(1.0) : packets.front().ts;
  for (std::size_t k = 0; k < config.hostile_content; ++k) {
    Rng rng(config.seed ^ (0xad7e5aULL + k));
    std::vector<net::CapturedPacket> frames;
    auto sink = [&frames](Timestamp ts, std::vector<std::uint8_t> frame) {
      net::CapturedPacket pkt;
      pkt.ts = ts;
      pkt.original_length = static_cast<std::uint32_t>(frame.size());
      pkt.data = std::move(frame);
      frames.push_back(std::move(pkt));
    };
    const auto third = static_cast<std::uint8_t>(1 + (k % 200));
    const auto fourth = static_cast<std::uint8_t>(9 + (k / 200));
    HostilePeer peer(net::Ipv4Addr::from_octets(10, 9, third, fourth),
                     Endpoint::make(net::Ipv4Addr::from_octets(10, 0, 2, 50),
                                    iec104::kIec104Port),
                     sink, &rng);
    peer.run_all(base_ts + from_seconds(1.0));
    std::stable_sort(frames.begin(), frames.end(),
                     [](const net::CapturedPacket& a, const net::CapturedPacket& b) {
                       return a.ts < b.ts;
                     });
    netd::ReplayStream rs;
    rs.id = next_id++;
    rs.mode = netd::ReplayMode::kBenign;  // transport-benign, payload-hostile
    script.total_frames += frames.size();
    rs.frames = std::move(frames);
    script.streams.push_back(std::move(rs));
    script.hostile_streams++;
  }

  // Transport-hostile streams: the FleetClient plays the abuse itself.
  for (std::size_t k = 0; k < config.garbage; ++k) {
    netd::ReplayStream rs;
    rs.id = next_id++;
    rs.mode = netd::ReplayMode::kGarbage;
    script.streams.push_back(std::move(rs));
    script.hostile_streams++;
  }
  for (std::size_t k = 0; k < config.slow_loris; ++k) {
    netd::ReplayStream rs;
    rs.id = next_id++;
    rs.mode = netd::ReplayMode::kSlowLoris;
    script.streams.push_back(std::move(rs));
    script.hostile_streams++;
  }
  return script;
}

}  // namespace uncharted::sim
