#include "sim/capture.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>

#include "iccp/iccp.hpp"
#include "iec104/apdu.hpp"
#include "iec104/constants.hpp"
#include "iec104/seq15.hpp"
#include "power/agc.hpp"
#include "power/grid.hpp"
#include "sim/scheduler.hpp"
#include "synchro/c37118.hpp"
#include "sim/signals.hpp"
#include "sim/tcp.hpp"
#include "util/rng.hpp"

namespace uncharted::sim {

namespace {

using iec104::Apdu;
using iec104::Asdu;
using iec104::Cause;
using iec104::CodecProfile;
using iec104::TypeId;
using iec104::UFunction;
using iec104::seq15_next;

// Capture start epochs: 2019-06-15 and 2020-06-13, 00:00 UTC.
constexpr Timestamp kY1Start = 1560556800ULL * kMicrosPerSecond;
constexpr Timestamp kY2Start = 1592006400ULL * kMicrosPerSecond;

constexpr double kSecondaryKeepAlivePeriod = 30.0;  ///< paper: ~30 s U16 cadence

/// Per-year tuning of the misbehaving-backup churn so the Table 3 flow
/// proportions come out with the paper's shape.
struct ChurnTuning {
  double rst_retry_s;         ///< interval between refused SYN attempts
  int accept_every_cycles;    ///< one accept-then-reset per this many refusals
  double silent_retry_s;      ///< interval between ignored SYN attempts
  double atr_cycle_s;         ///< accept-then-reset cycle length (type 6)
};

ChurnTuning tuning_for(bool year2) {
  // Y1: sub-second refusals dominate (99.8% of short-lived flows < 1 s) and
  // silent-ignored SYNs inflate the "long-lived" class to ~26%.
  // Y2: the silent-ignore outstations are gone and accept-then-reset cycles
  // are relatively more common (6.5% of short-lived flows > 1 s).
  if (!year2) return ChurnTuning{4.0, 300, 6.0, 240.0};
  return ChurnTuning{1.2, 40, 0.0, 30.0};
}

class CaptureBuilder {
 public:
  explicit CaptureBuilder(const CaptureConfig& config)
      : config_(config),
        topo_(Topology::paper_topology()),
        rng_(config.seed),
        start_(config.year2 ? kY2Start : kY1Start),
        end_(start_ + from_seconds(config.duration_s)),
        grid_(power::GridConfig{60.0, 5.0, 1.5, config.seed ^ 0x9e37ULL}) {}

  CaptureResult run();

 private:
  // ---- transport plumbing --------------------------------------------------

  struct Link {
    const OutstationSpec* os = nullptr;
    const ControlServerSpec* server = nullptr;
    std::unique_ptr<SimTcpConnection> conn;
    CodecProfile profile;
    std::uint16_t ns_ctl = 0;  ///< control server's N(S)
    std::uint16_t ns_out = 0;  ///< outstation's N(S)
    int unacked_from_out = 0;
    Timestamp last_apdu = 0;
    /// Next time the link may carry a frame. Independent scheduler events
    /// (periodic signals, spontaneous batches, AGC) emit onto the same TCP
    /// connection; serializing their synthetic timestamps keeps per-link
    /// frame times monotonic, as a real single connection would be.
    Timestamp busy_until = 0;
    bool started = false;
  };

  /// A station's view: signals, reporters, routing to the active link.
  struct Station {
    const OutstationSpec* os = nullptr;
    Link* primary = nullptr;
    Link* secondary = nullptr;
    std::vector<SignalSpec> signals;
    std::vector<power::SpontaneousReporter> reporters;  ///< parallel to signals
    std::optional<std::size_t> gen;
  };

  FrameSink sink() {
    return [this](Timestamp ts, std::vector<std::uint8_t> frame) {
      raw_frames_.push_back({ts, std::move(frame)});
    };
  }

  std::uint16_t ephemeral_port() {
    if (next_port_ < 49152) next_port_ = 49152;
    return next_port_++;
  }

  Link* make_link(const OutstationSpec& os, const ControlServerSpec& server) {
    auto link = std::make_unique<Link>();
    link->os = &os;
    link->server = &server;
    Endpoint client = Endpoint::make(server.ip, ephemeral_port());
    Endpoint srv = Endpoint::make(os.ip, iec104::kIec104Port);
    link->conn = std::make_unique<SimTcpConnection>(client, srv, sink(), &rng_);
    link->conn->set_retransmit_probability(config_.retransmit_probability);
    if (os.legacy_cot && os.legacy_ioa) {
      link->profile = CodecProfile::legacy_both();
    } else if (os.legacy_cot) {
      link->profile = CodecProfile::legacy_cot();
    } else if (os.legacy_ioa) {
      link->profile = CodecProfile::legacy_ioa();
    }
    links_.push_back(std::move(link));
    return links_.back().get();
  }

  Timestamp send_apdu(Link& link, Timestamp ts, bool from_ctl, const Apdu& apdu) {
    auto bytes = apdu.encode(link.profile);
    if (!bytes) return ts;  // cannot happen for well-formed builders
    ts = std::max(ts, link.busy_until);
    link.last_apdu = ts;
    Timestamp done = link.conn->send(ts, /*from_client=*/from_ctl, bytes.value());
    link.busy_until = done + 500;
    return done;
  }

  Timestamp send_u(Link& link, Timestamp ts, bool from_ctl, UFunction f) {
    return send_apdu(link, ts, from_ctl, Apdu::make_u(f));
  }

  Timestamp send_i_from_out(Link& link, Timestamp ts, Asdu asdu) {
    Apdu apdu = Apdu::make_i(link.ns_out, link.ns_ctl, std::move(asdu));
    link.ns_out = seq15_next(link.ns_out);
    ts = send_apdu(link, ts, /*from_ctl=*/false, apdu);
    if (++link.unacked_from_out >= 8) {
      ts += 2000 + rng_.below(4000);
      ts = send_apdu(link, ts, /*from_ctl=*/true, Apdu::make_s(link.ns_out));
      link.unacked_from_out = 0;
    }
    return ts;
  }

  Timestamp send_i_from_ctl(Link& link, Timestamp ts, Asdu asdu) {
    Apdu apdu = Apdu::make_i(link.ns_ctl, link.ns_out, std::move(asdu));
    link.ns_ctl = seq15_next(link.ns_ctl);
    return send_apdu(link, ts, /*from_ctl=*/true, apdu);
  }

  /// Opens the TCP connection and performs STARTDT (controlling side).
  Timestamp open_and_start(Link& link, Timestamp ts) {
    ts = link.conn->open(ts);
    ts += 20'000 + rng_.below(30'000);
    ts = send_u(link, ts, true, UFunction::kStartDtAct);
    ts += 10'000 + rng_.below(20'000);
    ts = send_u(link, ts, false, UFunction::kStartDtCon);
    link.started = true;
    link.last_apdu = ts;
    return ts;
  }

  // ---- ASDU builders -------------------------------------------------------

  Asdu measurement_asdu(const Station& st, const SignalSpec& sig, Cause cause,
                        double value, Timestamp ts) {
    Asdu asdu;
    asdu.type = static_cast<TypeId>(sig.type_id);
    asdu.cot.cause = cause;
    asdu.common_address = static_cast<std::uint16_t>(st.os->id);
    iec104::InformationObject obj;
    obj.ioa = sig.ioa;
    obj.value = element_for(sig, value);
    if (iec104::has_time_tag(asdu.type)) {
      obj.time = iec104::Cp56Time2a::from_timestamp(ts);
    }
    asdu.objects.push_back(std::move(obj));
    return asdu;
  }

  iec104::ElementValue element_for(const SignalSpec& sig, double value) {
    switch (sig.type_id) {
      case 1:
      case 30: {
        iec104::SinglePoint e;
        e.on = value > 0.5;
        return e;
      }
      case 3:
      case 31: {
        iec104::DoublePoint e;
        e.state = static_cast<std::uint8_t>(std::clamp(value, 0.0, 3.0));
        return e;
      }
      case 5: {
        iec104::StepPosition e;
        e.value = static_cast<std::int8_t>(std::clamp(value, -63.0, 63.0));
        return e;
      }
      case 7: {
        iec104::Bitstring32 e;
        e.bits = static_cast<std::uint32_t>(value);
        return e;
      }
      case 9:
      case 21:
      case 34: {
        iec104::NormalizedValue e;
        e.raw = iec104::NormalizedValue::to_raw(value / 1000.0);
        return e;
      }
      case 11:
      case 35: {
        iec104::ScaledValue e;
        e.value = static_cast<std::int16_t>(std::clamp(value, -32768.0, 32767.0));
        return e;
      }
      default: {  // 13, 36 and any other float reporting
        iec104::ShortFloat e;
        e.value = static_cast<float>(value);
        return e;
      }
    }
  }

  // ---- physical model ------------------------------------------------------

  void setup_grid() {
    double online_total = 0.0;
    for (const auto& os : topo_.outstations) {
      bool present = config_.year2 ? os.in_y2 : os.in_y1;
      if (!present) continue;
      const auto* sub = &topo_.substations[static_cast<std::size_t>(os.substation - 1)];
      bool reports = !build_signals(os, config_.year2).empty();
      if (!sub->has_generator || !reports) continue;

      power::GeneratorConfig cfg;
      cfg.name = os.name();
      cfg.capacity_mw = 60.0 + (os.id * 13) % 300;
      cfg.ramp_mw_per_s = 0.5 + (os.id % 5) * 0.2;
      cfg.nominal_voltage_kv = 130.0;
      cfg.agc_participant = os.agc_generator;

      bool starts_offline = config_.include_physical_events && os.id == 31 && !config_.year2;
      double initial = 0.55 * cfg.capacity_mw;
      grid_.add_generator(power::Generator(cfg, !starts_offline, initial));
      gen_index_[os.id] = grid_.generator_count() - 1;
      if (!starts_offline) online_total += initial;
    }

    // Loads balance initial generation; one small block is disconnectable
    // (the Fig 18 "unmet load" event).
    grid_.add_load(power::Load(power::LoadConfig{"base", online_total * 0.94, 0.004}));
    grid_.add_load(power::Load(power::LoadConfig{"event-block", online_total * 0.06, 0.01}));

    std::vector<std::size_t> participants;
    for (const auto& [id, idx] : gen_index_) {
      if (grid_.generator(idx).config().agc_participant) participants.push_back(idx);
    }
    double capacity = 0.0;
    for (const auto& [id, idx] : gen_index_) {
      capacity += grid_.generator(idx).config().capacity_mw;
    }
    power::AgcConfig agc_cfg;
    agc_cfg.cycle_seconds = 8.0;
    agc_cfg.frequency_bias_mw_per_tenth_hz = capacity / 100.0;
    agc_cfg.deadband_hz = 0.03;
    agc_cfg.min_command_delta_mw = 2.5;
    agc_ = power::AgcController(agc_cfg, participants);

    if (config_.include_physical_events) {
      double dur = config_.duration_s;
      double loss_at = 0.35 * dur;
      truth_.load_loss_at_s = loss_at;
      truth_.load_restore_at_s = loss_at + std::min(150.0, 0.15 * dur);
      grid_.schedule(loss_at, "load loss", [this] { grid_.load(1).disconnect(); });
      grid_.schedule(truth_.load_restore_at_s, "load restore",
                     [this] { grid_.load(1).reconnect(); });

      if (!config_.year2 && gen_index_.count(31)) {
        double online_at = 0.55 * dur;
        truth_.generator_online_at_s = online_at;
        truth_.generator_online_outstation = 31;
        std::size_t gi = gen_index_[31];
        grid_.schedule(online_at, "generator startup",
                       [this, gi] { grid_.generator(gi).begin_startup(); });
      }
    }
  }

  double sample_value(const Station& st, const SignalSpec& sig) {
    const power::Generator* gen =
        st.gen ? &grid_.generator(*st.gen) : nullptr;
    double noise = rng_.normal();
    switch (sig.symbol) {
      case power::PhysicalSymbol::kActivePower:
        return gen ? gen->output_mw() + 0.15 * noise : 40.0 + 0.5 * noise;
      case power::PhysicalSymbol::kReactivePower:
        return gen ? gen->reactive_mvar() + 0.1 * noise : 8.0 + 0.3 * noise;
      case power::PhysicalSymbol::kVoltage:
        return gen ? gen->terminal_voltage_kv() + 0.08 * noise : 228.0 + 0.3 * noise;
      case power::PhysicalSymbol::kCurrent:
        return gen ? gen->current_ka() + 0.002 * noise : 0.4 + 0.005 * noise;
      case power::PhysicalSymbol::kFrequency:
        return grid_.frequency_hz() + 0.0008 * noise;
      case power::PhysicalSymbol::kStatus:
        return gen ? static_cast<double>(gen->breaker()) : 2.0;
      case power::PhysicalSymbol::kSetpoint:
        return gen ? gen->setpoint() : 0.0;
      case power::PhysicalSymbol::kOther:
        return 5.0 + 0.1 * noise;
    }
    return 0.0;
  }

  // ---- behaviours ----------------------------------------------------------

  /// General interrogation exchange on a link (Fig 15): server I100 act,
  /// outstation actcon, burst of COT=20 values, I100 actterm.
  Timestamp gi_exchange(Station& st, Link& link, Timestamp ts) {
    Asdu act;
    act.type = TypeId::C_IC_NA_1;
    act.cot.cause = Cause::kActivation;
    act.common_address = static_cast<std::uint16_t>(st.os->id);
    act.objects.push_back({0, iec104::InterrogationCommand{20}, std::nullopt});
    ts = send_i_from_ctl(link, ts + 5000, act);

    Asdu con = act;
    con.cot.cause = Cause::kActivationCon;
    ts = send_i_from_out(link, ts + 30'000, con);

    // Values, batched: up to 8 objects of the same type per ASDU.
    std::size_t i = 0;
    while (i < st.signals.size()) {
      const auto& first = st.signals[i];
      Asdu batch;
      batch.type = static_cast<TypeId>(first.type_id);
      batch.cot.cause = Cause::kInterrogatedByStation;
      batch.common_address = static_cast<std::uint16_t>(st.os->id);
      while (i < st.signals.size() && st.signals[i].type_id == first.type_id &&
             batch.objects.size() < 8) {
        const auto& sig = st.signals[i];
        iec104::InformationObject obj;
        obj.ioa = sig.ioa;
        obj.value = element_for(sig, sample_value(st, sig));
        if (iec104::has_time_tag(batch.type)) {
          obj.time = iec104::Cp56Time2a::from_timestamp(ts);
        }
        batch.objects.push_back(std::move(obj));
        ++i;
      }
      ts = send_i_from_out(link, ts + 20'000 + rng_.below(30'000), batch);
    }

    Asdu term = act;
    term.cot.cause = Cause::kActivationTerm;
    return send_i_from_out(link, ts + 20'000, term);
  }

  /// Periodic U16/U32 keep-alive loop on a healthy secondary link.
  void schedule_keepalive(Link* link, double period_s, Timestamp first) {
    sched_.schedule_at(first, [this, link, period_s](Timestamp ts) {
      if (ts >= end_) return;
      Timestamp t2 = send_u(*link, ts, true, UFunction::kTestFrAct);
      send_u(*link, t2 + 15'000 + rng_.below(20'000), false, UFunction::kTestFrCon);
      double jitter = period_s * (0.97 + 0.06 * rng_.uniform());
      schedule_keepalive(link, period_s, ts + from_seconds(jitter));
    });
  }

  /// Unanswered U16 loop (the (1,1) Markov point): C2-O30 style, on a
  /// persistent connection that is never torn down.
  void schedule_unanswered_keepalive(Link* link, double period_s, Timestamp first) {
    sched_.schedule_at(first, [this, link, period_s](Timestamp ts) {
      if (ts >= end_) return;
      send_u(*link, ts, true, UFunction::kTestFrAct);
      schedule_unanswered_keepalive(link, period_s, ts + from_seconds(period_s));
    });
  }

  /// Churning backup connection: refused SYNs with occasional accepted
  /// cycles in which the server's U16 goes unanswered until a reset.
  void schedule_reject_churn(const OutstationSpec& os, const ControlServerSpec& server,
                             Timestamp first, int cycle_number) {
    sched_.schedule_at(first, [this, &os, &server, cycle_number](Timestamp ts) {
      if (ts >= end_) return;
      ChurnTuning tune = tuning_for(config_.year2);
      bool accept_cycle = tune.accept_every_cycles > 0 &&
                          cycle_number % tune.accept_every_cycles ==
                              std::min(25, tune.accept_every_cycles / 2);
      double next_in = tune.rst_retry_s * (0.9 + 0.2 * rng_.uniform());

      if (os.reject_mode == BackupRejectMode::kSilentIgnore) {
        Endpoint client = Endpoint::make(server.ip, ephemeral_port());
        Endpoint srv = Endpoint::make(os.ip, iec104::kIec104Port);
        SimTcpConnection conn(client, srv, sink(), &rng_);
        conn.open_ignored(ts, 2);
        next_in = tune.silent_retry_s * (0.9 + 0.2 * rng_.uniform());
      } else if (accept_cycle || os.reject_mode == BackupRejectMode::kAcceptThenReset) {
        // Handshake completes; server sends TESTFR on T3 idle (20 s), gets
        // nothing, sends once more, then the outstation resets (Fig 9).
        Link* link = make_link(os, server);
        Timestamp t = link->conn->open(ts);
        t = send_u(*link, t + from_seconds(20.0), true, UFunction::kTestFrAct);
        t = send_u(*link, t + from_seconds(12.0), true, UFunction::kTestFrAct);
        link->conn->close_rst(t + from_seconds(3.0), /*from_client=*/false);
        next_in = (os.reject_mode == BackupRejectMode::kAcceptThenReset
                       ? tune.atr_cycle_s
                       : tune.rst_retry_s) *
                  (0.9 + 0.2 * rng_.uniform());
      } else {
        Endpoint client = Endpoint::make(server.ip, ephemeral_port());
        Endpoint srv = Endpoint::make(os.ip, iec104::kIec104Port);
        SimTcpConnection conn(client, srv, sink(), &rng_);
        conn.open_refused(ts);
      }
      schedule_reject_churn(os, server, ts + from_seconds(next_in), cycle_number + 1);
    });
  }

  /// Spontaneous sampling tick for one station (every ~2 s).
  void schedule_spontaneous(Station* st, Timestamp first) {
    sched_.schedule_at(first, [this, st](Timestamp ts) {
      if (ts >= end_) return;
      if (st->primary && st->primary->started) {
        Timestamp t = ts;
        for (std::size_t i = 0; i < st->signals.size(); ++i) {
          const auto& sig = st->signals[i];
          if (sig.period_s > 0.0) continue;
          double value = sample_value(*st, sig);
          if (st->reporters[i].should_report(value)) {
            t = send_i_from_out(*st->primary, t + 3000 + rng_.below(5000),
                                measurement_asdu(*st, sig, Cause::kSpontaneous, value, t));
          }
        }
      }
      schedule_spontaneous(st, ts + from_seconds(2.0 * (0.9 + 0.2 * rng_.uniform())));
    });
  }

  /// Periodic reporting for one signal.
  void schedule_periodic(Station* st, std::size_t sig_index, Timestamp first) {
    sched_.schedule_at(first, [this, st, sig_index](Timestamp ts) {
      if (ts >= end_) return;
      const auto& sig = st->signals[sig_index];
      if (st->primary && st->primary->started) {
        double value = sample_value(*st, sig);
        send_i_from_out(*st->primary, ts,
                        measurement_asdu(*st, sig, Cause::kPeriodic, value, ts));
      }
      double jitter = sig.period_s * (0.95 + 0.1 * rng_.uniform());
      schedule_periodic(st, sig_index, ts + from_seconds(jitter));
    });
  }

  /// Type 5: when the primary link has been idle longer than T3, the
  /// endpoint emits an in-band TESTFR pair.
  void schedule_idle_test(Station* st, Timestamp first) {
    sched_.schedule_at(first, [this, st](Timestamp ts) {
      if (ts >= end_) return;
      Link* link = st->primary;
      if (link && link->started && ts > link->last_apdu &&
          ts - link->last_apdu > from_seconds(20.0)) {
        Timestamp t = send_u(*link, ts, false, UFunction::kTestFrAct);
        send_u(*link, t + 10'000 + rng_.below(10'000), true, UFunction::kTestFrCon);
      }
      schedule_idle_test(st, ts + from_seconds(5.0));
    });
  }

  /// Server-side S flusher: acknowledge outstanding I APDUs within ~T2.
  void schedule_ack_flush(Link* link, Timestamp first) {
    sched_.schedule_at(first, [this, link](Timestamp ts) {
      if (ts >= end_) return;
      if (link->started && link->unacked_from_out > 0 && ts > link->last_apdu &&
          ts - link->last_apdu > from_seconds(8.0)) {
        send_apdu(*link, ts, true, Apdu::make_s(link->ns_out));
        link->unacked_from_out = 0;
      }
      schedule_ack_flush(link, ts + from_seconds(5.0));
    });
  }

  /// Clock synchronization (I103) every 10 minutes.
  void schedule_clock_sync(Station* st, Timestamp first) {
    sched_.schedule_at(first, [this, st](Timestamp ts) {
      if (ts >= end_) return;
      if (st->primary && st->primary->started) {
        Asdu act;
        act.type = TypeId::C_CS_NA_1;
        act.cot.cause = Cause::kActivation;
        act.common_address = static_cast<std::uint16_t>(st->os->id);
        act.objects.push_back(
            {0, iec104::ClockSync{iec104::Cp56Time2a::from_timestamp(ts)}, std::nullopt});
        Timestamp t = send_i_from_ctl(*st->primary, ts, act);
        Asdu con = act;
        con.cot.cause = Cause::kActivationCon;
        send_i_from_out(*st->primary, t + 40'000 + rng_.below(40'000), con);
      }
      schedule_clock_sync(st, ts + from_seconds(1800.0));
    });
  }

  /// Grid tick: physics at 1 Hz, AGC every 4 s, setpoint commands on wire.
  void schedule_grid_tick(Timestamp first) {
    sched_.schedule_at(first, [this](Timestamp ts) {
      if (ts >= end_) return;
      grid_.step(1.0);
      // Newly synchronized generator gets a dispatch target (Fig 20: power
      // ramps once the breaker closes).
      for (auto& [osid, gi] : gen_index_) {
        auto& gen = grid_.generator(gi);
        if (gen.phase() == power::GeneratorPhase::kOnline && gen.setpoint() < 1.0 &&
            gen.output_mw() < 1.0) {
          gen.set_setpoint(0.5 * gen.config().capacity_mw);
        }
      }
      auto commands = agc_->step(grid_);
      for (const auto& cmd : commands) {
        // Find the station owning this generator and send I50.
        for (auto& st : stations_) {
          if (!st->gen || *st->gen != cmd.generator_index) continue;
          if (!st->primary || !st->primary->started) break;
          Asdu act;
          act.type = TypeId::C_SE_NC_1;
          act.cot.cause = Cause::kActivation;
          act.common_address = static_cast<std::uint16_t>(st->os->id);
          act.objects.push_back(
              {9001, iec104::SetpointFloat{static_cast<float>(cmd.setpoint_mw), 0},
               std::nullopt});
          Timestamp t = send_i_from_ctl(*st->primary, ts + 50'000, act);
          Asdu con = act;
          con.cot.cause = Cause::kActivationCon;
          send_i_from_out(*st->primary, t + 60'000 + rng_.below(60'000), con);
          break;
        }
      }
      schedule_grid_tick(ts + from_seconds(1.0));
    });
  }

  /// The C4-O22 outlier: a non-operational RTU under test, four APDUs with
  /// enormous gaps, then a reset (Y1 only).
  void schedule_o22_test() {
    const auto* os = topo_.find_outstation(22);
    sched_.schedule_at(start_ + from_seconds(0.15 * config_.duration_s),
                       [this, os](Timestamp ts) {
                         Link* link = make_link(*os, topo_.servers[3]);  // C4
                         Timestamp t = link->conn->open(ts);
                         t = send_u(*link, t + 100'000, true, UFunction::kStartDtAct);
                         double gap = config_.duration_s * 0.15;
                         t = send_u(*link, t + from_seconds(gap), false,
                                    UFunction::kStartDtCon);
                         t = send_u(*link, t + from_seconds(gap), true,
                                    UFunction::kTestFrAct);
                         t = send_u(*link, t + from_seconds(gap), false,
                                    UFunction::kTestFrCon);
                         link->conn->close_rst(t + from_seconds(gap * 0.3), false);
                       });
  }

  /// Type 8: keep-alive on the new server, then mid-capture switchover:
  /// STARTDT + I100 + data stream moves over (Fig 16).
  void schedule_switchover(Station* st, Link* old_primary, Link* new_primary,
                           double at_fraction) {
    sched_.schedule_at(
        start_ + from_seconds(at_fraction * config_.duration_s),
        [this, st, old_primary, new_primary](Timestamp ts) {
          if (ts >= end_) return;
          Timestamp t = send_u(*new_primary, ts, true, UFunction::kStartDtAct);
          t = send_u(*new_primary, t + 15'000, false, UFunction::kStartDtCon);
          new_primary->started = true;
          t = gi_exchange(*st, *new_primary, t + 50'000);
          st->primary = new_primary;
          old_primary->started = false;
          // The old primary falls back to keep-alive duty.
          schedule_keepalive(old_primary, kSecondaryKeepAlivePeriod,
                             t + from_seconds(kSecondaryKeepAlivePeriod));
        });
  }

  void setup_station(const OutstationSpec& os);

  // ---- background protocols (Fig 5: C37.118 + ICCP) ------------------------

  struct PmuStream {
    std::unique_ptr<SimTcpConnection> conn;
    synchro::ConfigFrame config;
    int gen_source = -1;  ///< generator index feeding the phasor values
  };

  /// One synchrophasor stream: data concentrator (server side of the tap)
  /// receives `rate` data frames per second over a long-lived connection.
  void setup_pmu_stream(int index, double rate_fps) {
    auto pmu = std::make_unique<PmuStream>();
    Endpoint client = Endpoint::make(
        net::Ipv4Addr::from_octets(10, 3, 0, static_cast<std::uint8_t>(index + 1)),
        ephemeral_port());
    Endpoint server = Endpoint::make(topo_.servers[2].ip, synchro::kC37118Port);
    pmu->conn = std::make_unique<SimTcpConnection>(client, server, sink(), &rng_);

    synchro::PmuConfig cfg;
    cfg.station_name = "PMU_" + std::to_string(index + 1);
    cfg.idcode = static_cast<std::uint16_t>(100 + index);
    cfg.phasor_names = {"VA", "VB", "VC", "I1"};
    cfg.phasor_units = {915527, 915527, 915527, 45776};
    cfg.analog_names = {"MW"};
    cfg.nominal_freq_code = 0;  // 60 Hz
    pmu->config.header.idcode = cfg.idcode;
    pmu->config.time_base = 1'000'000;
    pmu->config.data_rate = static_cast<std::uint16_t>(rate_fps);
    pmu->config.pmus.push_back(std::move(cfg));
    if (!gen_index_.empty()) {
      auto it = gen_index_.begin();
      std::advance(it, static_cast<long>(static_cast<std::size_t>(index) % gen_index_.size()));
      pmu->gen_source = static_cast<int>(it->second);
    }

    // The stream predates the capture: handshake + CFG2 happen off-tape.
    Timestamp pre = start_ - from_seconds(30.0 + 10.0 * index);
    Timestamp t = pmu->conn->open(pre);
    pmu->config.header.soc = timestamp_sec(t);
    pmu->conn->send(t + 5000, false, synchro::encode_config(pmu->config));

    PmuStream* raw = pmu.get();
    pmu_streams_.push_back(std::move(pmu));
    schedule_pmu_frame(raw, start_ + from_seconds(rng_.uniform(0.0, 1.0)), rate_fps);
    schedule_pmu_config(raw, start_ + from_seconds(rng_.uniform(2.0, 20.0)));
  }

  /// Periodic CFG-2 re-announcement (the concentrator polls configuration
  /// every few minutes; it also lets a mid-stream tap decode the data).
  void schedule_pmu_config(PmuStream* pmu, Timestamp at) {
    sched_.schedule_at(at, [this, pmu](Timestamp ts) {
      if (ts >= end_) return;
      synchro::CommandFrame cmd;
      cmd.header.idcode = pmu->config.header.idcode;
      cmd.header.soc = timestamp_sec(ts);
      cmd.command = synchro::Command::kSendConfig2;
      Timestamp t = pmu->conn->send(ts, /*from_client=*/false, synchro::encode_command(cmd));
      pmu->config.header.soc = timestamp_sec(t);
      pmu->conn->send(t + 20'000, /*from_client=*/true, synchro::encode_config(pmu->config));
      schedule_pmu_config(pmu, ts + from_seconds(300.0));
    });
  }

  void schedule_pmu_frame(PmuStream* pmu, Timestamp at, double rate_fps) {
    sched_.schedule_at(at, [this, pmu, rate_fps](Timestamp ts) {
      if (ts >= end_) return;
      synchro::DataFrame frame;
      frame.header.idcode = pmu->config.header.idcode;
      frame.header.soc = timestamp_sec(ts);
      frame.header.fracsec = static_cast<std::uint32_t>(
          (timestamp_usec(ts) * (pmu->config.time_base / 1'000'000)));

      double vmag = 132.8e3 / 1.7320508;  // phase voltage
      double freq_dev = grid_.frequency_hz() - grid_.config().nominal_frequency_hz;
      double mw = 0.0;
      if (pmu->gen_source >= 0) {
        const auto& gen = grid_.generator(static_cast<std::size_t>(pmu->gen_source));
        vmag = gen.terminal_voltage_kv() * 1000.0 / 1.7320508;
        mw = gen.output_mw();
      }
      synchro::PmuData data;
      data.stat = 0;
      double angle = 2.0943951;  // 120 degrees between phases
      for (int ph = 0; ph < 3; ++ph) {
        double a = -angle * ph + 0.002 * rng_.normal();
        data.phasors.emplace_back(vmag * std::cos(a), vmag * std::sin(a));
      }
      data.phasors.emplace_back(400.0 + 2.0 * rng_.normal(), -30.0);  // current
      data.freq_deviation_mhz = freq_dev * 1000.0;
      data.rocof = 0.01 * rng_.normal();
      data.analogs.push_back(mw);
      frame.pmus.push_back(std::move(data));

      pmu->conn->send(ts, /*from_client=*/true, synchro::encode_data(pmu->config, frame));
      schedule_pmu_frame(pmu, ts + from_seconds(1.0 / rate_fps), rate_fps);
    });
  }

  struct IccpLink {
    std::unique_ptr<SimTcpConnection> conn;
    std::string association;
    std::uint32_t next_invoke = 1;
  };

  /// One ICCP association with another company's control center.
  void setup_iccp_link(int index, const ControlServerSpec& local_server,
                       double report_period_s) {
    auto link = std::make_unique<IccpLink>();
    Endpoint client = Endpoint::make(local_server.ip, ephemeral_port());
    Endpoint server = Endpoint::make(
        net::Ipv4Addr::from_octets(10, 4, 0, static_cast<std::uint8_t>(index + 1)),
        iccp::kIsoTsapPort);
    link->conn = std::make_unique<SimTcpConnection>(client, server, sink(), &rng_);
    link->association = "TASE2-ASSOC-" + std::to_string(index + 1);

    // Association predates the capture (ICCP links run for months).
    Timestamp pre = start_ - from_seconds(120.0 + 15.0 * index);
    Timestamp t = link->conn->open(pre);
    iccp::Message req;
    req.type = iccp::MessageType::kAssociationRequest;
    req.invoke_id = link->next_invoke++;
    req.association_name = link->association;
    t = link->conn->send(t + 10'000, true, req.to_wire());
    iccp::Message resp = req;
    resp.type = iccp::MessageType::kAssociationResponse;
    link->conn->send(t + 20'000, false, resp.to_wire());

    IccpLink* raw = link.get();
    iccp_links_.push_back(std::move(link));
    schedule_iccp_report(raw, start_ + from_seconds(rng_.uniform(0.5, report_period_s)),
                         report_period_s);
  }

  void schedule_iccp_report(IccpLink* link, Timestamp at, double period_s) {
    sched_.schedule_at(at, [this, link, period_s](Timestamp ts) {
      if (ts >= end_) return;
      // The remote control center pushes a data-set of tie-line readings.
      iccp::Message report;
      report.type = iccp::MessageType::kInformationReport;
      report.invoke_id = link->next_invoke++;
      report.association_name = link->association;
      for (int i = 0; i < 6; ++i) {
        iccp::PointValue p;
        p.name = "TIE_LINE_" + std::to_string(i + 1) + ".MW";
        p.value = 120.0 + 15.0 * i + 2.0 * rng_.normal();
        report.points.push_back(std::move(p));
      }
      iccp::PointValue freq;
      freq.name = "AREA.FREQ";
      freq.value = grid_.frequency_hz();
      report.points.push_back(std::move(freq));
      link->conn->send(ts, /*from_client=*/false, report.to_wire());

      // Occasionally the local center reads a specific remote point.
      if (rng_.chance(0.05)) {
        iccp::Message read;
        read.type = iccp::MessageType::kReadRequest;
        read.invoke_id = link->next_invoke++;
        read.association_name = link->association;
        read.names = {"BUS7.KV"};
        Timestamp t = link->conn->send(ts + 200'000, /*from_client=*/true, read.to_wire());
        iccp::Message resp;
        resp.type = iccp::MessageType::kReadResponse;
        resp.invoke_id = read.invoke_id;
        resp.association_name = link->association;
        resp.points.push_back({"BUS7.KV", 231.0 + 0.4 * rng_.normal(), 0});
        link->conn->send(t + 80'000, /*from_client=*/false, resp.to_wire());
      }
      schedule_iccp_report(link, ts + from_seconds(period_s * (0.95 + 0.1 * rng_.uniform())),
                           period_s);
    });
  }

  // ---- members -------------------------------------------------------------

  const CaptureConfig config_;
  Topology topo_;
  Rng rng_;
  Timestamp start_;
  Timestamp end_;
  power::GridModel grid_;
  std::optional<power::AgcController> agc_;
  std::map<int, std::size_t> gen_index_;
  GroundTruth truth_;

  EventScheduler sched_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<Station>> stations_;
  std::vector<std::unique_ptr<PmuStream>> pmu_streams_;
  std::vector<std::unique_ptr<IccpLink>> iccp_links_;
  std::uint16_t next_port_ = 49152;

  struct RawFrame {
    Timestamp ts;
    std::vector<std::uint8_t> data;
  };
  std::vector<RawFrame> raw_frames_;
};

void CaptureBuilder::setup_station(const OutstationSpec& os) {
  auto station = std::make_unique<Station>();
  Station* st = station.get();
  st->os = &os;
  st->signals = build_signals(os, config_.year2);
  for (const auto& sig : st->signals) {
    st->reporters.emplace_back(sig.threshold > 0 ? sig.threshold : 1e-9);
    truth_.signals.push_back(SignalTruth{os.id, sig.ioa, sig.symbol, sig.type_id});
  }
  if (auto it = gen_index_.find(os.id); it != gen_index_.end()) st->gen = it->second;
  stations_.push_back(std::move(station));

  const auto& primary_srv = topo_.primary_server(os);
  const auto& backup_srv = topo_.backup_server(os);
  // Connections that pre-date the capture open before start_ (their
  // handshakes are filtered out, leaving mid-stream long-lived flows).
  Timestamp pre_open = start_ - from_seconds(60.0 + rng_.uniform(0, 240.0));

  using OT = OutstationType;
  switch (os.type) {
    case OT::kType1_PrimaryOnly:
    case OT::kType5_StaleSpontaneous: {
      Link* link = make_link(os, primary_srv);
      open_and_start(*link, pre_open);
      st->primary = link;
      break;
    }
    case OT::kType2_Ideal: {
      Link* link = make_link(os, primary_srv);
      open_and_start(*link, pre_open);
      st->primary = link;
      Link* backup = make_link(os, backup_srv);
      backup->conn->open(pre_open + from_seconds(5.0));
      st->secondary = backup;
      schedule_keepalive(backup, kSecondaryKeepAlivePeriod,
                         start_ + from_seconds(rng_.uniform(1.0, 30.0)));
      break;
    }
    case OT::kType3_BackupOnly: {
      // Redundant RTU: keep-alive connections to both servers of the pair.
      for (const auto* srv : {&primary_srv, &backup_srv}) {
        Link* link = make_link(os, *srv);
        link->conn->open(pre_open);
        schedule_keepalive(link, kSecondaryKeepAlivePeriod,
                           start_ + from_seconds(rng_.uniform(1.0, 30.0)));
      }
      break;
    }
    case OT::kType4_BothServersI: {
      // The unique outstation whose active server differs between captures;
      // I-format only (reporting is frequent enough that T3 never fires).
      const auto& srv = config_.year2 ? backup_srv : primary_srv;
      Link* link = make_link(os, srv);
      open_and_start(*link, pre_open);
      st->primary = link;
      break;
    }
    case OT::kType6_RejectBackupWithI: {
      // I to the active server; the other server's backup attempts churn.
      // Fig 13 places C1-O5 and C1-O8 but C2-O28 at the (1,1) point, so the
      // churning side is C1 for O5/O8 and C2 for O28.
      const auto& churn_srv = os.id == 28 ? backup_srv : primary_srv;
      const auto& active_srv = os.id == 28 ? primary_srv : backup_srv;
      Link* link = make_link(os, active_srv);
      open_and_start(*link, pre_open);
      st->primary = link;
      schedule_reject_churn(os, churn_srv, start_ + from_seconds(rng_.uniform(0.0, 5.0)),
                            0);
      break;
    }
    case OT::kType7_ResetBackup: {
      // Pure backup RTU whose keep-alive connection misbehaves. O24/O28/O30
      // are served by the pair's backup server (C2), the rest by C1.
      bool via_backup_server = os.id == 24 || os.id == 28 || os.id == 30;
      const auto& srv = via_backup_server ? backup_srv : primary_srv;
      if (os.secondary_t3_s) {
        // C2-O30: a persistent connection with a misconfigured T3 of 430 s
        // whose U16s are never answered.
        Link* link = make_link(os, srv);
        link->conn->open(pre_open);
        schedule_unanswered_keepalive(link, *os.secondary_t3_s,
                                      start_ + from_seconds(rng_.uniform(5.0, 60.0)));
      } else {
        schedule_reject_churn(os, srv, start_ + from_seconds(rng_.uniform(0.0, 4.0)), 0);
      }
      break;
    }
    case OT::kType8_Switchover: {
      const auto& first_srv = primary_srv;
      const auto& second_srv = backup_srv;
      Link* a = make_link(os, first_srv);
      open_and_start(*a, pre_open);
      st->primary = a;
      Link* b = make_link(os, second_srv);
      b->conn->open(pre_open + from_seconds(4.0));
      st->secondary = b;
      double frac = 0.3 + 0.12 * (os.id % 4);
      schedule_keepalive(b, kSecondaryKeepAlivePeriod,
                         start_ + from_seconds(rng_.uniform(1.0, 30.0)));
      schedule_switchover(st, a, b, frac);
      break;
    }
  }

  // Stations whose backup attempts are silently ignored (Y1 only) churn
  // regardless of their data role: each ignored SYN is a new flow that the
  // lifetime classifier counts as "long-lived" (no FIN/RST ever seen).
  if (os.reject_mode == BackupRejectMode::kSilentIgnore &&
      tuning_for(config_.year2).silent_retry_s > 0.0) {
    schedule_reject_churn(os, backup_srv, start_ + from_seconds(rng_.uniform(0.0, 6.0)),
                          0);
  }

  if (st->primary) {
    schedule_ack_flush(st->primary, start_ + from_seconds(rng_.uniform(2.0, 7.0)));
    bool any_spont = false;
    for (std::size_t i = 0; i < st->signals.size(); ++i) {
      if (st->signals[i].period_s > 0.0) {
        schedule_periodic(st, i, start_ + from_seconds(rng_.uniform(0.5, st->signals[i].period_s)));
      } else {
        any_spont = true;
      }
    }
    if (any_spont) {
      schedule_spontaneous(st, start_ + from_seconds(rng_.uniform(0.5, 2.0)));
    }
    if (os.type == OT::kType5_StaleSpontaneous) {
      schedule_idle_test(st, start_ + from_seconds(5.0));
    }
    if (station_gets_clock_sync(os.id)) {
      schedule_clock_sync(st, start_ + from_seconds(rng_.uniform(30.0, 900.0)));
    }
    if (station_sends_end_of_init(os.id)) {
      Station* stp = st;
      sched_.schedule_at(start_ + from_seconds(1.0 + (os.id % 7)), [this, stp](Timestamp ts) {
        Asdu ei;
        ei.type = TypeId::M_EI_NA_1;
        ei.cot.cause = Cause::kInitialized;
        ei.common_address = static_cast<std::uint16_t>(stp->os->id);
        ei.objects.push_back({0, iec104::EndOfInit{0}, std::nullopt});
        send_i_from_out(*stp->primary, ts, ei);
      });
    }
  }
}

CaptureResult CaptureBuilder::run() {
  truth_.year2 = config_.year2;
  truth_.duration_s = config_.duration_s;
  truth_.start_ts = start_;

  setup_grid();

  for (const auto& os : topo_.outstations) {
    bool present = config_.year2 ? os.in_y2 : os.in_y1;
    if (!present) continue;
    truth_.outstation_ids.push_back(os.id);
    if (os.id == 22 && !config_.year2) {
      schedule_o22_test();
      continue;  // O22 is under test, not in regular operation
    }
    setup_station(os);
  }

  // Operator-initiated general interrogations on two stations (one of the
  // three I100 trigger conditions in the standard).
  for (int id : {1, 10}) {
    sched_.schedule_at(start_ + from_seconds(0.2 * config_.duration_s * (1 + id % 3)),
                       [this, id](Timestamp ts) {
                         if (ts >= end_) return;
                         for (auto& st : stations_) {
                           if (st->os->id == id && st->primary && st->primary->started) {
                             gi_exchange(*st, *st->primary, ts);
                             break;
                           }
                         }
                       });
  }

  if (config_.include_background_protocols) {
    for (int i = 0; i < 3; ++i) setup_pmu_stream(i, 10.0);
    setup_iccp_link(0, topo_.servers[0], 4.0);
    setup_iccp_link(1, topo_.servers[2], 6.0);
  }

  schedule_grid_tick(start_ + from_seconds(1.0));
  sched_.run_until(end_);

  // Order frames by time and drop the pre-capture warm-up.
  std::stable_sort(raw_frames_.begin(), raw_frames_.end(),
                   [](const RawFrame& a, const RawFrame& b) { return a.ts < b.ts; });

  CaptureResult result;
  result.truth = std::move(truth_);
  result.topology = std::move(topo_);
  result.packets.reserve(raw_frames_.size());
  for (auto& f : raw_frames_) {
    if (f.ts < start_ || f.ts >= end_) continue;
    net::CapturedPacket pkt;
    pkt.ts = f.ts;
    pkt.original_length = static_cast<std::uint32_t>(f.data.size());
    pkt.data = std::move(f.data);
    result.packets.push_back(std::move(pkt));
  }
  return result;
}

}  // namespace

CaptureResult generate_capture(const CaptureConfig& config) {
  CaptureBuilder builder(config);
  return builder.run();
}

Status write_capture_pcap(const CaptureResult& capture, const std::string& path) {
  auto writer = net::PcapWriter::open(path);
  if (!writer) return writer.error();
  for (const auto& pkt : capture.packets) {
    auto st = writer->write(pkt.ts, pkt.data);
    if (!st.ok()) return st;
  }
  return writer->close();
}

}  // namespace uncharted::sim
