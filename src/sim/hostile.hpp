// Adversarial IEC 104 peer: synthesizes the attack traffic the conformance
// state machine exists to catch. Each scenario is one deliberately
// malicious TCP connection (byte-exact frames via SimTcpConnection) played
// against a target outstation — the adversarial counterpart of the benign
// fleet generator, used by the hostile-peer test suite to assert three
// properties: the pipeline never crashes on attack traffic, every scenario
// is flagged hostile in the ConformanceReport, and hostility is attributed
// to the attacking flow, never to the victim's legitimate peers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "iec104/apdu.hpp"
#include "sim/tcp.hpp"
#include "util/rng.hpp"
#include "util/timebase.hpp"

namespace uncharted::sim {

/// One attack pattern against an IEC 104 outstation.
enum class HostileScenario {
  kIBeforeStartDt,      ///< commands on a fresh connection, no STARTDT
  kStartDtNotConfirmed, ///< STARTDT act, then data without awaiting con
  kWindowOverflow,      ///< blast far past k unacknowledged I-frames
  kAckOfUnsent,         ///< S-frame acknowledging frames never sent
  kSequenceDesync,      ///< N(S) repeatedly rewound to desynchronize
  kOversizedAsdu,       ///< frames whose length octet exceeds 253
  kSlowlorisDribble,    ///< the stream dribbled one byte per segment
  kSpoofedCommandSweep, ///< command sweep from several spoofed sources
  kUnsolicitedConfirms, ///< STARTDT/STOPDT/TESTFR con storm without acts
  kDataAfterStopDt,     ///< orderly STOPDT, then more commands anyway
};

std::string hostile_scenario_name(HostileScenario s);

/// All scenarios, for exhaustive adversarial sweeps.
std::vector<HostileScenario> all_hostile_scenarios();

/// Plays attack scenarios against `target` (an outstation owning the
/// IEC 104 port), emitting byte-exact frames into `sink`. Every scenario
/// opens its own TCP connection from a distinct attacker source port (or
/// spoofed source address), so each attack is one directed flow.
class HostilePeer {
 public:
  HostilePeer(net::Ipv4Addr attacker_ip, Endpoint target, FrameSink sink, Rng* rng);

  /// Runs one scenario starting at `ts`; returns the time after its last
  /// frame.
  Timestamp run(HostileScenario scenario, Timestamp ts);

  /// Runs every scenario back to back.
  Timestamp run_all(Timestamp ts);

 private:
  SimTcpConnection connect(net::Ipv4Addr src_ip);
  /// Sends one encoded APDU as a PSH segment.
  Timestamp apdu(SimTcpConnection& conn, Timestamp ts, bool from_attacker,
                 const iec104::Apdu& apdu);

  net::Ipv4Addr attacker_ip_;
  Endpoint target_;
  FrameSink sink_;
  Rng* rng_;
  std::uint16_t next_port_ = 51000;  ///< fresh source port per connection
};

}  // namespace uncharted::sim
