#include "sim/topology.hpp"

#include <algorithm>
#include <cassert>

namespace uncharted::sim {

namespace {

using net::Ipv4Addr;

OutstationSpec make(int id, int substation, ServerPair pair, bool y1, bool y2,
                    OutstationType type) {
  OutstationSpec o;
  o.id = id;
  o.substation = substation;
  o.pair = pair;
  o.in_y1 = y1;
  o.in_y2 = y2;
  o.type = type;
  o.ip = Ipv4Addr::from_octets(10, 1, static_cast<std::uint8_t>(substation),
                               static_cast<std::uint8_t>(id));
  return o;
}

}  // namespace

Topology Topology::paper_topology() {
  Topology t;

  t.servers = {
      {"C1", Ipv4Addr::from_octets(10, 0, 0, 1)},
      {"C2", Ipv4Addr::from_octets(10, 0, 0, 2)},
      {"C3", Ipv4Addr::from_octets(10, 0, 0, 3)},
      {"C4", Ipv4Addr::from_octets(10, 0, 0, 4)},
  };

  // Substations. S2, S19 and S20 are the auxiliary (no-generator) ones;
  // S23-S27 only appear in the Y2 capture (Table 2: new substations, IEC 101
  // upgrades, and the site under maintenance in Y1).
  for (int s = 1; s <= 27; ++s) {
    SubstationSpec sub;
    sub.id = s;
    sub.has_generator = (s != 2 && s != 19 && s != 20);
    sub.in_y1 = (s < 23);
    sub.in_y2 = (s != 2);  // S2 lost its connection to the operator in Y2
    t.substations.push_back(sub);
  }

  using OT = OutstationType;
  using SP = ServerPair;
  auto& o = t.outstations;

  // --- Pair C1/C2 ----------------------------------------------------------
  o.push_back(make(1, 1, SP::kC1C2, true, true, OT::kType2_Ideal));
  o.push_back(make(2, 2, SP::kC1C2, true, false, OT::kType1_PrimaryOnly));
  o.push_back(make(3, 1, SP::kC1C2, true, true, OT::kType3_BackupOnly));
  o.push_back(make(4, 3, SP::kC1C2, true, true, OT::kType2_Ideal));
  o.push_back(make(5, 4, SP::kC1C2, true, true, OT::kType6_RejectBackupWithI));
  o.push_back(make(6, 4, SP::kC1C2, true, true, OT::kType7_ResetBackup));
  o.push_back(make(7, 6, SP::kC1C2, true, true, OT::kType7_ResetBackup));
  o.push_back(make(8, 6, SP::kC1C2, true, true, OT::kType6_RejectBackupWithI));
  o.push_back(make(9, 5, SP::kC1C2, true, true, OT::kType7_ResetBackup));
  o.push_back(make(15, 5, SP::kC1C2, true, false, OT::kType7_ResetBackup));
  o.push_back(make(24, 7, SP::kC1C2, true, true, OT::kType7_ResetBackup));
  o.push_back(make(25, 7, SP::kC1C2, true, true, OT::kType2_Ideal));
  // O28 was the operating (reporting) RTU of S12 in Y1 — its replacement
  // O51 took over in Y2 — and its backup connection from C2 was one of the
  // paper's (1,1) reset connections while its data retained the IEC 101
  // single-octet COT.
  o.push_back(make(28, 12, SP::kC1C2, true, false, OT::kType6_RejectBackupWithI));
  o.push_back(make(29, 13, SP::kC1C2, true, true, OT::kType8_Switchover));
  o.push_back(make(30, 14, SP::kC1C2, true, true, OT::kType7_ResetBackup));
  o.push_back(make(35, 9, SP::kC1C2, true, true, OT::kType7_ResetBackup));
  o.push_back(make(39, 20, SP::kC1C2, true, true, OT::kType1_PrimaryOnly));
  o.push_back(make(40, 11, SP::kC1C2, true, true, OT::kType8_Switchover));
  o.push_back(make(42, 11, SP::kC1C2, true, true, OT::kType8_Switchover));
  o.push_back(make(44, 22, SP::kC1C2, true, true, OT::kType5_StaleSpontaneous));
  o.push_back(make(45, 22, SP::kC1C2, true, true, OT::kType1_PrimaryOnly));
  o.push_back(make(49, 3, SP::kC1C2, true, true, OT::kType3_BackupOnly));
  o.push_back(make(51, 12, SP::kC1C2, false, true, OT::kType3_BackupOnly));
  o.push_back(make(52, 23, SP::kC1C2, false, true, OT::kType2_Ideal));
  o.push_back(make(54, 25, SP::kC1C2, false, true, OT::kType2_Ideal));
  o.push_back(make(56, 13, SP::kC1C2, false, true, OT::kType3_BackupOnly));
  o.push_back(make(57, 14, SP::kC1C2, false, true, OT::kType3_BackupOnly));

  // --- Pair C3/C4 ----------------------------------------------------------
  // S10 is the paper's "newer substation with 14 RTUs": each generator has a
  // reporting RTU plus a redundant keep-alive-only RTU.
  o.push_back(make(10, 10, SP::kC3C4, true, true, OT::kType2_Ideal));
  o.push_back(make(11, 10, SP::kC3C4, true, true, OT::kType3_BackupOnly));
  o.push_back(make(12, 10, SP::kC3C4, true, true, OT::kType2_Ideal));
  o.push_back(make(13, 10, SP::kC3C4, true, true, OT::kType3_BackupOnly));
  o.push_back(make(14, 10, SP::kC3C4, true, true, OT::kType2_Ideal));
  o.push_back(make(16, 10, SP::kC3C4, true, true, OT::kType3_BackupOnly));
  o.push_back(make(17, 10, SP::kC3C4, true, true, OT::kType2_Ideal));
  o.push_back(make(18, 10, SP::kC3C4, true, true, OT::kType3_BackupOnly));
  o.push_back(make(19, 10, SP::kC3C4, true, true, OT::kType2_Ideal));
  o.push_back(make(20, 10, SP::kC3C4, true, false, OT::kType8_Switchover));
  o.push_back(make(21, 10, SP::kC3C4, true, true, OT::kType3_BackupOnly));
  o.push_back(make(22, 10, SP::kC3C4, true, false, OT::kType3_BackupOnly));
  o.push_back(make(23, 10, SP::kC3C4, true, true, OT::kType3_BackupOnly));
  o.push_back(make(33, 10, SP::kC3C4, true, false, OT::kType3_BackupOnly));
  o.push_back(make(26, 8, SP::kC3C4, true, true, OT::kType4_BothServersI));
  o.push_back(make(27, 8, SP::kC3C4, true, true, OT::kType3_BackupOnly));
  o.push_back(make(31, 15, SP::kC3C4, true, true, OT::kType2_Ideal));
  o.push_back(make(32, 16, SP::kC3C4, true, true, OT::kType3_BackupOnly));
  o.push_back(make(34, 17, SP::kC3C4, true, true, OT::kType2_Ideal));
  o.push_back(make(36, 18, SP::kC3C4, true, true, OT::kType3_BackupOnly));
  o.push_back(make(37, 19, SP::kC3C4, true, true, OT::kType2_Ideal));
  o.push_back(make(38, 20, SP::kC3C4, true, false, OT::kType3_BackupOnly));
  o.push_back(make(41, 21, SP::kC3C4, true, true, OT::kType3_BackupOnly));
  o.push_back(make(43, 21, SP::kC3C4, true, true, OT::kType2_Ideal));
  o.push_back(make(46, 16, SP::kC3C4, true, true, OT::kType3_BackupOnly));
  o.push_back(make(47, 18, SP::kC3C4, true, true, OT::kType3_BackupOnly));
  o.push_back(make(48, 19, SP::kC3C4, true, true, OT::kType3_BackupOnly));
  o.push_back(make(50, 24, SP::kC3C4, false, true, OT::kType2_Ideal));
  o.push_back(make(53, 27, SP::kC3C4, false, true, OT::kType2_Ideal));
  o.push_back(make(55, 26, SP::kC3C4, false, true, OT::kType2_Ideal));
  o.push_back(make(58, 15, SP::kC3C4, false, true, OT::kType8_Switchover));

  std::sort(o.begin(), o.end(),
            [](const OutstationSpec& a, const OutstationSpec& b) { return a.id < b.id; });
  assert(o.size() == 58);

  auto at = [&](int id) -> OutstationSpec& {
    auto it = std::find_if(o.begin(), o.end(),
                           [id](const OutstationSpec& s) { return s.id == id; });
    assert(it != o.end());
    return *it;
  };

  // §6.1: legacy IEC 101 options carried over TCP. O37 uses 2-octet IOAs;
  // O53, O58 and O28 use a 1-octet cause of transmission.
  at(37).legacy_ioa = true;
  at(53).legacy_cot = true;
  at(58).legacy_cot = true;
  at(28).legacy_cot = true;

  // Fig 9 / Table 3: how the misbehaving backup connections fail.
  // RST-on-SYN produces the mass of sub-second flows; silent-ignore (Y1
  // only, on outstations gone by Y2) produces SYN-only "long-lived" flows.
  for (int id : {6, 7, 9, 15, 24, 28, 35}) {
    at(id).reject_mode = BackupRejectMode::kRstReject;
  }
  for (int id : {5, 8}) {  // Type 6: I to active server, backup reset
    at(id).reject_mode = BackupRejectMode::kAcceptThenReset;
  }
  at(30).reject_mode = BackupRejectMode::kAcceptThenReset;
  // §6.3 cluster-0 outlier: C2-O30 secondary with T3 = 430 s vs ~30 s norm.
  at(30).secondary_t3_s = 430.0;
  for (int id : {2, 33, 38}) {
    at(id).reject_mode = BackupRejectMode::kSilentIgnore;
  }

  // Table 8: four stations receive AGC set points (I50).
  for (int id : {1, 10, 31, 34}) at(id).agc_generator = true;

  // IOA counts: deterministic, 4-8 points for keep-alive-only RTUs,
  // 10-34 for reporting RTUs. Exactly the 14 outstations below (in the 7
  // unchanged substations, plus O37) keep identical counts across years.
  const std::vector<int> unchanged = {1, 3, 4, 49, 24, 25, 32, 46, 36, 47, 41, 43, 34, 37};
  for (auto& os : o) {
    bool backup_only = os.type == OutstationType::kType3_BackupOnly ||
                       os.type == OutstationType::kType7_ResetBackup;
    int base = backup_only ? 4 + (os.id * 3) % 5 : 10 + (os.id * 7) % 25;
    os.ioa_count_y1 = base;
    bool keep = std::find(unchanged.begin(), unchanged.end(), os.id) != unchanged.end();
    if (keep) {
      os.ioa_count_y2 = base;
    } else {
      // Drift: field devices added or removed (Fig 6 arrows).
      int delta = ((os.id * 5) % 7) - 3;  // -3..3
      if (delta == 0) delta = (os.id % 2) ? 2 : -2;
      os.ioa_count_y2 = std::max(2, base + delta);
    }
  }

  return t;
}

const OutstationSpec* Topology::find_outstation(int id) const {
  auto it = std::find_if(outstations.begin(), outstations.end(),
                         [id](const OutstationSpec& s) { return s.id == id; });
  return it == outstations.end() ? nullptr : &*it;
}

const ControlServerSpec& Topology::primary_server(const OutstationSpec& o) const {
  return servers[o.pair == ServerPair::kC1C2 ? 0 : 2];
}

const ControlServerSpec& Topology::backup_server(const OutstationSpec& o) const {
  return servers[o.pair == ServerPair::kC1C2 ? 1 : 3];
}

std::vector<const OutstationSpec*> Topology::outstations_in_year(bool year2) const {
  std::vector<const OutstationSpec*> out;
  for (const auto& o : outstations) {
    if ((year2 && o.in_y2) || (!year2 && o.in_y1)) out.push_back(&o);
  }
  return out;
}

}  // namespace uncharted::sim
