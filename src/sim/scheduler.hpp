// Discrete-event scheduler driving the capture synthesis.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "util/timebase.hpp"

namespace uncharted::sim {

/// Min-heap of timestamped callbacks. Deterministic: ties break by
/// insertion order.
class EventScheduler {
 public:
  using Callback = std::function<void(Timestamp)>;

  void schedule_at(Timestamp ts, Callback cb) {
    queue_.push(Entry{ts, next_id_++, std::move(cb)});
  }

  void schedule_after(Timestamp now, DurationUs delay, Callback cb) {
    schedule_at(now + static_cast<Timestamp>(delay), std::move(cb));
  }

  bool empty() const { return queue_.empty(); }
  Timestamp next_time() const { return queue_.top().ts; }

  /// Runs all events with ts <= horizon, in time order.
  void run_until(Timestamp horizon) {
    while (!queue_.empty() && queue_.top().ts <= horizon) {
      // Copy out before pop so the callback can schedule more events.
      Entry e = queue_.top();
      queue_.pop();
      e.cb(e.ts);
    }
  }

 private:
  struct Entry {
    Timestamp ts;
    std::uint64_t id;
    Callback cb;

    bool operator>(const Entry& other) const {
      if (ts != other.ts) return ts > other.ts;
      return id > other.id;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::uint64_t next_id_ = 0;
};

}  // namespace uncharted::sim
