#include "sim/hostile.hpp"

#include "iec104/constants.hpp"
#include "iec104/elements.hpp"

namespace uncharted::sim {

namespace {

constexpr DurationUs kStep = 20'000;  // 20 ms between attack frames

/// A double command, the attacker's payload of choice (what Industroyer
/// swept breakers with).
iec104::Asdu command(std::uint32_t ioa) {
  iec104::Asdu asdu;
  asdu.type = iec104::TypeId::C_DC_NA_1;
  asdu.cot.cause = iec104::Cause::kActivation;
  asdu.common_address = 1;
  asdu.objects.push_back({ioa, iec104::DoubleCommand{2, false, 0}, std::nullopt});
  return asdu;
}

iec104::Apdu u_frame(iec104::UFunction f) { return iec104::Apdu::make_u(f); }

}  // namespace

std::string hostile_scenario_name(HostileScenario s) {
  switch (s) {
    case HostileScenario::kIBeforeStartDt: return "i-before-startdt";
    case HostileScenario::kStartDtNotConfirmed: return "startdt-not-confirmed";
    case HostileScenario::kWindowOverflow: return "window-overflow";
    case HostileScenario::kAckOfUnsent: return "ack-of-unsent";
    case HostileScenario::kSequenceDesync: return "sequence-desync";
    case HostileScenario::kOversizedAsdu: return "oversized-asdu";
    case HostileScenario::kSlowlorisDribble: return "slowloris-dribble";
    case HostileScenario::kSpoofedCommandSweep: return "spoofed-command-sweep";
    case HostileScenario::kUnsolicitedConfirms: return "unsolicited-confirms";
    case HostileScenario::kDataAfterStopDt: return "data-after-stopdt";
  }
  return "?";
}

std::vector<HostileScenario> all_hostile_scenarios() {
  return {HostileScenario::kIBeforeStartDt,
          HostileScenario::kStartDtNotConfirmed,
          HostileScenario::kWindowOverflow,
          HostileScenario::kAckOfUnsent,
          HostileScenario::kSequenceDesync,
          HostileScenario::kOversizedAsdu,
          HostileScenario::kSlowlorisDribble,
          HostileScenario::kSpoofedCommandSweep,
          HostileScenario::kUnsolicitedConfirms,
          HostileScenario::kDataAfterStopDt};
}

HostilePeer::HostilePeer(net::Ipv4Addr attacker_ip, Endpoint target,
                         FrameSink sink, Rng* rng)
    : attacker_ip_(attacker_ip), target_(target), sink_(sink), rng_(rng) {}

SimTcpConnection HostilePeer::connect(net::Ipv4Addr src_ip) {
  Endpoint attacker = Endpoint::make(src_ip, next_port_++);
  return SimTcpConnection(attacker, target_, sink_, rng_);
}

Timestamp HostilePeer::apdu(SimTcpConnection& conn, Timestamp ts,
                            bool from_attacker, const iec104::Apdu& apdu) {
  auto bytes = apdu.encode();
  return conn.send(ts, from_attacker, bytes.value());
}

Timestamp HostilePeer::run(HostileScenario scenario, Timestamp ts) {
  auto conn = connect(attacker_ip_);
  using U = iec104::UFunction;
  switch (scenario) {
    case HostileScenario::kIBeforeStartDt:
      // Straight to commands on a fresh connection: data transfer was
      // never activated, so every I-frame is protocol-impossible.
      ts = conn.open(ts);
      for (std::uint16_t ns = 0; ns < 3; ++ns) {
        ts = apdu(conn, ts + kStep, true, iec104::Apdu::make_i(ns, 0, command(100 + ns)));
      }
      return conn.close_rst(ts + kStep, true);

    case HostileScenario::kStartDtNotConfirmed:
      // STARTDT act, then commands without waiting for the confirmation —
      // the blind ordering of a scripted intrusion.
      ts = conn.open(ts);
      ts = apdu(conn, ts + kStep, true, u_frame(U::kStartDtAct));
      for (std::uint16_t ns = 0; ns < 3; ++ns) {
        ts = apdu(conn, ts + kStep, true, iec104::Apdu::make_i(ns, 0, command(200 + ns)));
      }
      return conn.close_rst(ts + kStep, true);

    case HostileScenario::kWindowOverflow: {
      // Proper activation, then a blast far past k=12 with the victim
      // never acknowledging (its acks are what the attacker ignores).
      ts = conn.open(ts);
      ts = apdu(conn, ts + kStep, true, u_frame(U::kStartDtAct));
      ts = apdu(conn, ts + kStep, false, u_frame(U::kStartDtCon));
      for (std::uint16_t ns = 0; ns < 30; ++ns) {
        ts = apdu(conn, ts + kStep, true, iec104::Apdu::make_i(ns, 0, command(300 + ns)));
      }
      return conn.close_rst(ts + kStep, true);
    }

    case HostileScenario::kAckOfUnsent:
      // The attacker acknowledges 200 frames the outstation never sent,
      // desynchronizing any implementation that trusts N(R).
      ts = conn.open(ts);
      ts = apdu(conn, ts + kStep, true, u_frame(U::kStartDtAct));
      ts = apdu(conn, ts + kStep, false, u_frame(U::kStartDtCon));
      ts = apdu(conn, ts + kStep, true, iec104::Apdu::make_s(200));
      return conn.close_fin(ts + kStep, true);

    case HostileScenario::kSequenceDesync: {
      // N(S) repeatedly rewound, each time continuing from the rewound
      // value (a retransmitted copy would instead resume the old stream):
      // four resets at double weight cross the hostile score even though
      // no single frame is impossible.
      ts = conn.open(ts);
      ts = apdu(conn, ts + kStep, true, u_frame(U::kStartDtAct));
      ts = apdu(conn, ts + kStep, false, u_frame(U::kStartDtCon));
      const std::uint16_t pattern[] = {0, 1, 2, 0, 7, 1, 9, 2, 11, 3, 13};
      for (std::uint16_t ns : pattern) {
        ts = apdu(conn, ts + kStep, true, iec104::Apdu::make_i(ns, 0, command(400 + ns)));
      }
      return conn.close_rst(ts + kStep, true);
    }

    case HostileScenario::kOversizedAsdu: {
      // Frames claiming a 255-octet APDU: the length octet alone exceeds
      // the 253-octet limit, which no conforming encoder can produce.
      ts = conn.open(ts);
      ts = apdu(conn, ts + kStep, true, u_frame(U::kStartDtAct));
      ts = apdu(conn, ts + kStep, false, u_frame(U::kStartDtCon));
      std::vector<std::uint8_t> frame(2 + 255, 0xA5);
      frame[0] = iec104::kStartByte;
      frame[1] = 0xFF;
      for (int i = 0; i < 3; ++i) {
        ts = conn.send(ts + kStep, true, frame);
      }
      return conn.close_rst(ts + kStep, true);
    }

    case HostileScenario::kSlowlorisDribble: {
      // One byte per segment: every packet leaves the parser holding a
      // partial frame (or skipping a stray byte), starving the receiver
      // while tying up its buffers.
      ts = conn.open(ts);
      auto encoded = iec104::Apdu::make_i(0, 0, command(500)).encode();
      const auto& bytes = encoded.value();
      for (int round = 0; round < 3; ++round) {
        for (std::size_t i = 0; i < bytes.size(); ++i) {
          ts = conn.send(ts + kStep, true, std::span(&bytes[i], 1));
        }
      }
      return conn.close_rst(ts + kStep, true);
    }

    case HostileScenario::kSpoofedCommandSweep: {
      // The same command sweep from several spoofed source addresses —
      // each source is its own hostile flow, and none of the hostility
      // may bleed onto the victim's legitimate peers.
      for (std::uint8_t i = 0; i < 3; ++i) {
        auto spoofed = connect(net::Ipv4Addr::from_octets(
            203, 0, 113, static_cast<std::uint8_t>(10 + i)));
        ts = spoofed.open(ts + kStep);
        ts = apdu(spoofed, ts + kStep, true, u_frame(U::kStartDtAct));
        for (std::uint16_t ns = 0; ns < 16; ++ns) {
          ts = apdu(spoofed, ts + kStep, true,
                    iec104::Apdu::make_i(ns, 0, command(600 + ns)));
        }
        ts = spoofed.close_rst(ts + kStep, true);
      }
      return ts;
    }

    case HostileScenario::kUnsolicitedConfirms:
      // Confirmations nobody asked for: on a fresh connection there is no
      // act they could answer.
      ts = conn.open(ts);
      ts = apdu(conn, ts + kStep, true, u_frame(U::kStartDtCon));
      for (int i = 0; i < 4; ++i) {
        ts = apdu(conn, ts + kStep, true, u_frame(U::kTestFrCon));
      }
      ts = apdu(conn, ts + kStep, true, u_frame(U::kStopDtCon));
      return conn.close_fin(ts + kStep, true);

    case HostileScenario::kDataAfterStopDt:
      // A fully orderly session — activation, one command, orderly STOPDT
      // — followed by more commands after the stop was confirmed.
      ts = conn.open(ts);
      ts = apdu(conn, ts + kStep, true, u_frame(U::kStartDtAct));
      ts = apdu(conn, ts + kStep, false, u_frame(U::kStartDtCon));
      ts = apdu(conn, ts + kStep, true, iec104::Apdu::make_i(0, 0, command(700)));
      ts = apdu(conn, ts + kStep, false, iec104::Apdu::make_s(1));
      ts = apdu(conn, ts + kStep, true, u_frame(U::kStopDtAct));
      ts = apdu(conn, ts + kStep, false, u_frame(U::kStopDtCon));
      ts = apdu(conn, ts + kStep, true, iec104::Apdu::make_i(1, 0, command(701)));
      return conn.close_fin(ts + kStep, true);
  }
  return ts;
}

Timestamp HostilePeer::run_all(Timestamp ts) {
  for (auto scenario : all_hostile_scenarios()) {
    ts = run(scenario, ts + from_seconds(1.0));
  }
  return ts;
}

}  // namespace uncharted::sim
