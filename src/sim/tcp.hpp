// Lightweight TCP endpoint model for capture synthesis.
//
// Emits byte-exact Ethernet/IPv4/TCP frames (checksums included) for the
// connection lifecycles the paper observes: normal handshakes and teardown,
// connections refused with RST, SYNs ignored entirely, mid-stream resets,
// and occasional TCP-level retransmissions (which the paper traced as the
// source of "repeated U16/U32" tokens, §6.3.1). It is not a full stack —
// no congestion control, no window management — because the consumer is a
// pcap analysis pipeline, not a peer stack.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "net/frame.hpp"
#include "util/rng.hpp"
#include "util/timebase.hpp"

namespace uncharted::sim {

/// Receives every synthesized frame. Frames may be emitted slightly out of
/// global time order across connections; the capture generator sorts before
/// writing pcap.
using FrameSink = std::function<void(Timestamp, std::vector<std::uint8_t>)>;

struct Endpoint {
  net::MacAddr mac;
  net::Ipv4Addr ip;
  std::uint16_t port = 0;

  static Endpoint make(net::Ipv4Addr ip, std::uint16_t port);
};

/// One simulated TCP connection between a client (initiator) and a server.
class SimTcpConnection {
 public:
  SimTcpConnection(Endpoint client, Endpoint server, FrameSink sink, Rng* rng);

  /// Probability that a data segment is followed by a spurious
  /// retransmission of itself (default 0: deterministic tests).
  void set_retransmit_probability(double p) { retransmit_p_ = p; }

  /// Full three-way handshake; returns the time after the final ACK.
  Timestamp open(Timestamp ts);

  /// SYN answered by RST from the server (connection refused, Fig 9).
  /// Returns the time of the RST.
  Timestamp open_refused(Timestamp ts);

  /// SYN (plus `retries` retransmitted SYNs) that no one ever answers.
  Timestamp open_ignored(Timestamp ts, int retries = 2);

  /// Sends application payload; the peer acknowledges. Returns the time
  /// after the ACK. `from_client` selects the direction.
  Timestamp send(Timestamp ts, bool from_client, std::span<const std::uint8_t> payload);

  /// Graceful teardown (FIN/ACK both ways) initiated by one side.
  Timestamp close_fin(Timestamp ts, bool from_client);

  /// Abortive teardown: one RST.
  Timestamp close_rst(Timestamp ts, bool from_client);

  bool is_open() const { return open_; }
  const Endpoint& client() const { return client_; }
  const Endpoint& server() const { return server_; }

 private:
  struct DirState {
    std::uint32_t seq = 0;
    std::uint16_t ip_id = 0;
  };

  void emit(Timestamp ts, bool from_client, std::uint8_t flags,
            std::span<const std::uint8_t> payload);
  DirState& dir(bool from_client) { return from_client ? client_state_ : server_state_; }

  /// Small per-hop latency: 1-8 ms, deterministic via rng.
  DurationUs hop_delay();

  Endpoint client_;
  Endpoint server_;
  FrameSink sink_;
  Rng* rng_;
  DirState client_state_;
  DirState server_state_;
  bool open_ = false;
  double retransmit_p_ = 0.0;
};

}  // namespace uncharted::sim
