// Capture synthesis: runs the federated SCADA network for one "capture
// day" and produces (a) a packet trace identical in kind to the paper's
// network tap (Fig 5) and (b) the ground truth the paper obtained by
// interviewing the operator (Table 2, Table 8 semantics, event log).
//
// Every phenomenon in the paper's measurement section is generated:
//   - 49 (Y1) / 51 (Y2) outstations with the Table 2 adds/removes;
//   - IEC 101 legacy encodings from O37 (2-octet IOA) and O53/O58/O28
//     (1-octet COT);
//   - primary I/S streams, secondary U16/U32 keep-alive loops;
//   - the ten (1,1) reset-backup connections incl. C2-O30 with T3=430 s;
//   - sub-second RST-refused flows, SYN-only ignored flows, >1 s
//     accept-then-reset flows (Table 3 / Fig 8 / Fig 9);
//   - server switchovers with STARTDT + I100 interrogation (Figs 15/16);
//   - C4-O22 four-packet test traffic (§6.3 cluster-0 outlier);
//   - AGC set points (I50), clock sync (I103), end-of-init (I70);
//   - TCP retransmissions (the repeated-token cause in §6.3.1);
//   - physical events: unmet load + AGC response (Figs 18/19) and a
//     generator synchronization (Figs 20/21).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/pcap.hpp"
#include "power/measurement.hpp"
#include "sim/topology.hpp"
#include "util/expected.hpp"

namespace uncharted::sim {

struct CaptureConfig {
  bool year2 = false;
  double duration_s = 1200.0;        ///< capture length (Y1:Y2 hours ratio is 8:3)
  std::uint64_t seed = 20201027;
  double retransmit_probability = 0.004;
  bool include_physical_events = true;
  /// Also synthesize the non-IEC-104 traffic the paper's tap carried
  /// (Fig 5): C37.118 synchrophasor streams and ICCP control-center links.
  bool include_background_protocols = true;

  static CaptureConfig y1(double duration_s = 1200.0) {
    CaptureConfig c;
    c.year2 = false;
    c.duration_s = duration_s;
    return c;
  }
  static CaptureConfig y2(double duration_s = 450.0) {
    CaptureConfig c;
    c.year2 = true;
    c.duration_s = duration_s;
    c.seed = 20211027;
    return c;
  }
};

/// Ground-truth record for one telemetry point.
struct SignalTruth {
  int outstation_id = 0;
  std::uint32_t ioa = 0;
  power::PhysicalSymbol symbol = power::PhysicalSymbol::kOther;
  std::uint8_t type_id = 0;
};

/// Everything the operator "told us" about a capture.
struct GroundTruth {
  bool year2 = false;
  double duration_s = 0.0;
  Timestamp start_ts = 0;
  std::vector<int> outstation_ids;      ///< visible in this capture
  std::vector<SignalTruth> signals;
  double load_loss_at_s = -1.0;
  double load_restore_at_s = -1.0;
  double generator_online_at_s = -1.0;  ///< begin_startup time
  int generator_online_outstation = 0;
};

struct CaptureResult {
  std::vector<net::CapturedPacket> packets;  ///< strictly time-ordered
  GroundTruth truth;
  Topology topology;
};

/// Synthesizes one capture. Deterministic for a given config.
CaptureResult generate_capture(const CaptureConfig& config);

/// Writes the packets to a pcap file.
Status write_capture_pcap(const CaptureResult& capture, const std::string& path);

}  // namespace uncharted::sim
