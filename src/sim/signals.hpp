// Builds each outstation's telemetry signal map (IOA -> physical quantity,
// ASDU type, reporting policy) so that the fleet-wide typeID mix matches
// the paper's Tables 7 and 8.
#pragma once

#include <vector>

#include "sim/topology.hpp"

namespace uncharted::sim {

/// Station sets driving Table 8's "Transmitting Station Count" column.
/// Membership is by outstation id.
bool station_reports_i36(int id);
bool station_reports_i13(int id);
bool station_reports_i3(int id);
bool station_reports_i31(int id);
bool station_reports_i1(int id);
bool station_gets_clock_sync(int id);   ///< I103 targets (3 stations)
bool station_sends_end_of_init(int id); ///< I70 senders (2 stations)

/// Fills spec.signals for the given year. Deterministic per (id, year).
std::vector<SignalSpec> build_signals(const OutstationSpec& os, bool year2);

}  // namespace uncharted::sim
