#include "sim/tcp.hpp"

namespace uncharted::sim {

Endpoint Endpoint::make(net::Ipv4Addr ip, std::uint16_t port) {
  Endpoint e;
  e.ip = ip;
  e.port = port;
  // Locally administered MAC derived from the IP for determinism.
  e.mac = net::MacAddr::from_u64(0x02'00'00'00'00'00ULL | ip.value);
  return e;
}

SimTcpConnection::SimTcpConnection(Endpoint client, Endpoint server, FrameSink sink,
                                   Rng* rng)
    : client_(std::move(client)), server_(std::move(server)), sink_(std::move(sink)),
      rng_(rng) {
  client_state_.seq = static_cast<std::uint32_t>(rng_->next_u64());
  server_state_.seq = static_cast<std::uint32_t>(rng_->next_u64());
}

DurationUs SimTcpConnection::hop_delay() {
  return static_cast<DurationUs>(1000 + rng_->below(7000));  // 1-8 ms
}

void SimTcpConnection::emit(Timestamp ts, bool from_client, std::uint8_t flags,
                            std::span<const std::uint8_t> payload) {
  const Endpoint& src = from_client ? client_ : server_;
  const Endpoint& dst = from_client ? server_ : client_;
  DirState& me = dir(from_client);
  DirState& peer = dir(!from_client);

  net::TcpSegmentSpec spec;
  spec.src_mac = src.mac;
  spec.dst_mac = dst.mac;
  spec.src_ip = src.ip;
  spec.dst_ip = dst.ip;
  spec.src_port = src.port;
  spec.dst_port = dst.port;
  spec.seq = me.seq;
  spec.ack = (flags & net::kTcpAck) ? peer.seq : 0;
  spec.flags = flags;
  spec.ip_id = me.ip_id++;
  spec.payload = payload;

  sink_(ts, net::build_tcp_frame(spec));

  // Spurious retransmission of data segments (paper §6.3.1).
  if (!payload.empty() && retransmit_p_ > 0.0 && rng_->chance(retransmit_p_)) {
    sink_(ts + 40'000 + static_cast<Timestamp>(rng_->below(120'000)),
          net::build_tcp_frame(spec));
  }

  if (flags & (net::kTcpSyn | net::kTcpFin)) {
    me.seq += 1;
  }
  me.seq += static_cast<std::uint32_t>(payload.size());
}

Timestamp SimTcpConnection::open(Timestamp ts) {
  emit(ts, true, net::kTcpSyn, {});
  ts += static_cast<Timestamp>(hop_delay());
  emit(ts, false, net::kTcpSyn | net::kTcpAck, {});
  ts += static_cast<Timestamp>(hop_delay());
  emit(ts, true, net::kTcpAck, {});
  open_ = true;
  return ts;
}

Timestamp SimTcpConnection::open_refused(Timestamp ts) {
  emit(ts, true, net::kTcpSyn, {});
  ts += static_cast<Timestamp>(hop_delay());
  // RST+ACK from the server; it never consumed the SYN, seq stays put.
  emit(ts, false, net::kTcpRst | net::kTcpAck, {});
  open_ = false;
  return ts;
}

Timestamp SimTcpConnection::open_ignored(Timestamp ts, int retries) {
  emit(ts, true, net::kTcpSyn, {});
  // Exponential SYN retransmission backoff: 1s, 2s, 4s...
  DurationUs backoff = 1'000'000;
  for (int i = 0; i < retries; ++i) {
    ts += static_cast<Timestamp>(backoff);
    // Rewind: a retransmitted SYN reuses the same sequence number.
    dir(true).seq -= 1;
    emit(ts, true, net::kTcpSyn, {});
    backoff *= 2;
  }
  open_ = false;
  return ts;
}

Timestamp SimTcpConnection::send(Timestamp ts, bool from_client,
                                 std::span<const std::uint8_t> payload) {
  emit(ts, from_client, net::kTcpPsh | net::kTcpAck, payload);
  ts += static_cast<Timestamp>(hop_delay());
  emit(ts, !from_client, net::kTcpAck, {});
  return ts;
}

Timestamp SimTcpConnection::close_fin(Timestamp ts, bool from_client) {
  emit(ts, from_client, net::kTcpFin | net::kTcpAck, {});
  ts += static_cast<Timestamp>(hop_delay());
  emit(ts, !from_client, net::kTcpFin | net::kTcpAck, {});
  ts += static_cast<Timestamp>(hop_delay());
  emit(ts, from_client, net::kTcpAck, {});
  open_ = false;
  return ts;
}

Timestamp SimTcpConnection::close_rst(Timestamp ts, bool from_client) {
  emit(ts, from_client, net::kTcpRst | net::kTcpAck, {});
  open_ = false;
  return ts;
}

}  // namespace uncharted::sim
