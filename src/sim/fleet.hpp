// Fleet scripting: turn one synthesized capture into a fleet of tapstream
// replay streams for the live-ingest daemon.
//
// The daemon's soak and equivalence harnesses need the same traffic a
// batch analyzer would read from a pcap, but delivered as thousands of
// concurrent live connections. This module builds that fleet
// deterministically:
//
//   Partition   every frame with a visible IPv4 pair goes to the stream
//               of its canonical (min, max) endpoint pair — the same
//               partition the PR-5 shard dispatcher uses — so one stream
//               is one conversation replayed in capture order. Frames
//               with no readable pair form one "misc" stream.
//   Clones      clone c > 0 re-addresses every frame into a fresh /8-ish
//               neighborhood (first+second source and destination octets
//               rewritten, IP and TCP checksums repaired incrementally
//               per RFC 1624), multiplying the fleet without re-running
//               the simulator. 70-odd streams per clone scales a Fig-6
//               capture to a 10k-connection soak in a few hundred clones.
//   Hostiles    content-hostile streams replay sim::HostilePeer attack
//               scenarios from distinct attacker addresses (the transport
//               is a well-behaved tapstream client; the *payload* is the
//               attack — flagged by the conformance audit, not by netd).
//               Transport-hostile streams (garbage hello, slow-loris) are
//               empty-framed markers the FleetClient plays in its
//               corresponding abuse mode.
//
// The same config always yields the same script (ids, frames, order), so
// a daemon killed mid-soak and a fresh uninterrupted daemon can be fed
// byte-identical fleets.
#pragma once

#include <cstdint>
#include <vector>

#include "netd/client.hpp"

namespace uncharted::sim {

struct FleetScriptConfig {
  /// Total copies of the capture (1 = just the original). Clone c >= 1
  /// is re-addressed; at most ~5800 clones fit the rewrite scheme.
  std::size_t clones = 1;
  /// Content-hostile streams: each replays every HostilePeer scenario
  /// from its own attacker address against the Fig-6 primary target.
  std::size_t hostile_content = 0;
  /// Transport-hostile streams handled by FleetClient abuse modes.
  std::size_t garbage = 0;
  std::size_t slow_loris = 0;
  std::uint64_t seed = 0x5ca1ab1eULL;
};

struct FleetScript {
  std::vector<netd::ReplayStream> streams;
  std::size_t benign_streams = 0;   ///< pair/misc streams (incl. clones)
  std::size_t hostile_streams = 0;  ///< content + transport hostiles
  std::uint64_t total_frames = 0;   ///< across benign + content-hostile
};

/// Builds the fleet script for `packets` (a time-ordered capture).
/// Deterministic: stream ids are assigned in construction order, so the
/// same capture + config reproduce the same script exactly.
FleetScript build_fleet_script(const std::vector<net::CapturedPacket>& packets,
                               const FleetScriptConfig& config);

}  // namespace uncharted::sim
