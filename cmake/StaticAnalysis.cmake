# clang-tidy integration.
#
# UNCHARTED_TIDY=ON runs clang-tidy (configuration in the repo-root
# .clang-tidy) on every translation unit of the directories that call
# uncharted_enable_tidy_here() — currently src/. Diagnostics are promoted
# to errors so a tidy build either passes clean or fails:
#
#   cmake --preset tidy && cmake --build build-tidy -j
#
# Requires a clang-tidy binary on PATH; configuring with UNCHARTED_TIDY=ON
# on a machine without one is a hard configure error rather than a silent
# no-op, so CI cannot "pass" by skipping the analysis.

option(UNCHARTED_TIDY "Run clang-tidy over src/ as part of the build" OFF)

if(UNCHARTED_TIDY)
  find_program(UNCHARTED_CLANG_TIDY_EXE
    NAMES clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 clang-tidy-16
          clang-tidy-15 clang-tidy-14)
  if(NOT UNCHARTED_CLANG_TIDY_EXE)
    message(FATAL_ERROR
      "UNCHARTED_TIDY=ON but no clang-tidy executable was found on PATH")
  endif()
  message(STATUS "uncharted: clang-tidy: ${UNCHARTED_CLANG_TIDY_EXE}")
endif()

# Sets CMAKE_CXX_CLANG_TIDY for the calling directory (and its children).
# A macro rather than a function so the variable lands in the caller's
# directory scope.
macro(uncharted_enable_tidy_here)
  if(UNCHARTED_TIDY)
    set(CMAKE_CXX_CLANG_TIDY
        "${UNCHARTED_CLANG_TIDY_EXE};--warnings-as-errors=*")
  endif()
endmacro()
