# Sanitizer build modes.
#
# UNCHARTED_SANITIZE is a semicolon-separated list drawn from
# {address, undefined, leak, thread}. The flags are attached to the
# uncharted_options interface target, so every library, test, bench and
# example in the tree inherits them — a truncated-capture bug caught by a
# fuzzer reproduces identically inside ctest.
#
#   cmake -B build -S . -DUNCHARTED_SANITIZE="address;undefined"
#   cmake --preset debug-asan-ubsan      # same thing, via presets
#
# thread is mutually exclusive with address/leak (the runtimes cannot be
# linked together); the combination is rejected at configure time.

set(UNCHARTED_SANITIZE "" CACHE STRING
    "Semicolon-separated sanitizers to enable: address;undefined;leak;thread")

function(uncharted_apply_sanitizers target)
  if(NOT UNCHARTED_SANITIZE)
    return()
  endif()

  set(_known address undefined leak thread)
  foreach(_san IN LISTS UNCHARTED_SANITIZE)
    if(NOT _san IN_LIST _known)
      message(FATAL_ERROR
        "UNCHARTED_SANITIZE: unknown sanitizer '${_san}' "
        "(expected a subset of: ${_known})")
    endif()
  endforeach()

  if("thread" IN_LIST UNCHARTED_SANITIZE AND
     ("address" IN_LIST UNCHARTED_SANITIZE OR "leak" IN_LIST UNCHARTED_SANITIZE))
    message(FATAL_ERROR
      "UNCHARTED_SANITIZE: 'thread' cannot be combined with 'address' or 'leak'")
  endif()

  string(REPLACE ";" "," _fsan "${UNCHARTED_SANITIZE}")
  message(STATUS "uncharted: sanitizers enabled: ${_fsan}")

  target_compile_options(${target} INTERFACE
    -fsanitize=${_fsan}
    -fno-omit-frame-pointer
    -fno-sanitize-recover=all)
  target_link_options(${target} INTERFACE -fsanitize=${_fsan})
endfunction()
